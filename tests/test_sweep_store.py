"""The columnar sqlite result store and its renderers."""

import pytest

from repro.exec.jobs import RunJob, execute_job
from repro.harness.config import SimulationConfig
from repro.sweep.report import render_rows, render_sweep_report
from repro.sweep.spec import SweepSpec, compile_sweep
from repro.sweep.store import (
    DIMENSIONS,
    METRICS,
    SweepStore,
    SweepStoreError,
    default_store_path,
    flatten_summary,
)


@pytest.fixture(scope="module")
def summary():
    """One real (tiny) run summary, shared across the module."""
    config = SimulationConfig(seed=0, max_packets=150)
    job = RunJob("WRN950919", "cesrm", config, trace_seed=0, trace_max_packets=150)
    return execute_job(job)


@pytest.fixture(scope="module")
def spec():
    return compile_sweep(
        {
            "name": "store-test",
            "grid": {
                "protocol": ["srm", "cesrm"],
                "trace": ["WRN950919"],
                "seed": [0, 1],
            },
            "defaults": {"max_packets": 150},
        }
    )


@pytest.fixture
def store(tmp_path):
    with SweepStore(tmp_path / "sweeps.sqlite") as st:
        yield st


def _fill(store: SweepStore, spec: SweepSpec, summary) -> str:
    digest = store.begin_sweep(spec)
    for case in spec.cases:
        store.record(digest, case, summary, cached=False, attempts=1)
    return digest


class TestFlatten:
    def test_covers_every_metric_column(self, summary):
        flat = flatten_summary(summary)
        assert set(flat) == set(METRICS)

    def test_values_plausible(self, summary):
        flat = flatten_summary(summary)
        assert flat["n_packets"] == 150
        assert flat["total_losses"] > 0
        assert flat["recovered"] + flat["unrecovered"] == flat["total_losses"]
        assert 0.0 <= flat["expedited_fraction"] <= 1.0
        assert flat["avg_latency_rtt"] > 0


class TestIngest:
    def test_record_and_counts(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        counts = store.counts(digest)
        assert counts["recorded"] == len(spec.cases)
        assert counts["ok"] == len(spec.cases)
        assert counts["failed"] == 0

    def test_record_is_idempotent(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        store.record(digest, spec.cases[0], summary, cached=True, attempts=0)
        assert store.counts(digest)["recorded"] == len(spec.cases)

    def test_failed_row(self, store, spec, summary):
        digest = store.begin_sweep(spec)
        store.record(digest, spec.cases[0], None, cached=False, attempts=3, error="boom")
        counts = store.counts(digest)
        assert counts["failed"] == 1
        assert counts["ok"] == 0

    def test_survives_reopen(self, tmp_path, spec, summary):
        path = tmp_path / "s.sqlite"
        with SweepStore(path) as st:
            digest = _fill(st, spec, summary)
        with SweepStore(path) as st:
            assert st.counts(digest)["ok"] == len(spec.cases)


class TestResolve:
    def test_latest_by_default(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        assert store.resolve(None) == digest
        assert store.resolve("") == digest

    def test_digest_prefix(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        assert store.resolve(digest[:8]) == digest

    def test_by_name(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        assert store.resolve("store-test") == digest

    def test_unknown_selector(self, store, spec, summary):
        _fill(store, spec, summary)
        with pytest.raises(SweepStoreError, match="no sweep matches"):
            store.resolve("nope")

    def test_empty_store(self, store):
        with pytest.raises(SweepStoreError, match="no sweeps recorded"):
            store.resolve(None)


class TestQuery:
    def test_group_by_protocol(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        headers, rows = store.query(
            digest, group_by=["protocol"], metrics=["avg_latency_rtt"]
        )
        assert headers == ["protocol", "mean_avg_latency_rtt", "n"]
        assert [r[0] for r in rows] == ["cesrm", "srm"]
        assert all(r[2] == 2 for r in rows)  # two seeds per protocol

    def test_where_filter(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        _, rows = store.query(digest, where={"seed": 0}, metrics=["n_packets"])
        assert rows[0][-1] == 2  # one row per protocol at seed 0

    def test_where_coerces_cli_strings(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        _, rows = store.query(digest, where={"seed": "1"}, metrics=["n_packets"])
        assert rows[0][-1] == 2

    def test_aggregates(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        for agg in ("mean", "sum", "min", "max", "count"):
            headers, rows = store.query(digest, metrics=["n_packets"], agg=agg)
            assert headers[0] == f"{agg}_n_packets"
            assert len(rows) == 1

    def test_failed_rows_excluded(self, store, spec, summary):
        digest = store.begin_sweep(spec)
        store.record(digest, spec.cases[0], summary, cached=False, attempts=1)
        store.record(digest, spec.cases[1], None, cached=False, attempts=3, error="x")
        _, rows = store.query(digest, metrics=["n_packets"])
        assert rows[0][-1] == 1

    def test_unknown_group_column(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        with pytest.raises(SweepStoreError, match="unknown group-by column"):
            store.query(digest, group_by=["nope"])

    def test_unknown_metric(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        with pytest.raises(SweepStoreError, match="unknown metric column"):
            store.query(digest, metrics=["nope"])

    def test_unknown_aggregate(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        with pytest.raises(SweepStoreError, match="unknown aggregate"):
            store.query(digest, agg="median")

    def test_bad_where_value(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        with pytest.raises(SweepStoreError, match="integer-typed"):
            store.query(digest, where={"seed": "abc"})

    def test_rows_and_distinct(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        columns, rows = store.rows(digest)
        assert len(rows) == len(spec.cases)
        assert columns[: len(DIMENSIONS)] == list(DIMENSIONS)
        assert store.distinct(digest, "protocol") == ["cesrm", "srm"]
        assert store.distinct(digest, "seed") == [0, 1]


class TestRender:
    HEADERS = ["protocol", "mean_x", "n"]
    ROWS = [("srm", 1.23456, 2), ("cesrm", None, 1)]

    def test_table(self):
        text = render_rows(self.HEADERS, self.ROWS, "table")
        lines = text.splitlines()
        assert lines[0].split() == self.HEADERS
        assert "1.235" in text
        assert lines[3].split() == ["cesrm", "-", "1"]  # None cell renders as -

    def test_csv(self):
        text = render_rows(self.HEADERS, self.ROWS, "csv")
        assert text.splitlines()[0] == "protocol,mean_x,n"
        assert "srm,1.23456,2" in text

    def test_markdown(self):
        text = render_rows(self.HEADERS, self.ROWS, "markdown")
        assert text.startswith("| protocol | mean_x | n |")
        assert "| --- | --- | --- |" in text

    def test_unknown_format(self):
        with pytest.raises(ValueError, match="unknown format"):
            render_rows(self.HEADERS, self.ROWS, "yaml")

    def test_sweep_report(self, store, spec, summary):
        digest = _fill(store, spec, summary)
        text = render_sweep_report(store, digest, "table")
        assert f"sweep {digest[:12]}" in text
        # protocol and seed vary; trace does not.
        assert "grouped by protocol, seed" in text


class TestDefaultPath:
    def test_rides_next_to_cache(self, tmp_path):
        assert default_store_path(tmp_path) == tmp_path / "sweeps.sqlite"
