"""The sweep scheduler: determinism, cache-checkpoint resume, retries,
work-stealing parallel execution, and obs progress events."""

from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.exec.pool as pool_mod
from repro.exec.cache import RunCache
from repro.exec.pool import ExecutionEngine
from repro.obs import EventKind, RingBufferSink, Tracer
from repro.sweep import SweepStore, compile_sweep, run_sweep

SPEC_DATA = {
    "name": "sched-test",
    "grid": {
        "protocol": ["srm", "cesrm"],
        "trace": ["WRN950919"],
        "seed": [0, 1],
    },
    "defaults": {"max_packets": 120},
}


@pytest.fixture
def spec():
    return compile_sweep(SPEC_DATA)


def _run(spec, tmp_path, tag, jobs=1, **kwargs):
    cache = RunCache(tmp_path / f"cache-{tag}")
    engine = ExecutionEngine(jobs=jobs, cache=cache)
    store = SweepStore(tmp_path / f"store-{tag}.sqlite")
    report = run_sweep(spec, engine=engine, store=store, **kwargs)
    return report, store, engine


def _comparable_rows(store, digest):
    """Per-run rows with the timing columns dropped (wall_time differs
    between otherwise identical runs)."""
    columns, rows = store.rows(digest)
    keep = [i for i, c in enumerate(columns) if c not in ("wall_time", "sim_time")]
    return [tuple(row[i] for i in keep) for row in rows]


class TestDeterminism:
    @pytest.mark.slow
    def test_serial_and_parallel_identical(self, spec, tmp_path):
        serial, store_s, _ = _run(spec, tmp_path, "serial", jobs=1)
        parallel, store_p, _ = _run(spec, tmp_path, "par", jobs=2, chunk_size=1)
        assert serial.digest == parallel.digest
        assert serial.executed == parallel.executed == len(spec.cases)
        assert _comparable_rows(store_s, serial.digest) == _comparable_rows(
            store_p, parallel.digest
        )
        store_s.close()
        store_p.close()

    def test_rerun_is_all_cache_hits(self, spec, tmp_path):
        first, store, _ = _run(spec, tmp_path, "a")
        assert first.executed == len(spec.cases)
        assert first.cached == 0
        store.close()
        # Same cache, fresh engine/store: the run cache is the checkpoint.
        second, store2, _ = _run(spec, tmp_path, "a")
        assert second.executed == 0
        assert second.cached == len(spec.cases)
        assert _comparable_rows(store2, second.digest) == _comparable_rows(
            store2, first.digest
        )
        store2.close()

    def test_partial_cache_resumes(self, spec, tmp_path):
        """Pre-warm the cache with half the jobs: only the rest execute."""
        half = compile_sweep(
            {**SPEC_DATA, "grid": {**SPEC_DATA["grid"], "protocol": ["srm"]}}
        )
        _run(half, tmp_path, "a")[1].close()
        report, store, _ = _run(spec, tmp_path, "a")
        assert report.cached == len(half.cases)
        assert report.executed == len(spec.cases) - len(half.cases)
        assert store.counts(report.digest)["ok"] == len(spec.cases)
        store.close()


class TestRetries:
    def test_serial_transient_failure_retried(self, spec, tmp_path, monkeypatch):
        real = pool_mod.execute_job
        failures = {"left": 2}

        def flaky(job):
            if failures["left"]:
                failures["left"] -= 1
                raise OSError("transient")
            return real(job)

        monkeypatch.setattr(pool_mod, "execute_job", flaky)
        report, store, engine = _run(spec, tmp_path, "a", retries=2)
        assert report.failed == 0
        assert report.retried == 2
        assert engine.stats.retried == 2
        store.close()

    def test_retries_exhausted_marks_failed(self, spec, tmp_path, monkeypatch):
        def poisoned(job):
            raise OSError("always down")

        monkeypatch.setattr(pool_mod, "execute_job", poisoned)
        report, store, _ = _run(spec, tmp_path, "a", retries=1)
        assert report.failed == len(spec.cases)
        assert report.executed == 0
        counts = store.counts(report.digest)
        assert counts["failed"] == len(spec.cases)
        # Failed rows carry the error and never aggregate.
        _, rows = store.rows(report.digest, where={"status": "failed"})
        assert len(rows) == len(spec.cases)
        store.close()

    def test_failed_jobs_recompute_on_rerun(self, spec, tmp_path, monkeypatch):
        monkeypatch.setattr(
            pool_mod, "execute_job", lambda job: (_ for _ in ()).throw(OSError("x"))
        )
        first, store, _ = _run(spec, tmp_path, "a", retries=0)
        assert first.failed == len(spec.cases)
        store.close()
        monkeypatch.undo()
        second, store2, _ = _run(spec, tmp_path, "a")
        assert second.executed == len(spec.cases)
        assert store2.counts(second.digest)["failed"] == 0
        store2.close()

    def test_parallel_chunk_failure_retried_as_singletons(
        self, spec, tmp_path, monkeypatch
    ):
        """One bad chunk must not sink its chunk-mates: the failed chunk
        splits into singletons that retry (in-process pool so the flaky
        counter is visible to the 'workers')."""
        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", ThreadPoolExecutor)
        real_chunk = pool_mod._execute_chunk
        failures = {"left": 1}

        def flaky_chunk(payloads):
            if len(payloads) > 1 and failures["left"]:
                failures["left"] -= 1
                raise OSError("worker lost")
            return real_chunk(payloads)

        monkeypatch.setattr(pool_mod, "_execute_chunk", flaky_chunk)
        report, store, engine = _run(
            spec, tmp_path, "a", jobs=2, chunk_size=2, retries=2
        )
        assert report.failed == 0
        assert report.executed == len(spec.cases)
        assert report.retried == 2  # both members of the failed chunk
        store.close()


class TestObsEvents:
    def test_progress_events_on_the_bus(self, spec, tmp_path):
        sink = RingBufferSink(capacity=256)
        tracer = Tracer(sink)
        report, store, _ = _run(spec, tmp_path, "a", tracer=tracer)
        kinds = [e.kind for e in sink.events]
        assert kinds[0] == EventKind.SWEEP_START
        assert kinds[-1] == EventKind.SWEEP_DONE
        assert kinds.count(EventKind.SWEEP_JOB) == len(spec.cases)
        start = sink.events[0]
        assert start.detail["sweep"] == report.digest
        assert start.detail["jobs"] == len(spec.cases)
        done = sink.events[-1]
        assert done.detail["executed"] == len(spec.cases)
        assert done.detail["failed"] == 0
        job_events = [e for e in sink.events if e.kind == EventKind.SWEEP_JOB]
        assert all(e.detail["cached"] is False for e in job_events)
        store.close()

    def test_failed_jobs_emit_their_own_kind(self, spec, tmp_path, monkeypatch):
        monkeypatch.setattr(
            pool_mod, "execute_job", lambda job: (_ for _ in ()).throw(OSError("x"))
        )
        sink = RingBufferSink(capacity=256)
        report, store, _ = _run(
            spec, tmp_path, "a", retries=0, tracer=Tracer(sink)
        )
        failed = [e for e in sink.events if e.kind == EventKind.SWEEP_JOB_FAILED]
        assert len(failed) == len(spec.cases)
        assert all(e.detail["error"] for e in failed)
        store.close()


class TestReport:
    def test_describe_is_greppable(self, spec, tmp_path):
        report, store, _ = _run(spec, tmp_path, "a")
        text = report.describe()
        assert f"cached=0 executed={len(spec.cases)} failed=0" in text
        assert report.digest[:12] in text
        store.close()

    def test_jobs_per_sec(self, spec, tmp_path):
        report, store, _ = _run(spec, tmp_path, "a")
        assert report.jobs_per_sec > 0
        store.close()
