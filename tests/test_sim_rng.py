"""Unit tests for the named random-stream registry."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    reg = RngRegistry(7)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [reg.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    reg = RngRegistry(7)
    assert reg.stream("x") is reg.stream("x")


def test_consuming_one_stream_does_not_perturb_another():
    reg1 = RngRegistry(7)
    reg1.stream("noise").random()
    value1 = reg1.stream("signal").random()

    reg2 = RngRegistry(7)
    value2 = reg2.stream("signal").random()
    assert value1 == value2


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_fork_is_deterministic():
    a = RngRegistry(7).fork("child").stream("x").random()
    b = RngRegistry(7).fork("child").stream("x").random()
    assert a == b


def test_fork_differs_from_parent():
    parent = RngRegistry(7)
    child = parent.fork("child")
    assert parent.stream("x").random() != child.stream("x").random()


def test_derive_seed_is_stable_across_calls():
    reg = RngRegistry(42)
    assert reg.derive_seed("name") == reg.derive_seed("name")


def test_derive_seed_is_64_bit():
    seed = RngRegistry(0).derive_seed("x")
    assert 0 <= seed < 2**64


@given(st.integers(), st.text(max_size=50))
def test_derivation_never_collides_with_distinct_suffix(seed, name):
    reg = RngRegistry(seed)
    assert reg.derive_seed(name) != reg.derive_seed(name + "!")
