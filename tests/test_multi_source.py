"""Multi-source behaviour: per-source streams, recovery, and caches.

SRM is an any-source protocol; CESRM keeps "a collection of per-source
requestor/replier caches, one for each source" (§3.1).  These tests run
two concurrent senders — the root plus a receiver (the whiteboard scenario
that motivated SRM) — and verify the state separation.
"""

from repro.net.packet import Packet, PacketKind, PAYLOAD_BYTES

from tests.helpers import make_world, two_subtrees


def send_stream(world, sender: str, n: int, period: float, start: float, drop=None):
    """Schedule ``sender``'s own stream; drop[(seq)] = set of links."""
    drop = drop or {}
    agent = world.agents[sender]
    for seq in range(n):
        world.sim.schedule_at(start + seq * period, agent.send_data, seq)
    return drop


class TestMultiSourceStreams:
    def test_two_streams_tracked_independently(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        t0 = world.data_start
        for seq in range(3):
            world.sim.schedule_at(t0 + seq * 0.08, world.agents["s"].send_data, seq)
            world.sim.schedule_at(
                t0 + 0.02 + seq * 0.08, world.agents["r4"].send_data, seq
            )
        world.run()
        observer = world.agents["r1"]
        assert observer.source_state("s").stream.max_seq == 2
        assert observer.source_state("r4").stream.max_seq == 2
        assert set(observer.known_sources()) >= {"s", "r4"}

    def test_same_seqno_in_two_streams_not_confused(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        t0 = world.data_start

        # drop packet 1 of r4's stream (only) on the link into r1's subtree
        def drop_fn(u, v, packet):
            return (
                packet.kind is PacketKind.DATA
                and packet.source == "r4"
                and packet.seqno == 1
                and (u, v) == ("x0", "x1")
            )

        world.network.drop_fn = drop_fn
        for seq in range(3):
            world.sim.schedule_at(t0 + seq * 0.08, world.agents["s"].send_data, seq)
            world.sim.schedule_at(
                t0 + 0.02 + seq * 0.08, world.agents["r4"].send_data, seq
            )
        world.run()
        observer = world.agents["r1"]
        # packet 1 of s's stream was never lost; r4's packet 1 was detected
        # and recovered under r4's source id
        assert 1 not in observer.source_state("s").stream.ever_lost
        assert 1 in observer.source_state("r4").stream.ever_lost
        assert observer.source_state("r4").stream.has(1)
        assert observer.unrecovered_losses("r4") == []

    def test_recovery_of_receiver_sourced_stream(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        t0 = world.data_start

        def drop_fn(u, v, packet):
            return (
                packet.kind is PacketKind.DATA
                and packet.source == "r4"
                and packet.seqno == 1
                and (u, v) == ("x2", "r3")
            )

        world.network.drop_fn = drop_fn
        for seq in range(3):
            world.sim.schedule_at(t0 + seq * 0.2, world.agents["r4"].send_data, seq)
        world.run()
        # r3 lost r4's packet 1 and recovered it via SRM
        records = world.metrics.recoveries["r3"]
        assert [r.seq for r in records] == [1]
        assert world.agents["r3"].source_state("r4").stream.has(1)

    def test_session_reports_cover_all_sources(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        t0 = world.data_start
        world.sim.schedule_at(t0, world.agents["s"].send_data, 0)
        world.sim.schedule_at(t0, world.agents["r4"].send_data, 0)
        world.run(extra=2.5)  # at least two session rounds
        # r1's own session messages now advertise both streams
        agent = world.agents["r1"]
        state_s = agent.source_state("s").stream.max_seq
        state_r4 = agent.source_state("r4").stream.max_seq
        assert state_s == 0 and state_r4 == 0

    def test_tail_loss_of_second_stream_detected_via_session(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        t0 = world.data_start

        def drop_fn(u, v, packet):
            # r1 misses the LAST packet of r4's stream: only the session
            # channel can reveal it
            return (
                packet.kind is PacketKind.DATA
                and packet.source == "r4"
                and packet.seqno == 2
                and (u, v) == ("x1", "r1")
            )

        world.network.drop_fn = drop_fn
        for seq in range(3):
            world.sim.schedule_at(t0 + seq * 0.08, world.agents["r4"].send_data, seq)
        world.run(extra=10.0)
        assert world.agents["r1"].source_state("r4").stream.has(2)
        assert world.agents["r1"].unrecovered_losses("r4") == []


class TestMultiSourceCesrm:
    def test_per_source_caches_are_separate(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agents["r1"]
        agent._detect_loss(4, src="s")
        agent._detect_loss(4, src="r4")
        reply_s = Packet(
            kind=PacketKind.REPL,
            origin="r3",
            source="s",
            seqno=4,
            size_bytes=PAYLOAD_BYTES,
            requestor="r2",
            requestor_dist=0.06,
            replier="r3",
            replier_dist=0.08,
        )
        reply_r4 = Packet(
            kind=PacketKind.REPL,
            origin="r2",
            source="r4",
            seqno=4,
            size_bytes=PAYLOAD_BYTES,
            requestor="r1",
            requestor_dist=0.04,
            replier="r2",
            replier_dist=0.04,
        )
        agent.receive(reply_s)
        agent.receive(reply_r4)
        assert agent.cache_for("s").get(4).pair == ("r2", "r3")
        assert agent.cache_for("r4").get(4).pair == ("r1", "r2")

    def test_expedited_recovery_uses_right_sources_cache(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agents["r1"]
        # warm ONLY r4's cache with (r1, r2)
        from repro.core.cachelab import RecoveryTuple

        agent.cache_for("r4").observe(
            RecoveryTuple(0, "r1", 0.04, "r2", 0.04)
        )
        t0 = world.data_start

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            return packet.seqno == 1 and (u, v) == ("x1", "r1")

        world.network.drop_fn = drop_fn
        # both streams lose packet 1 at r1; only the r4-stream loss has a
        # cached pair, so exactly one expedited request goes out
        for seq in range(3):
            world.sim.schedule_at(t0 + seq * 0.3, world.agents["s"].send_data, seq)
            world.sim.schedule_at(
                t0 + 0.05 + seq * 0.3, world.agents["r4"].send_data, seq
            )
        world.run()
        erqsts = world.metrics.sends_of(PacketKind.ERQST, host="r1")
        assert len(erqsts) == 1
        records = {
            (rec.seq, rec.expedited) for rec in world.metrics.recoveries["r1"]
        }
        assert (1, True) in records  # the r4-stream loss went expedited
        assert (1, False) in records  # the s-stream loss used SRM

    def test_multi_source_full_reliability(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        t0 = world.data_start

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            if packet.source == "s":
                return packet.seqno in (1, 3) and (u, v) == ("x0", "x1")
            return packet.seqno == 2 and (u, v) == ("x0", "x2")

        world.network.drop_fn = drop_fn
        for seq in range(5):
            world.sim.schedule_at(t0 + seq * 0.1, world.agents["s"].send_data, seq)
            world.sim.schedule_at(
                t0 + 0.03 + seq * 0.1, world.agents["r1"].send_data, seq
            )
        world.run(extra=30.0)
        for host, agent in world.agents.items():
            for src in ("s", "r1"):
                if host == src:
                    continue
                assert agent.unrecovered_losses(src) == [], (host, src)
                for seq in range(5):
                    assert agent.source_state(src).stream.has(seq), (host, src, seq)
