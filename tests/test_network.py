"""Unit tests for packet delivery over the tree."""

import pytest

from repro.net.network import Network
from repro.net.packet import Cast, Packet, PacketKind
from repro.sim.engine import Simulator

from tests.helpers import deep_tree, line_tree, two_subtrees


class Sink:
    """A trivial agent that records (time, packet) deliveries."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.received: list[tuple[float, Packet]] = []

    def receive(self, packet: Packet) -> None:
        self.received.append((self.sim.now, packet))


def build(tree):
    sim = Simulator()
    network = Network(sim, tree, propagation_delay=0.020)
    sinks = {host: Sink(sim) for host in tree.hosts}
    for host, sink in sinks.items():
        network.attach(host, sink)
    return sim, network, sinks


def control_packet(origin: str, kind=PacketKind.RQST, seqno=0) -> Packet:
    return Packet(kind=kind, origin=origin, source="s", seqno=seqno, size_bytes=0)


def payload_packet(origin: str, kind=PacketKind.DATA, seqno=0) -> Packet:
    return Packet(kind=kind, origin=origin, source="s", seqno=seqno, size_bytes=1024)


class TestMulticast:
    def test_reaches_every_other_host(self):
        sim, network, sinks = build(two_subtrees())
        network.multicast(control_packet("r1"))
        sim.run()
        for host, sink in sinks.items():
            if host == "r1":
                assert sink.received == []
            else:
                assert len(sink.received) == 1

    def test_control_delivery_time_is_hops_times_propagation(self):
        sim, network, sinks = build(two_subtrees())
        network.multicast(control_packet("s"))
        sim.run()
        for receiver in ("r1", "r2", "r3", "r4"):
            (when, _), = sinks[receiver].received
            assert when == pytest.approx(3 * 0.020)

    def test_payload_delivery_includes_transmission_per_hop(self):
        sim, network, sinks = build(line_tree())
        network.multicast(payload_packet("s"))
        sim.run()
        tx = 1024 * 8 / 1.5e6
        (when, _), = sinks["r1"].received
        assert when == pytest.approx(2 * (tx + 0.020))

    def test_multicast_from_receiver_reaches_source(self):
        sim, network, sinks = build(deep_tree())
        network.multicast(control_packet("r1"))
        sim.run()
        (when, _), = sinks["s"].received
        assert when == pytest.approx(4 * 0.020)

    def test_crossings_count_every_link_once(self):
        sim, network, _ = build(two_subtrees())
        network.multicast(control_packet("s"))
        sim.run()
        # flood from the source crosses each of the 7 links exactly once
        assert network.crossings.total() == 7

    def test_crossings_from_leaf_also_cover_tree(self):
        sim, network, _ = build(two_subtrees())
        network.multicast(control_packet("r1"))
        sim.run()
        assert network.crossings.total() == 7


class TestUnicast:
    def test_delivers_only_to_destination(self):
        sim, network, sinks = build(two_subtrees())
        network.unicast("r3", control_packet("r1", kind=PacketKind.ERQST))
        sim.run()
        assert len(sinks["r3"].received) == 1
        for host in ("s", "r2", "r4"):
            assert sinks[host].received == []

    def test_latency_is_path_hops(self):
        sim, network, sinks = build(two_subtrees())
        network.unicast("r3", control_packet("r1", kind=PacketKind.ERQST))
        sim.run()
        (when, _), = sinks["r3"].received
        assert when == pytest.approx(4 * 0.020)

    def test_cost_is_path_length(self):
        sim, network, _ = build(two_subtrees())
        network.unicast("r3", control_packet("r1", kind=PacketKind.ERQST))
        sim.run()
        assert network.crossings.total() == 4

    def test_unicast_to_self_rejected(self):
        _, network, _ = build(line_tree())
        with pytest.raises(ValueError):
            network.unicast("r1", control_packet("r1"))

    def test_cast_is_stamped(self):
        sim, network, sinks = build(line_tree())
        network.unicast("r2", control_packet("r1", kind=PacketKind.ERQST))
        sim.run()
        (_, packet), = sinks["r2"].received
        assert packet.cast is Cast.UNICAST


class TestSubcast:
    def test_reaches_only_subtree(self):
        sim, network, sinks = build(two_subtrees())
        reply = payload_packet("s", kind=PacketKind.EREPL)
        network.unicast_then_subcast("x1", reply)
        sim.run()
        assert len(sinks["r1"].received) == 1
        assert len(sinks["r2"].received) == 1
        assert sinks["r3"].received == []
        assert sinks["r4"].received == []

    def test_replier_inside_subtree(self):
        sim, network, sinks = build(two_subtrees())
        reply = payload_packet("r1", kind=PacketKind.EREPL)
        network.unicast_then_subcast("x1", reply)
        sim.run()
        # travels r1 -> x1, then subcast down to r1 and r2; r1 is the
        # origin so only r2 gets a delivery
        assert len(sinks["r2"].received) == 1
        assert sinks["r1"].received == []

    def test_turning_point_is_origin(self):
        sim, network, sinks = build(two_subtrees())
        # degenerate: subcast from a router equal to the path start
        reply = payload_packet("s", kind=PacketKind.EREPL)
        reply.origin = "x1"  # pretend injected at the router
        network.unicast_then_subcast("x1", reply)
        sim.run()
        assert len(sinks["r1"].received) == 1
        assert len(sinks["r2"].received) == 1

    def test_cost_is_unicast_plus_subtree(self):
        sim, network, _ = build(two_subtrees())
        reply = payload_packet("s", kind=PacketKind.EREPL)
        network.unicast_then_subcast("x1", reply)
        sim.run()
        # s->x0->x1 (2 links) + x1->r1, x1->r2 (2 links)
        assert network.crossings.total() == 4

    def test_turning_point_recorded_on_packet(self):
        sim, network, sinks = build(two_subtrees())
        reply = payload_packet("s", kind=PacketKind.EREPL)
        network.unicast_then_subcast("x1", reply)
        sim.run()
        (_, packet), = sinks["r1"].received
        assert packet.turning_point == "x1"
        assert packet.cast is Cast.SUBCAST


class TestLossInjection:
    def test_drop_on_link_prunes_subtree(self):
        sim, network, sinks = build(two_subtrees())
        network.drop_fn = lambda u, v, p: (u, v) == ("x0", "x1")
        network.multicast(control_packet("s"))
        sim.run()
        assert sinks["r1"].received == []
        assert sinks["r2"].received == []
        assert len(sinks["r3"].received) == 1
        assert network.packets_dropped == 1

    def test_drop_applies_per_direction(self):
        sim, network, sinks = build(line_tree())
        network.drop_fn = lambda u, v, p: (u, v) == ("x1", "s")
        network.multicast(control_packet("r1"))
        sim.run()
        assert sinks["s"].received == []
        assert len(sinks["r2"].received) == 1

    def test_drop_fn_sees_packet(self):
        sim, network, sinks = build(line_tree())
        network.drop_fn = lambda u, v, p: p.seqno == 7
        network.multicast(control_packet("s", seqno=7))
        network.multicast(control_packet("s", seqno=8))
        sim.run()
        assert [p.seqno for _, p in sinks["r1"].received] == [8]


class TestAccounting:
    def test_crossings_by_kind_and_cast(self):
        sim, network, _ = build(line_tree())
        network.multicast(control_packet("r1", kind=PacketKind.RQST))
        network.unicast("r2", control_packet("r1", kind=PacketKind.ERQST))
        network.multicast(payload_packet("r2", kind=PacketKind.REPL))
        sim.run()
        crossings = network.crossings
        assert crossings.multicast_control_crossings == 3
        assert crossings.unicast_control_crossings == 2
        assert crossings.retransmission_crossings == 3
        assert crossings.by_kind(PacketKind.RQST) == 3
        assert crossings.by_cast(Cast.UNICAST) == 2

    def test_snapshot_keys(self):
        sim, network, _ = build(line_tree())
        network.multicast(control_packet("s", kind=PacketKind.SESSION))
        sim.run()
        assert network.crossings.snapshot() == {("session", "multicast"): 3}

    def test_rtt_helpers(self):
        _, network, _ = build(two_subtrees())
        assert network.control_delay("s", "r1") == pytest.approx(0.060)
        assert network.rtt("s", "r1") == pytest.approx(0.120)


class TestAttachment:
    def test_attach_at_router_rejected(self):
        _, network, _ = build(line_tree())
        with pytest.raises(ValueError):
            network.attach("x1", Sink(Simulator()))

    def test_unicast_to_agentless_host_raises(self):
        tree = line_tree()
        sim = Simulator()
        network = Network(sim, tree)
        sink = Sink(sim)
        network.attach("r1", sink)
        network.unicast("r2", control_packet("r1", kind=PacketKind.ERQST))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_queueing_serializes_payload_bursts(self):
        sim, network, sinks = build(line_tree())
        for seq in range(3):
            network.multicast(payload_packet("s", seqno=seq))
        sim.run()
        times = [when for when, _ in sinks["r1"].received]
        tx = 1024 * 8 / 1.5e6
        assert times[0] == pytest.approx(2 * (tx + 0.020))
        # subsequent packets queue behind the first on each hop
        assert times[1] == pytest.approx(times[0] + tx)
        assert times[2] == pytest.approx(times[0] + 2 * tx)
