"""Tests for metrics collection, statistics, and overhead accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.collector import MetricsCollector
from repro.metrics.overhead import OverheadBreakdown, overhead_breakdown
from repro.metrics.stats import mean, median, percentile, safe_ratio
from repro.net.network import CrossingCounter
from repro.net.packet import Cast, Packet, PacketKind


def packet(kind: PacketKind, cast: Cast = Cast.MULTICAST) -> Packet:
    return Packet(
        kind=kind, origin="h", source="s", seqno=0, size_bytes=0, cast=cast
    )


class TestCollector:
    def test_send_counting_by_kind(self):
        metrics = MetricsCollector()
        metrics.on_send("r1", packet(PacketKind.RQST))
        metrics.on_send("r1", packet(PacketKind.RQST))
        metrics.on_send("r2", packet(PacketKind.REPL))
        assert metrics.sends_by_host_kind("r1", PacketKind.RQST) == 2
        assert metrics.sends_by_host_kind("r2", PacketKind.REPL) == 1
        assert metrics.total_sends(PacketKind.RQST) == 2

    def test_erqst_always_counted_unicast(self):
        metrics = MetricsCollector()
        metrics.on_send("r1", packet(PacketKind.ERQST, cast=Cast.MULTICAST))
        assert metrics.sends[("r1", PacketKind.ERQST, Cast.UNICAST)] == 1

    def test_recovery_latency_filters(self):
        metrics = MetricsCollector()
        metrics.on_recovery("r1", 1, 0.5, expedited=True, requests_sent=0)
        metrics.on_recovery("r1", 2, 1.5, expedited=False, requests_sent=1)
        assert metrics.recovery_latencies("r1") == [0.5, 1.5]
        assert metrics.recovery_latencies("r1", expedited=True) == [0.5]
        assert metrics.recovery_latencies("r1", expedited=False) == [1.5]
        assert metrics.recovery_count("r1") == 2
        assert metrics.recovery_count("r2") == 0

    def test_expedited_success_rate(self):
        metrics = MetricsCollector()
        for _ in range(4):
            metrics.on_send("r1", packet(PacketKind.ERQST, cast=Cast.UNICAST))
        for _ in range(3):
            metrics.on_send("r2", packet(PacketKind.EREPL))
        assert metrics.expedited_requests_sent == 4
        assert metrics.expedited_replies_sent == 3
        assert metrics.expedited_success_rate == pytest.approx(0.75)

    def test_success_rate_zero_requests(self):
        assert MetricsCollector().expedited_success_rate == 0.0

    def test_all_recoveries_flattened(self):
        metrics = MetricsCollector()
        metrics.on_recovery("r1", 1, 0.5, True, 0)
        metrics.on_recovery("r2", 1, 0.7, False, 1)
        assert len(metrics.all_recoveries()) == 2

    def test_event_counters(self):
        metrics = MetricsCollector()
        metrics.on_loss_detected("r1", 3, 1.0)
        metrics.on_duplicate_reply("r1", 3)
        metrics.on_undetected_recovery("r2", 4)
        metrics.on_late_arrival("r2", 5)
        assert metrics.losses_detected["r1"] == 1
        assert metrics.duplicate_replies["r1"] == 1
        assert metrics.undetected_recoveries["r2"] == 1
        assert metrics.late_arrivals["r2"] == 1


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert median([]) == 0.0

    def test_percentile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 30) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_percentile_within_range(self, values):
        p = percentile(values, 37.5)
        assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_median_is_50th_percentile(self, values):
        assert median(values) == pytest.approx(percentile(values, 50), abs=1e-9)

    def test_safe_ratio(self):
        assert safe_ratio(6, 3) == 2.0
        assert safe_ratio(1, 0) == 0.0
        assert safe_ratio(1, 0, default=99.0) == 99.0


class TestOverhead:
    def build_counter(self, entries):
        counter = CrossingCounter()
        for kind, cast, n in entries:
            for _ in range(n):
                counter.record(packet(kind, cast))
        return counter

    def test_breakdown_categories(self):
        counter = self.build_counter(
            [
                (PacketKind.REPL, Cast.MULTICAST, 10),
                (PacketKind.EREPL, Cast.SUBCAST, 5),
                (PacketKind.RQST, Cast.MULTICAST, 7),
                (PacketKind.ERQST, Cast.UNICAST, 3),
                (PacketKind.SESSION, Cast.MULTICAST, 100),  # excluded
                (PacketKind.DATA, Cast.MULTICAST, 50),  # excluded
            ]
        )
        breakdown = overhead_breakdown(counter)
        assert breakdown.retransmissions == 15
        assert breakdown.multicast_control == 7
        assert breakdown.unicast_control == 3
        assert breakdown.total == 25
        assert breakdown.control == 10

    def test_as_percent_of_baseline(self):
        cesrm = OverheadBreakdown(
            retransmissions=30, multicast_control=10, unicast_control=10
        )
        srm = OverheadBreakdown(
            retransmissions=60, multicast_control=40, unicast_control=0
        )
        pct = cesrm.as_percent_of(srm)
        assert pct["retransmissions"] == pytest.approx(30.0)
        assert pct["multicast_control"] == pytest.approx(10.0)
        assert pct["unicast_control"] == pytest.approx(10.0)
        assert pct["total"] == pytest.approx(50.0)

    def test_as_percent_of_zero_baseline(self):
        breakdown = OverheadBreakdown(1, 1, 1)
        empty = OverheadBreakdown(0, 0, 0)
        assert breakdown.as_percent_of(empty)["total"] == 0.0


class TestRoundsHistogram:
    def test_histogram_counts_rounds(self):
        metrics = MetricsCollector()
        metrics.on_recovery("r1", 1, 0.5, False, 1)
        metrics.on_recovery("r1", 2, 0.5, False, 1)
        metrics.on_recovery("r2", 1, 0.5, True, 0)
        metrics.on_recovery("r2", 9, 2.5, False, 3)
        assert metrics.rounds_histogram() == {0: 1, 1: 2, 3: 1}

    def test_histogram_empty(self):
        assert MetricsCollector().rounds_histogram() == {}

    def test_lossless_recovery_needs_few_rounds(self):
        from repro.harness.config import SimulationConfig
        from repro.harness.runner import run_trace
        from repro.traces.synthesize import SynthesisParams, synthesize_trace

        params = SynthesisParams(
            name="rounds",
            n_receivers=5,
            tree_depth=3,
            period=0.05,
            n_packets=400,
            target_losses=200,
        )
        synthetic = synthesize_trace(params, seed=3)
        result = run_trace(synthetic, "srm", SimulationConfig())
        histogram = result.metrics.rounds_histogram()
        # under lossless recovery, round <= 1 dominates overwhelmingly
        within_one = histogram.get(0, 0) + histogram.get(1, 0)
        assert within_one / sum(histogram.values()) > 0.9
