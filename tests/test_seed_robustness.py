"""Seed robustness: the paper's shapes are not a seed artefact.

The qualitative claims (CESRM faster, cheaper, mostly-expedited) must hold
across protocol-jitter seeds *and* across trace-synthesis seeds, and runs
with verification enabled must behave identically to unverified ones.
"""

import pytest

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.stats import mean
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import trace_meta

MAX_PACKETS = 1200


def avg_latency(result) -> float:
    return mean([result.avg_normalized_recovery_time(r) for r in result.receivers])


class TestAcrossProtocolSeeds:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cesrm_beats_srm_for_every_jitter_seed(self, seed):
        synthetic = synthesize_trace(
            trace_meta("WRN951128"), seed=0, max_packets=MAX_PACKETS
        )
        config = SimulationConfig(seed=seed, max_packets=MAX_PACKETS)
        srm = run_trace(synthetic, "srm", config)
        cesrm = run_trace(synthetic, "cesrm", config)
        assert avg_latency(cesrm) < avg_latency(srm)
        assert cesrm.overhead.retransmissions < srm.overhead.retransmissions
        assert srm.unrecovered_losses == cesrm.unrecovered_losses == 0


class TestAcrossTraceSeeds:
    @pytest.mark.parametrize("trace_seed", [0, 1, 2])
    def test_shapes_hold_for_every_synthesis_seed(self, trace_seed):
        synthetic = synthesize_trace(
            trace_meta("WRN951030"), seed=trace_seed, max_packets=MAX_PACKETS
        )
        config = SimulationConfig(max_packets=MAX_PACKETS)
        srm = run_trace(synthetic, "srm", config)
        cesrm = run_trace(synthetic, "cesrm", config)
        reduction = 1.0 - avg_latency(cesrm) / avg_latency(srm)
        assert reduction > 0.2, trace_seed
        assert cesrm.metrics.expedited_success_rate > 0.5, trace_seed


class TestVerifiedRunsMatchUnverified:
    def test_monitor_does_not_perturb_results(self):
        """The invariant monitor observes but never mutates: metrics of a
        verified run equal the unverified run's exactly."""
        synthetic = synthesize_trace(
            trace_meta("WRN951216"), seed=0, max_packets=800
        )
        plain = run_trace(synthetic, "cesrm", SimulationConfig(max_packets=800))
        verified = run_trace(
            synthetic,
            "cesrm",
            SimulationConfig(max_packets=800, verify_period=0.05),
        )
        assert plain.metrics.sends == verified.metrics.sends
        assert plain.crossings_snapshot == verified.crossings_snapshot
        assert [r.latency for r in plain.metrics.all_recoveries()] == [
            r.latency for r in verified.metrics.all_recoveries()
        ]

    def test_verify_period_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(verify_period=0.0)

    def test_all_protocols_pass_verification(self):
        synthetic = synthesize_trace(trace_meta("WRN951216"), seed=0, max_packets=500)
        config = SimulationConfig(max_packets=500, verify_period=0.1)
        for protocol in ("srm", "srm-adaptive", "cesrm", "cesrm-router", "lms"):
            result = run_trace(synthetic, protocol, config)
            assert result.unrecovered_losses == 0, protocol
