"""Machine-readable CLI surfaces: ``--json`` listings and the sweep
command's argument handling."""

import json

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.registry import available_protocols
from repro.workloads import available_workloads


def _json_out(capsys) -> dict:
    return json.loads(capsys.readouterr().out)


class TestProtocolsJson:
    def test_lists_every_registered_protocol(self, capsys):
        assert main(["protocols", "--json"]) == 0
        data = _json_out(capsys)
        assert [p["name"] for p in data["protocols"]] == list(available_protocols())

    def test_entry_shape(self, capsys):
        main(["protocols", "--json"])
        entry = _json_out(capsys)["protocols"][0]
        assert set(entry) == {"name", "description", "tags", "fabric"}
        assert isinstance(entry["fabric"], bool)


class TestWorkloadsJson:
    def test_lists_every_workload(self, capsys):
        assert main(["workloads", "--json"]) == 0
        data = _json_out(capsys)
        assert [w["name"] for w in data["workloads"]] == list(available_workloads())
        assert data["topologies"]  # the tree: generative topology family

    def test_params_documented(self, capsys):
        main(["workloads", "--json"])
        data = _json_out(capsys)
        for workload in data["workloads"]:
            assert isinstance(workload["params"], dict)


class TestFaultsJson:
    def test_lists_event_vocabulary(self, capsys):
        assert main(["faults", "--json"]) == 0
        data = _json_out(capsys)
        types = [e["type"] for e in data["events"]]
        assert "link-down" in types
        assert "partition" in types
        assert types == sorted(types)
        assert "plan" not in data  # no plan loaded

    def test_includes_loaded_plan(self, capsys):
        assert main(["faults", "--json", "--sample"]) == 0
        data = _json_out(capsys)
        assert data["plan"]["events"]


class TestSweepParser:
    def test_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "query",
                "--where",
                "protocol=cesrm",
                "--where",
                "seed=0",
                "--group-by",
                "protocol,trace",
                "--metric",
                "avg_latency_rtt",
                "--agg",
                "max",
                "--format",
                "csv",
                "--store",
                "/tmp/x.sqlite",
            ]
        )
        assert args.command == "sweep"
        assert args.names == ["query"]
        assert args.where == ["protocol=cesrm", "seed=0"]
        assert args.group_by == "protocol,trace"
        assert args.agg == "max"
        assert args.fmt == "csv"
        assert args.store == "/tmp/x.sqlite"

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["sweep", "run", "grid.toml", "--chunk-size", "4", "--retries", "5"]
        )
        assert args.names == ["run", "grid.toml"]
        assert args.chunk_size == 4
        assert args.retries == 5

    def test_bad_agg_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "query", "--agg", "median"])

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "report", "--format", "yaml"])


class TestSweepCommand:
    def test_unknown_subcommand_usage(self, capsys):
        assert main(["sweep", "frobnicate"]) == 2
        assert "usage: cesrm sweep" in capsys.readouterr().err

    def test_run_needs_spec(self, capsys):
        assert main(["sweep", "run"]) == 2
        assert "needs a spec file" in capsys.readouterr().err

    def test_run_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[grid]\nprotocol = ["nope"]\ntrace = ["WRN950919"]\n')
        assert (
            main(["sweep", "run", str(bad), "--cache-dir", str(tmp_path)]) == 2
        )
        assert "bad sweep spec" in capsys.readouterr().err

    def test_status_empty_store(self, tmp_path, capsys):
        rc = main(["sweep", "status", "--store", str(tmp_path / "empty.sqlite")])
        assert rc == 0
        assert "no sweeps recorded" in capsys.readouterr().out

    def test_query_empty_store_exits_2(self, tmp_path, capsys):
        rc = main(["sweep", "query", "--store", str(tmp_path / "empty.sqlite")])
        assert rc == 2
        assert "no sweeps recorded" in capsys.readouterr().err

    def test_bad_where_token(self):
        from argparse import Namespace

        from repro.harness.cli import _sweep_where

        with pytest.raises(SystemExit, match="COL=VALUE"):
            _sweep_where(Namespace(where=["protocol"]))

    def test_where_tokens_parse(self):
        from argparse import Namespace

        from repro.harness.cli import _sweep_where

        parsed = _sweep_where(Namespace(where=["protocol=cesrm", " seed = 3 "]))
        assert parsed == {"protocol": "cesrm", "seed": "3"}
