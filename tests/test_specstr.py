"""The shared spec-string grammar (`repro.harness.specstr`).

The wording pins matter: the grammar predates this module (it was the
workloads parser), and `repro.workloads.registry.parse_spec` must keep
raising `WorkloadError` with exactly the legacy messages now that it
delegates here.
"""

import pytest

from repro.harness.specstr import (
    POSITIONAL,
    SpecError,
    canonical_spec,
    coerce_float,
    coerce_int,
    consume,
    float_param,
    int_param,
    parse_spec,
    reject_unknown,
)
from repro.workloads import WorkloadError
from repro.workloads import parse_spec as parse_workload_spec


class TestParseSpec:
    def test_bare_family(self):
        assert parse_spec("cbr") == ("cbr", {})

    def test_params(self):
        family, params = parse_spec("zipf:alpha=1.1,objects=500")
        assert family == "zipf"
        assert params == {"alpha": "1.1", "objects": "500"}

    def test_positional(self):
        family, params = parse_spec("trace:WRN951113")
        assert family == "trace"
        assert params == {POSITIONAL: "WRN951113"}

    def test_positional_mixes_with_keyed(self):
        _, params = parse_spec("trace:WRN951113,scale=2x")
        assert params == {POSITIONAL: "WRN951113", "scale": "2x"}

    def test_whitespace_tolerated(self):
        family, params = parse_spec("  zipf : alpha = 1.1 , objects = 500 ")
        assert family == "zipf"
        assert params == {"alpha": "1.1", "objects": "500"}

    @pytest.mark.parametrize(
        ("spec", "fragment"),
        [
            ("", "empty spec spec"),
            ("   ", "empty spec spec"),
            (":alpha=1", "has no family name"),
            ("zipf:", "trailing ':'"),
            ("zipf:alpha=1,,beta=2", "empty parameter"),
            ("zipf:a,b", "more than one positional"),
            ("zipf:alpha=", "malformed parameter"),
            ("zipf:=1.1", "malformed parameter"),
            ("zipf:alpha=1,alpha=2", "duplicate parameter 'alpha'"),
        ],
    )
    def test_grammar_errors(self, spec, fragment):
        with pytest.raises(SpecError, match=fragment):
            parse_spec(spec)

    def test_label_and_error_are_pluggable(self):
        class Boom(ValueError):
            pass

        with pytest.raises(Boom, match="empty gadget spec"):
            parse_spec("", label="gadget", error=Boom)

    def test_workload_parser_delegates_with_legacy_wording(self):
        """The workloads surface keeps its exact pre-extraction errors."""
        assert parse_workload_spec("zipf:alpha=1.1") == (
            "zipf",
            {"alpha": "1.1"},
        )
        with pytest.raises(WorkloadError, match="empty workload spec"):
            parse_workload_spec("")
        with pytest.raises(WorkloadError, match="has a trailing ':'"):
            parse_workload_spec("zipf:")
        with pytest.raises(
            WorkloadError, match="duplicate parameter 'alpha'"
        ):
            parse_workload_spec("zipf:alpha=1,alpha=2")


class TestCanonicalSpec:
    def test_sorted_keys(self):
        assert (
            canonical_spec("zipf", {"objects": "500", "alpha": "1.1"})
            == "zipf:alpha=1.1,objects=500"
        )

    def test_no_params(self):
        assert canonical_spec("unbounded", {}) == "unbounded"

    def test_positional_renders_bare_and_first(self):
        assert (
            canonical_spec("trace", {"scale": "2x", POSITIONAL: "WRN951113"})
            == "trace:WRN951113,scale=2x"
        )

    def test_round_trip(self):
        family, params = parse_spec("ttl:ttl=30s,capacity=8")
        assert parse_spec(canonical_spec(family, params)) == (family, params)


class TestCoercions:
    def test_consume_pops(self):
        params = {"a": "1", "b": "2"}
        assert consume(params, "a") == "1"
        assert consume(params, "missing", "dflt") == "dflt"
        assert params == {"b": "2"}

    def test_reject_unknown(self):
        reject_unknown({}, "cache policy 'lru'")
        with pytest.raises(
            SpecError, match=r"unknown parameter\(s\) \['z'\] for widget 'w'"
        ):
            reject_unknown({"z": "1"}, "widget 'w'")

    @pytest.mark.parametrize(
        ("raw", "expected"),
        [("1.5", 1.5), ("20x", 20.0), ("5s", 5.0), ("40ms", 0.04), ("1e2", 100.0)],
    )
    def test_float_suffixes(self, raw, expected):
        assert coerce_float(raw, "w", "k") == pytest.approx(expected)

    def test_float_errors(self):
        with pytest.raises(SpecError, match="is not a number"):
            coerce_float("fast", "w", "k")
        with pytest.raises(SpecError, match="is not finite"):
            coerce_float("inf", "w", "k")

    def test_float_param_default_and_minimum(self):
        params = {"p": "0.25"}
        assert float_param(params, "w", "p", 0.5) == 0.25
        assert params == {}
        assert float_param({}, "w", "p", 0.5) == 0.5
        with pytest.raises(SpecError, match="must be >= 0.5"):
            float_param({"p": "0.1"}, "w", "p", 0.5, minimum=0.5)

    def test_int_param(self):
        assert int_param({"capacity": "8"}, "w", "capacity", 16) == 8
        assert int_param({}, "w", "capacity", 16) == 16
        with pytest.raises(SpecError, match="is not an integer"):
            coerce_int("4.5", "w", "capacity")
        with pytest.raises(SpecError, match="must be >= 1"):
            int_param({"capacity": "0"}, "w", "capacity", 16)
