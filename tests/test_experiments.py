"""Tests for the experiment drivers (one per paper table/figure)."""

import pytest

from repro.harness import experiments as exp
from repro.harness import report
from repro.harness.analysis import LatencyModel, paper_latency_model
from repro.srm.constants import SrmParams
from repro.traces.yajnik import YAJNIK_TRACES

#: Tiny replay so the whole module stays fast; two traces stand in for six.
TINY = 600
TRACES = ("WRN951113", "WRN951216")


@pytest.fixture(scope="module")
def ctx():
    return exp.ExperimentContext(max_packets=TINY)


class TestContext:
    def test_trace_memoized(self, ctx):
        assert ctx.trace("WRN951113") is ctx.trace("WRN951113")

    def test_run_memoized(self, ctx):
        assert ctx.run("WRN951113", "srm") is ctx.run("WRN951113", "srm")

    def test_run_distinct_per_protocol(self, ctx):
        assert ctx.run("WRN951113", "srm") is not ctx.run("WRN951113", "cesrm")

    def test_max_packets_respected(self, ctx):
        assert ctx.trace("WRN951113").trace.n_packets == TINY

    def test_default_max_packets_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_TRACES", "1")
        assert exp.default_max_packets() is None
        monkeypatch.setenv("REPRO_FULL_TRACES", "")
        monkeypatch.setenv("REPRO_MAX_PACKETS", "1234")
        assert exp.default_max_packets() == 1234
        monkeypatch.setenv("REPRO_MAX_PACKETS", "")
        assert exp.default_max_packets() == exp.DEFAULT_MAX_PACKETS


class TestTable1:
    def test_all_fourteen_rows(self, ctx):
        rows = exp.table1(ctx)
        assert len(rows) == 14
        assert [r.name for r in rows] == [m.name for m in YAJNIK_TRACES]

    def test_rows_reflect_meta(self, ctx):
        rows = {r.name: r for r in exp.table1(ctx)}
        row = rows["WRN951113"]
        assert row.n_receivers == 12
        assert row.tree_depth == 5
        assert row.synthesized_packets == TINY

    def test_loss_calibration_reasonable(self, ctx):
        for row in exp.table1(ctx):
            assert row.loss_error < 0.35  # short replays are noisy but sane

    def test_render(self, ctx):
        text = report.render_table1(exp.table1(ctx))
        assert "WRN951113" in text
        assert "Table 1" in text


class TestFigure1:
    def test_per_receiver_series(self, ctx):
        results = exp.figure1(ctx, traces=TRACES)
        assert [r.trace for r in results] == list(TRACES)
        for res in results:
            assert len(res.srm) == len(res.receivers)
            assert len(res.cesrm) == len(res.receivers)

    def test_cesrm_reduces_latency(self, ctx):
        for res in exp.figure1(ctx, traces=TRACES):
            assert res.reduction > 0.15, res.trace

    def test_render(self, ctx):
        text = report.render_figure1(exp.figure1(ctx, traces=TRACES))
        assert "Figure 1" in text and "CESRM" in text


class TestFigure2:
    def test_gaps_positive_where_defined(self, ctx):
        for res in exp.figure2(ctx, traces=TRACES):
            defined = [g for g in res.gaps if g is not None]
            assert defined, res.trace
            assert res.mean_gap > 0

    def test_render(self, ctx):
        text = report.render_figure2(exp.figure2(ctx, traces=TRACES))
        assert "Figure 2" in text


class TestFigures3And4:
    def test_request_totals_favor_cesrm_multicast(self, ctx):
        for res in exp.figure3(ctx, traces=TRACES):
            srm_multicast = sum(res.srm)
            cesrm_multicast = sum(res.cesrm_multicast)
            assert cesrm_multicast < srm_multicast, res.trace

    def test_source_sends_no_requests(self, ctx):
        for res in exp.figure3(ctx, traces=TRACES):
            assert res.hosts[0] == "s"
            assert res.srm[0] == 0
            assert res.cesrm_multicast[0] == 0

    def test_reply_totals_favor_cesrm(self, ctx):
        for res in exp.figure4(ctx, traces=TRACES):
            assert res.cesrm_total < res.srm_total, res.trace

    def test_expedited_split_nonzero(self, ctx):
        for res in exp.figure4(ctx, traces=TRACES):
            assert sum(res.cesrm_expedited) > 0

    def test_render(self, ctx):
        text = report.render_packet_counts(
            exp.figure3(ctx, traces=TRACES), "Figure 3 (requests)"
        )
        assert "Figure 3" in text


class TestFigure5:
    def test_rows_for_requested_traces(self, ctx):
        rows = exp.figure5(ctx, traces=TRACES)
        assert [r.trace for r in rows] == list(TRACES)

    def test_success_rates_substantial(self, ctx):
        for row in exp.figure5(ctx, traces=TRACES):
            assert row.expedited_success_pct > 50.0

    def test_overhead_below_srm(self, ctx):
        for row in exp.figure5(ctx, traces=TRACES):
            assert row.retransmissions_pct < 100.0
            assert row.total_pct < 100.0

    def test_render(self, ctx):
        text = report.render_figure5(exp.figure5(ctx, traces=TRACES))
        assert "Figure 5" in text


class TestSection34:
    def test_paper_model_values(self):
        model = paper_latency_model()
        assert model.non_expedited_rtt == pytest.approx(3.25)
        assert model.expedited_rtt == pytest.approx(1.0)
        assert model.expected_gap_rtt == pytest.approx(2.25)

    def test_model_with_custom_params(self):
        model = LatencyModel(params=SrmParams(c1=1, c2=1, d1=1, d2=1))
        # ((1 + 0.5) + 1 + (1 + 0.5) + 1) / 2 = 2.5
        assert model.non_expedited_rtt == pytest.approx(2.5)

    def test_reorder_delay_shifts_expedited(self):
        model = LatencyModel(params=SrmParams(), reorder_delay_rtt=0.5)
        assert model.expedited_rtt == pytest.approx(1.5)

    def test_simulation_within_bands(self, ctx):
        result = exp.section_3_4(ctx, traces=TRACES)
        lo, hi = result.srm_band
        for trace, avg in result.simulated_srm_avg_rtt.items():
            assert lo * 0.8 <= avg <= hi * 1.2, trace
        glo, ghi = result.gap_band
        for trace, gap in result.simulated_gap_rtt.items():
            assert glo * 0.5 <= gap <= ghi * 1.3, trace

    def test_render(self, ctx):
        text = report.render_section_3_4(exp.section_3_4(ctx, traces=TRACES))
        assert "§3.4" in text


class TestAblations:
    def test_policy_rows(self, ctx):
        rows = exp.ablation_policy(ctx, traces=("WRN951113",))
        labels = {r.label for r in rows}
        assert labels == {"most-recent", "most-frequent"}

    def test_cache_capacity_rows(self, ctx):
        rows = exp.ablation_cache_capacity(
            ctx, capacities=(1, 16), trace="WRN951113"
        )
        assert [r.label for r in rows] == ["capacity=1", "capacity=16"]
        # most-recent policy: capacity must not matter
        assert rows[0].avg_normalized_latency == pytest.approx(
            rows[1].avg_normalized_latency, rel=0.05
        )

    def test_reorder_delay_increases_latency(self, ctx):
        rows = exp.ablation_reorder_delay(
            ctx, delays=(0.0, 0.25), trace="WRN951113"
        )
        assert rows[1].avg_normalized_latency > rows[0].avg_normalized_latency

    def test_link_delay_rows(self, ctx):
        rows = exp.ablation_link_delay(ctx, delays=(0.010, 0.030), trace="WRN951216")
        assert len(rows) == 4
        # normalized latencies stay in the same ballpark across delays (§4.3)
        srm = [r for r in rows if r.label.startswith("srm")]
        assert srm[0].avg_normalized_latency == pytest.approx(
            srm[1].avg_normalized_latency, rel=0.5
        )

    def test_lossy_rows_structure(self, ctx):
        rows = exp.ablation_lossy_recovery(ctx, traces=("WRN951113",))
        assert len(rows) == 4
        labels = {r.label for r in rows}
        assert labels == {
            "srm/lossless",
            "cesrm/lossless",
            "srm/lossy",
            "cesrm/lossy",
        }

    def test_router_assist_cuts_erepl_exposure(self, ctx):
        rows = exp.router_assist_comparison(ctx, traces=("WRN951113",))
        by_protocol = {r.protocol: r for r in rows}
        assert (
            by_protocol["cesrm-router"].expedited_reply_crossings
            <= by_protocol["cesrm"].expedited_reply_crossings
        )

    def test_render_ablation(self, ctx):
        text = report.render_ablation(
            exp.ablation_policy(ctx, traces=("WRN951113",)), "Ablation"
        )
        assert "most-recent" in text
