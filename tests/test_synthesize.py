"""Tests for calibrated trace synthesis."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import build_random_tree
from repro.traces.model import TraceError
from repro.traces.synthesize import (
    SynthesisParams,
    calibrate_link_rates,
    expected_total_losses,
    raw_link_propensities,
    synthesize_trace,
)
from repro.traces.yajnik import trace_meta


def small_params(**overrides) -> SynthesisParams:
    defaults = dict(
        name="unit",
        n_receivers=6,
        tree_depth=4,
        period=0.08,
        n_packets=3000,
        target_losses=1500,
    )
    defaults.update(overrides)
    return SynthesisParams(**defaults)


class TestCalibration:
    def test_expected_total_monotone_in_rates(self):
        tree = build_random_tree(6, 4, random.Random(0))
        low = {link: 0.01 for link in tree.links}
        high = {link: 0.05 for link in tree.links}
        assert expected_total_losses(tree, low, 1000) < expected_total_losses(
            tree, high, 1000
        )

    def test_calibrated_expectation_hits_target(self):
        tree = build_random_tree(8, 4, random.Random(1))
        propensities = raw_link_propensities(tree, random.Random(2))
        rates = calibrate_link_rates(tree, propensities, 2000, 5000)
        expected = expected_total_losses(tree, rates, 5000)
        assert expected == pytest.approx(2000, rel=0.01)

    def test_zero_target(self):
        tree = build_random_tree(4, 3, random.Random(0))
        propensities = raw_link_propensities(tree, random.Random(0))
        rates = calibrate_link_rates(tree, propensities, 0, 1000)
        assert all(rate == 0.0 for rate in rates.values())

    def test_unreachable_target_raises(self):
        tree = build_random_tree(2, 2, random.Random(0))
        propensities = raw_link_propensities(tree, random.Random(0))
        with pytest.raises(TraceError):
            calibrate_link_rates(tree, propensities, 10_000, 100)

    def test_rates_respect_cap(self):
        tree = build_random_tree(4, 3, random.Random(3))
        propensities = raw_link_propensities(tree, random.Random(3))
        rates = calibrate_link_rates(tree, propensities, 500, 1000, rate_cap=0.4)
        assert all(rate <= 0.4 for rate in rates.values())


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_trace(small_params(), seed=5)
        b = synthesize_trace(small_params(), seed=5)
        assert a.trace.loss_seqs == b.trace.loss_seqs
        assert a.link_combos == b.link_combos
        assert a.link_rates == b.link_rates

    def test_seed_changes_output(self):
        a = synthesize_trace(small_params(), seed=1)
        b = synthesize_trace(small_params(), seed=2)
        assert a.trace.loss_seqs != b.trace.loss_seqs

    def test_structure_matches_request(self):
        synthetic = synthesize_trace(small_params(), seed=0)
        trace = synthetic.trace
        assert len(trace.tree.receivers) == 6
        assert trace.tree.depth == 4
        assert trace.n_packets == 3000
        assert trace.period == pytest.approx(0.08)

    def test_losses_near_target(self):
        synthetic = synthesize_trace(small_params(), seed=0)
        assert synthetic.trace.total_losses == pytest.approx(1500, rel=0.15)

    def test_from_meta_matches_table1(self):
        synthetic = synthesize_trace(trace_meta("WRN951216"), seed=0, max_packets=2500)
        trace = synthetic.trace
        meta = trace_meta("WRN951216")
        assert len(trace.tree.receivers) == meta.n_receivers
        assert trace.tree.depth == meta.tree_depth
        assert trace.n_packets == 2500
        scaled_target = round(meta.n_losses * 2500 / meta.n_packets)
        assert trace.total_losses == pytest.approx(scaled_target, rel=0.15)

    def test_max_packets_truncates_params(self):
        params = small_params()
        synthetic = synthesize_trace(params, seed=0, max_packets=1000)
        assert synthetic.trace.n_packets == 1000
        # loss target scales proportionally
        assert synthetic.trace.total_losses == pytest.approx(500, rel=0.25)

    def test_combos_cover_every_lossy_packet(self):
        synthetic = synthesize_trace(small_params(n_packets=1500), seed=3)
        assert set(synthetic.link_combos) == set(synthetic.trace.lossy_packets())

    def test_combos_reproduce_observed_patterns(self):
        synthetic = synthesize_trace(small_params(n_packets=1500), seed=4)
        tree = synthetic.trace.tree
        for packet, combo in synthetic.link_combos.items():
            covered = set()
            for _, child in combo:
                covered |= tree.subtree_receivers(child)
            assert covered == synthetic.trace.loss_pattern(packet)

    def test_combos_are_antichains(self):
        synthetic = synthesize_trace(small_params(n_packets=1500), seed=5)
        tree = synthetic.trace.tree
        for combo in synthetic.link_combos.values():
            for _, child_a in combo:
                for _, child_b in combo:
                    if child_a != child_b:
                        assert not tree.is_descendant(child_a, child_b)

    def test_responsible_link_defined_for_every_loss(self):
        synthetic = synthesize_trace(small_params(n_packets=800), seed=6)
        trace = synthetic.trace
        for packet in trace.lossy_packets():
            for receiver in trace.loss_pattern(packet):
                assert synthetic.responsible_link(receiver, packet) is not None

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_loss_rates_within_physical_bounds(self, seed):
        synthetic = synthesize_trace(small_params(n_packets=500), seed=seed)
        for rate in synthetic.link_rates.values():
            assert 0.0 <= rate <= 0.60

    def test_losses_show_temporal_locality(self):
        """Consecutive-packet loss runs must be far likelier than under
        independence — the property CESRM exploits."""
        synthetic = synthesize_trace(small_params(n_packets=3000), seed=7)
        trace = synthetic.trace
        repeats = 0
        losses = 0
        for receiver in trace.tree.receivers:
            seq = trace.loss_seqs[receiver]
            for i in range(1, len(seq)):
                if seq[i]:
                    losses += 1
                    if seq[i - 1]:
                        repeats += 1
        rate = trace.mean_loss_rate
        # P(loss | previous loss) must far exceed the marginal rate.
        assert repeats / losses > 3 * rate

    def test_losses_show_spatial_locality(self):
        """The responsible link of a loss usually matches the responsible
        link of the receiver's previous loss (the CESRM premise)."""
        synthetic = synthesize_trace(small_params(n_packets=3000), seed=8)
        trace = synthetic.trace
        same = 0
        total = 0
        for receiver in trace.tree.receivers:
            previous = None
            seq = trace.loss_seqs[receiver]
            for packet in range(trace.n_packets):
                if not seq[packet]:
                    continue
                link = synthetic.responsible_link(receiver, packet)
                if previous is not None:
                    total += 1
                    if link == previous:
                        same += 1
                previous = link
        assert total > 0
        assert same / total > 0.5
