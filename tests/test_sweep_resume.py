"""Resumability under ``kill -9``: the run cache is the checkpoint.

A sweep process is started for real (subprocess), killed without
warning once at least one job has reached the cache, and resumed.  The
resume must treat every checkpointed job as a cache hit (no
recomputation), finish the remainder, and a third run must execute
nothing at all.
"""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

from repro.harness.cli import main

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

GRID = """
name = "resume"
description = "kill -9 resume exercise"

[defaults]
trace = "WRN950919"
max_packets = 500

[grid]
protocol = ["srm", "cesrm"]
seed = [0, 1, 2, 3, 4]
"""

TOTAL = 10
TALLY = re.compile(r"cached=(\d+) executed=(\d+) failed=(\d+)")


def _committed_entries(cache: Path) -> list[Path]:
    """Fully-written cache entries only — ``put`` stages through dotted
    ``.tmp-*.json`` files in the same directory before ``os.replace``,
    and a kill can land mid-write, orphaning one."""
    return [p for p in cache.glob("**/*.json") if not p.name.startswith(".")]


def _resume(spec_path: Path, cache: Path, store: Path, capsys) -> tuple[int, int, int]:
    rc = main(
        [
            "sweep",
            "run",
            str(spec_path),
            "--jobs",
            "2",
            "--cache-dir",
            str(cache),
            "--store",
            str(store),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    match = TALLY.search(out)
    assert match, f"no tally line in output:\n{out}"
    return tuple(int(g) for g in match.groups())


def test_kill9_then_resume_recomputes_only_missing_jobs(tmp_path, capsys):
    spec_path = tmp_path / "grid.toml"
    spec_path.write_text(GRID)
    cache = tmp_path / "cache"
    store = tmp_path / "sweeps.sqlite"

    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness.cli",
            "sweep",
            "run",
            str(spec_path),
            "--jobs",
            "2",
            "--chunk-size",
            "1",
            "--cache-dir",
            str(cache),
            "--store",
            str(store),
        ],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _committed_entries(cache) or proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            proc.kill()  # SIGKILL: no cleanup, no atexit, no flush
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - belt and braces
            proc.kill()
            proc.wait()

    checkpointed = len(_committed_entries(cache))
    assert checkpointed >= 1, "sweep was killed before any job checkpointed"

    # Resume: checkpointed jobs are cache hits, the rest execute.
    cached, executed, failed = _resume(spec_path, cache, store, capsys)
    assert failed == 0
    assert cached >= 1
    assert cached + executed == TOTAL
    assert executed <= TOTAL - 1  # at least one job was NOT recomputed

    # Third run: everything is checkpointed; nothing executes at all.
    cached, executed, failed = _resume(spec_path, cache, store, capsys)
    assert (cached, executed, failed) == (TOTAL, 0, 0)

    # The store converged to one ok row per job despite the kill.
    from repro.sweep import SweepStore, load_sweep

    with SweepStore(store) as st:
        digest = load_sweep(spec_path).digest()
        counts = st.counts(digest)
    assert counts["ok"] == TOTAL
    assert counts["failed"] == 0
