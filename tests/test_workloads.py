"""The repro.workloads registry, grammar, families, and runner glue."""

import math

import pytest

from repro.exec.summary import RunSummary
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.traces.synthesize import SynthesisParams, synthesize_trace
from repro.workloads import (
    SendEvent,
    WorkloadError,
    WorkloadSpec,
    all_workload_specs,
    available_workloads,
    compile_workload,
    get_workload_spec,
    parse_spec,
    register_workload,
    unregister_workload,
)

CFG = SimulationConfig(seed=11)


@pytest.fixture(scope="module")
def synthetic():
    return synthesize_trace(
        SynthesisParams(
            name="workload-test",
            n_receivers=6,
            tree_depth=3,
            period=0.1,
            n_packets=40,
            target_losses=10,
        ),
        seed=11,
    )


@pytest.fixture(scope="module")
def trace(synthetic):
    return synthetic.trace


class TestRegistry:
    def test_at_least_five_families(self):
        assert len(available_workloads()) >= 5

    def test_builtins_registered(self):
        names = available_workloads()
        for family in (
            "cbr", "poisson", "zipf", "flash_crowd", "diurnal",
            "multi_source", "trace",
        ):
            assert family in names

    def test_get_spec(self):
        assert get_workload_spec("zipf").name == "zipf"

    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            compile_workload("nope:alpha=1")

    def test_register_unregister_round_trip(self):
        spec = WorkloadSpec(name="test-double", factory=lambda p: None)
        register_workload(spec)
        try:
            assert "test-double" in available_workloads()
            with pytest.raises(WorkloadError, match="already registered"):
                register_workload(spec)
            register_workload(spec, replace=True)  # tests may swap doubles
        finally:
            unregister_workload("test-double")
        assert "test-double" not in available_workloads()

    def test_all_specs_in_registration_order(self):
        names = [s.name for s in all_workload_specs()]
        assert names == list(available_workloads())


class TestGrammar:
    def test_bare_family(self):
        assert parse_spec("cbr") == ("cbr", {})

    def test_key_value_params(self):
        family, params = parse_spec("zipf:alpha=1.1,objects=500")
        assert family == "zipf"
        assert params == {"alpha": "1.1", "objects": "500"}

    def test_positional_value(self):
        family, params = parse_spec("trace:WRN951128")
        assert family == "trace"
        assert params == {"": "WRN951128"}

    def test_canonical_spec_sorts_params(self):
        w1 = compile_workload("zipf:objects=16,alpha=1.2")
        w2 = compile_workload("zipf:alpha=1.2,objects=16")
        assert w1.spec == w2.spec == "zipf:alpha=1.2,objects=16"

    @pytest.mark.parametrize(
        "bad",
        ["", ":x=1", "zipf:", "zipf:=1", "zipf:alpha=", "zipf:alpha=1,alpha=2",
         "trace:A,B"],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(WorkloadError):
            compile_workload(bad)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(WorkloadError, match="unknown parameter"):
            compile_workload("zipf:alpa=1.1")

    def test_bad_value_rejected(self):
        with pytest.raises(WorkloadError, match="not a number"):
            compile_workload("flash_crowd:peak=huge")

    def test_unit_suffixes(self):
        # 20x multiplier and 5s/500ms durations all parse
        compile_workload("flash_crowd:peak=20x,ramp=5s,hold=500ms")

    def test_unknown_trace_name_rejected_at_compile(self):
        with pytest.raises(WorkloadError, match="unknown trace"):
            compile_workload("trace:NOPE")


class TestDeterminism:
    @pytest.mark.parametrize(
        "spec",
        ["cbr", "poisson", "zipf:alpha=1.2,objects=16", "flash_crowd:peak=6,ramp=1",
         "diurnal:period=2s,min=0.3", "multi_source:senders=3", "trace:WRN951128"],
    )
    def test_same_seed_same_stream(self, trace, spec):
        workload = compile_workload(spec)
        assert workload.events(trace, seed=7) == workload.events(trace, seed=7)

    @pytest.mark.parametrize("spec", ["poisson", "zipf:alpha=1.2,objects=16"])
    def test_different_seed_different_stream(self, trace, spec):
        workload = compile_workload(spec)
        assert workload.events(trace, seed=7) != workload.events(trace, seed=8)

    def test_stream_isolated_by_spec(self, trace):
        # two stochastic families under one seed draw from distinct streams
        a = compile_workload("poisson").events(trace, seed=7)
        b = compile_workload("poisson:rate=10").events(trace, seed=7)
        assert [e.time for e in a] != [e.time for e in b]


class TestFamilies:
    def test_cbr_matches_legacy_schedule(self, trace):
        events = compile_workload("cbr").events(trace, seed=0)
        assert [e.time for e in events] == [
            seq * trace.period for seq in range(trace.n_packets)
        ]
        assert {e.sender for e in events} == {trace.tree.source}

    def test_event_count_always_n_packets(self, trace):
        for spec in ("poisson", "zipf", "flash_crowd", "diurnal",
                     "multi_source:senders=4", "trace:WRN951113"):
            assert len(compile_workload(spec).events(trace, seed=1)) == trace.n_packets

    def test_multi_source_partitions_contiguously(self, trace):
        events = compile_workload("multi_source:senders=3").events(trace, seed=0)
        by_sender = {}
        for event in events:
            by_sender.setdefault(event.sender, []).append(event.seqno)
        assert len(by_sender) == 3
        assert trace.tree.source in by_sender
        for seqnos in by_sender.values():
            assert seqnos == list(range(len(seqnos)))

    def test_multi_source_caps_at_host_count(self, trace):
        events = compile_workload("multi_source:senders=999").events(trace, seed=0)
        assert len({e.sender for e in events}) == 1 + len(trace.tree.receivers)

    def test_flash_crowd_accelerates_mid_run(self, trace):
        events = compile_workload("flash_crowd:peak=8,ramp=0.5").events(trace, seed=0)
        gaps = [b.time - a.time for a, b in zip(events, events[1:])]
        assert min(gaps) < trace.period / 2  # surge compresses spacing
        assert math.isclose(gaps[0], trace.period)  # baseline before surge

    def test_diurnal_rate_varies(self, trace):
        events = compile_workload("diurnal:period=2s,min=0.2").events(trace, seed=0)
        gaps = {round(b.time - a.time, 6) for a, b in zip(events, events[1:])}
        assert len(gaps) > 5  # a sinusoid, not a constant

    def test_zipf_objects_are_skewed_and_trained(self, trace):
        events = compile_workload("zipf:alpha=1.4,objects=16,train=4").events(
            trace, seed=3
        )
        counts = {}
        for event in events:
            counts[event.obj] = counts.get(event.obj, 0) + 1
        # Zipf(1.4) over 16 objects concentrates mass far above uniform.
        assert max(counts.values()) > trace.n_packets / 16

    def test_trace_family_uses_named_period(self, trace):
        from repro.traces.yajnik import trace_meta

        events = compile_workload("trace:WRN951128").events(trace, seed=0)
        step = events[1].time - events[0].time
        assert math.isclose(step, trace_meta("WRN951128").period)


class TestValidation:
    def _with_double(self, factory):
        register_workload(
            WorkloadSpec(name="bad-double", factory=factory), replace=True
        )
        return compile_workload("bad-double")

    def teardown_method(self):
        unregister_workload("bad-double")

    def test_unknown_sender_rejected(self, trace):
        workload = self._with_double(
            lambda p: lambda t, rng: [SendEvent(0.0, "ghost", 0)]
        )
        with pytest.raises(WorkloadError, match="unknown sender"):
            workload.events(trace)

    def test_sequence_gap_rejected(self, trace):
        workload = self._with_double(
            lambda p: lambda t, rng: [
                SendEvent(0.0, t.tree.source, 0),
                SendEvent(0.1, t.tree.source, 5),
            ]
        )
        with pytest.raises(WorkloadError, match="sequence gaps"):
            workload.events(trace)

    def test_duplicate_seqno_rejected(self, trace):
        workload = self._with_double(
            lambda p: lambda t, rng: [
                SendEvent(0.0, t.tree.source, 0),
                SendEvent(0.1, t.tree.source, 0),
            ]
        )
        with pytest.raises(WorkloadError, match="repeats seqno"):
            workload.events(trace)

    def test_negative_time_rejected(self, trace):
        workload = self._with_double(
            lambda p: lambda t, rng: [SendEvent(-1.0, t.tree.source, 0)]
        )
        with pytest.raises(WorkloadError, match="invalid time"):
            workload.events(trace)

    def test_empty_stream_rejected(self, trace):
        workload = self._with_double(lambda p: lambda t, rng: [])
        with pytest.raises(WorkloadError, match="no events"):
            workload.events(trace)


class TestRunnerIntegration:
    def test_run_records_workload_stats(self, synthetic):
        result = run_trace(synthetic, "cesrm", CFG, workload="multi_source:senders=3")
        stats = result.workload
        assert stats is not None
        assert stats["spec"] == "multi_source:senders=3"
        assert stats["events"] == synthetic.trace.n_packets
        assert len(stats["senders"]) == 3
        assert stats["offered_load_pps"] > 0
        assert 0.0 <= stats["expedited_fraction"] <= 1.0
        if stats["recoveries"]:
            assert stats["latency_p50"] <= stats["latency_p90"] <= stats["latency_p99"]

    def test_default_run_has_no_workload_block(self, synthetic):
        result = run_trace(synthetic, "cesrm", CFG)
        assert result.workload is None
        summary = RunSummary.from_result(result)
        assert "workload" not in summary.to_dict()

    def test_cbr_equals_default_run(self, synthetic):
        """The explicit cbr workload reproduces the legacy schedule: the
        summaries agree on everything except the workload metadata (and
        the end-of-run timestamp, which may differ by float association)."""
        default = RunSummary.from_result(run_trace(synthetic, "cesrm", CFG))
        cbr = RunSummary.from_result(
            run_trace(synthetic, "cesrm", CFG, workload="cbr")
        )
        assert cbr.workload is not None
        for summary in (default, cbr):
            summary.wall_time = 0.0
            summary.sim_time = 0.0
            summary.workload = None
        assert cbr.to_json() == default.to_json()

    def test_workload_round_trips_through_summary_json(self, synthetic):
        result = run_trace(synthetic, "cesrm", CFG, workload="zipf:objects=8")
        summary = RunSummary.from_result(result)
        restored = RunSummary.from_json(summary.to_json())
        assert restored == summary
        assert restored.to_result().workload == result.workload

    def test_compiled_workload_accepted_directly(self, synthetic):
        workload = compile_workload("poisson")
        result = run_trace(synthetic, "srm", CFG, workload=workload)
        assert result.workload["family"] == "poisson"

    def test_workload_composes_with_faults(self, synthetic):
        from repro.faults import FaultPlan, NodeCrash

        plan = FaultPlan(events=(NodeCrash(host="r1", at=2.0, restart_after=1.0),))
        result = run_trace(
            synthetic, "cesrm", CFG, faults=plan, workload="zipf:objects=8"
        )
        assert result.workload is not None
        assert result.faults is not None  # both blocks recorded

    def test_workload_send_events_traced(self, synthetic):
        from repro.obs import RecoveryTimeline, RingBufferSink, Tracer
        from repro.obs.events import EventKind

        ring = RingBufferSink()
        run_trace(
            synthetic, "cesrm", CFG, tracer=Tracer(ring), workload="poisson"
        )
        sends = [e for e in ring.events if e.kind == EventKind.WORKLOAD_SEND]
        assert len(sends) == synthetic.trace.n_packets
        # RecoveryTimeline folds the stream unchanged (workload.send is
        # context it simply ignores).
        assert RecoveryTimeline.from_events(ring.events).stories
