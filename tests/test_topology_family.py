"""The generative ``tree:`` topology family (workloads satellite)."""

import pytest

from repro.workloads import WorkloadError, build_topology, synthesize_topology_trace
from repro.workloads.topology import (
    TREE_DEFAULTS,
    is_topology_spec,
    parse_topology_spec,
)


class TestRouter:
    def test_topology_specs_detected(self):
        assert is_topology_spec("tree:depth=3,fanout=2")
        assert is_topology_spec("tree:fanout=4")

    def test_yajnik_names_pass_through(self):
        assert not is_topology_spec("WRN951113")
        assert not is_topology_spec("RFV960508")

    def test_unknown_family_not_routed(self):
        # an unknown family with ':' is not a topology spec — it falls
        # through to trace_meta, which rejects it with its own error
        assert not is_topology_spec("mesh:size=4")


class TestParse:
    def test_defaults_filled_in(self):
        params = parse_topology_spec("tree:depth=2")
        assert params["depth"] == "2"
        for key, default in TREE_DEFAULTS.items():
            if key != "depth":
                assert params[key] == default

    @pytest.mark.parametrize(
        "bad",
        [
            "mesh:size=4",            # unknown family
            "tree:depth=0",           # depth >= 1
            "tree:fanout=0",          # fanout >= 1
            "tree:depth=12,fanout=3", # too many receivers
            "tree:loss=1.5",          # loss in (0, 1)
            "tree:loss=0",
            "tree:period=-1",
            "tree:packets=0",
            "tree:depth=two",         # not an int
            "tree:width=4",           # unknown key
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(WorkloadError):
            parse_topology_spec(bad)


class TestBuild:
    def test_balanced_tree_shape(self):
        tree = build_topology("tree:depth=3,fanout=2")
        assert len(tree.receivers) == 8  # 2**3 leaves
        assert tree.depth == 3
        assert tree.source in tree.hosts

    def test_fanout_scales_receivers(self):
        assert len(build_topology("tree:depth=2,fanout=4").receivers) == 16


class TestSynthesize:
    @staticmethod
    def _patterns(synthetic):
        trace = synthetic.trace
        return [trace.loss_pattern(p) for p in range(trace.n_packets)]

    def test_deterministic_in_seed(self):
        a = synthesize_topology_trace("tree:depth=2,fanout=2", seed=3)
        b = synthesize_topology_trace("tree:depth=2,fanout=2", seed=3)
        assert self._patterns(a) == self._patterns(b)

    def test_different_seed_differs(self):
        a = synthesize_topology_trace("tree:depth=2,fanout=2", seed=3)
        b = synthesize_topology_trace("tree:depth=2,fanout=2", seed=4)
        assert self._patterns(a) != self._patterns(b)

    def test_named_by_canonical_spec(self):
        trace = synthesize_topology_trace("tree:fanout=2,depth=2", seed=0)
        assert trace.trace.name == "tree:depth=2,fanout=2"

    def test_max_packets_caps_run_length(self):
        trace = synthesize_topology_trace(
            "tree:depth=2,fanout=2", seed=0, max_packets=50
        )
        assert trace.trace.n_packets == 50

    def test_losses_synthesized(self):
        trace = synthesize_topology_trace(
            "tree:depth=2,fanout=2", seed=0, max_packets=100
        ).trace
        assert trace.total_losses > 0


class TestEndToEnd:
    def test_runs_through_the_exec_stack(self):
        from repro.exec.jobs import RunJob, execute_job
        from repro.harness.config import SimulationConfig

        summary = execute_job(
            RunJob(
                trace="tree:depth=2,fanout=2",
                protocol="cesrm",
                config=SimulationConfig(seed=2, max_packets=60),
                trace_seed=2,
                trace_max_packets=60,
            )
        )
        assert summary.trace_name == "tree:depth=2,fanout=2"
        assert len(summary.receivers) == 4
