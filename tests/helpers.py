"""Shared test fixtures: small controlled worlds for protocol tests.

Protocol unit tests need precise control over topology, losses, and time.
``make_world`` wires a :class:`Simulator`, a :class:`Network`, and one agent
per host on a small explicit tree, with a recording metrics collector that
timestamps every event — so tests can assert *when* requests and replies
fire, not just that they fired.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.agent import CesrmAgent
from repro.core.policies import make_policy
from repro.core.router_assist import RouterAssistedCesrmAgent
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import Packet, PacketKind
from repro.net.topology import MulticastTree
from repro.sim.engine import Simulator
from repro.srm.agent import SrmAgent
from repro.srm.constants import SrmParams
from repro.traces.model import LossTrace, SyntheticTrace


def line_tree() -> MulticastTree:
    """s -> x1 -> {r1, r2}: the smallest interesting tree."""
    return MulticastTree("s", {"x1": "s", "r1": "x1", "r2": "x1"}, ["r1", "r2"])


def two_subtrees() -> MulticastTree:
    """s -> x0 -> {x1 -> {r1, r2}, x2 -> {r3, r4}}: two loss domains."""
    parents = {
        "x0": "s",
        "x1": "x0",
        "x2": "x0",
        "r1": "x1",
        "r2": "x1",
        "r3": "x2",
        "r4": "x2",
    }
    return MulticastTree("s", parents, ["r1", "r2", "r3", "r4"])


def deep_tree() -> MulticastTree:
    """A 4-deep tree with receivers at different depths."""
    parents = {
        "x1": "s",
        "x2": "x1",
        "x3": "x2",
        "r1": "x3",
        "r2": "x3",
        "r3": "x2",
        "r4": "x1",
    }
    return MulticastTree("s", parents, ["r1", "r2", "r3", "r4"])


class RecordingMetrics(MetricsCollector):
    """A metrics collector that also timestamps events (for timing tests)."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__()
        self.sim = sim
        self.send_log: list[tuple[float, str, PacketKind, int]] = []
        self.detection_log: list[tuple[float, str, int]] = []
        self.recovery_log: list[tuple[float, str, int, bool]] = []

    def on_send(self, host: str, packet: Packet) -> None:
        super().on_send(host, packet)
        self.send_log.append((self.sim.now, host, packet.kind, packet.seqno))

    def on_loss_detected(self, host: str, seq: int, time: float) -> None:
        super().on_loss_detected(host, seq, time)
        self.detection_log.append((time, host, seq))

    def on_recovery(self, host, seq, latency, expedited, requests_sent) -> None:
        super().on_recovery(host, seq, latency, expedited, requests_sent)
        self.recovery_log.append((self.sim.now, host, seq, expedited))

    def sends_of(self, kind: PacketKind, host: str | None = None):
        return [
            entry
            for entry in self.send_log
            if entry[2] is kind and (host is None or entry[1] == host)
        ]


@dataclass
class World:
    """One wired-up test simulation."""

    sim: Simulator
    network: Network
    tree: MulticastTree
    agents: dict[str, SrmAgent]
    metrics: RecordingMetrics
    params: SrmParams
    data_start: float = 0.0

    @property
    def source(self) -> SrmAgent:
        return self.agents[self.tree.source]

    def run_warmup(self, periods: float = 3.0, session_period: float = 1.0) -> None:
        """Start sessions and run until distance estimates converge."""
        hosts = self.tree.hosts
        for index, host in enumerate(hosts):
            self.agents[host].start(
                session_offset=(index + 0.5) * session_period / (len(hosts) + 1)
            )
        self.data_start = periods * session_period
        self.sim.run(until=self.data_start)

    def send_packets(
        self,
        n: int,
        period: float = 0.08,
        drop: dict[int, set[tuple[str, str]]] | None = None,
        start: float | None = None,
    ) -> None:
        """Schedule ``n`` data packets, dropping packet i on ``drop[i]``."""
        drop = drop or {}

        def drop_fn(u: str, v: str, packet: Packet) -> bool:
            if packet.kind is not PacketKind.DATA:
                return False
            return (u, v) in drop.get(packet.seqno, ())

        self.network.drop_fn = drop_fn
        t0 = self.data_start if start is None else start
        for seq in range(n):
            self.sim.schedule_at(t0 + seq * period, self.source.send_data, seq)

    def run(self, extra: float = 30.0) -> None:
        """Run the simulation ``extra`` seconds past the current queue."""
        self.sim.run(until=self.sim.now + extra)

    def agent(self, host: str) -> SrmAgent:
        return self.agents[host]


def make_world(
    tree: MulticastTree | None = None,
    protocol: str = "srm",
    params: SrmParams | None = None,
    propagation_delay: float = 0.020,
    policy: str = "most-recent",
    cache_capacity: int = 16,
    reorder_delay: float = 0.0,
    detect_on_request: bool = True,
    seed: int = 0,
) -> World:
    """Build a small, fully controlled protocol world."""
    tree = tree or line_tree()
    params = params or SrmParams()
    sim = Simulator()
    network = Network(sim, tree, propagation_delay=propagation_delay)
    metrics = RecordingMetrics(sim)
    agent_cls: type[SrmAgent] = {
        "srm": SrmAgent,
        "cesrm": CesrmAgent,
        "cesrm-router": RouterAssistedCesrmAgent,
    }[protocol]
    agents: dict[str, SrmAgent] = {}
    for index, host in enumerate(tree.hosts):
        kwargs: dict = dict(
            sim=sim,
            network=network,
            host_id=host,
            source=tree.source,
            params=params,
            rng=random.Random(seed * 1000 + index),
            metrics=metrics,
            detect_on_request=detect_on_request,
        )
        if protocol != "srm":
            kwargs.update(
                policy=make_policy(policy),
                cache_capacity=cache_capacity,
                reorder_delay=reorder_delay,
            )
        agents[host] = agent_cls(**kwargs)
    return World(
        sim=sim, network=network, tree=tree, agents=agents, metrics=metrics, params=params
    )


def make_synthetic(
    tree: MulticastTree,
    n_packets: int,
    period: float,
    combos: dict[int, frozenset[tuple[str, str]]],
    name: str = "test",
    link_rates: dict | None = None,
) -> SyntheticTrace:
    """A hand-authored synthetic trace: packet i is lost below combos[i]."""
    loss_seqs = {}
    for receiver in tree.receivers:
        path = tree.path(tree.source, receiver)
        path_links = set(zip(path, path[1:]))
        seq = bytearray(n_packets)
        for packet, combo in combos.items():
            if combo & path_links:
                seq[packet] = 1
        loss_seqs[receiver] = bytes(seq)
    trace = LossTrace(name, tree, period, loss_seqs)
    return SyntheticTrace(
        trace=trace,
        link_rates=link_rates or {link: 0.01 for link in tree.links},
        link_combos=dict(combos),
    )
