"""Tests for the adaptive SRM request-timer variant (ToN '97 §V)."""

import pytest

from repro.harness.runner import run_trace
from repro.net.packet import PacketKind
from repro.srm.adaptive import AdaptiveParams, AdaptiveSrmAgent, _AdaptiveState
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import make_world, two_subtrees


def adaptive_world(**kwargs):
    """A world whose receiver agents run the adaptive variant."""
    world = make_world(tree=two_subtrees(), **kwargs)
    # swap agents for adaptive ones (same wiring)
    import random

    from repro.srm.constants import SrmParams

    world.agents = {}
    for index, host in enumerate(world.tree.hosts):
        world.agents[host] = AdaptiveSrmAgent(
            sim=world.sim,
            network=world.network,
            host_id=host,
            source=world.tree.source,
            params=SrmParams(),
            rng=random.Random(100 + index),
            metrics=world.metrics,
        )
    return world


class TestAdjustmentRules:
    def params(self):
        return AdaptiveParams()

    def make_state(self, c1=2.0, c2=2.0, ave_dup=0.0, ave_delay=1.0):
        return _AdaptiveState(c1=c1, c2=c2, ave_dup=ave_dup, ave_delay=ave_delay)

    def agent(self):
        world = adaptive_world()
        return world.agents["r1"]

    def test_duplicates_grow_constants(self):
        agent = self.agent()
        state = self.make_state(ave_dup=2.0)
        agent._adjust(state)
        assert state.c1 == pytest.approx(2.0)  # clamped at c1_max
        assert state.c2 == pytest.approx(2.5)
        assert state.adjustments == 1

    def test_high_delay_shrinks_constants(self):
        agent = self.agent()
        state = self.make_state(ave_dup=0.0, ave_delay=2.0)
        agent._adjust(state)
        assert state.c2 == pytest.approx(1.5)
        assert state.c1 == pytest.approx(1.95)

    def test_moderate_dups_with_delay_grow_c1(self):
        agent = self.agent()
        state = self.make_state(c1=1.0, ave_dup=0.5, ave_delay=2.0)
        agent._adjust(state)
        assert state.c1 == pytest.approx(1.05)
        assert state.c2 == pytest.approx(1.5)

    def test_quiescent_state_unchanged(self):
        agent = self.agent()
        state = self.make_state(ave_dup=0.2, ave_delay=1.0)
        agent._adjust(state)
        assert state.c1 == 2.0 and state.c2 == 2.0
        assert state.adjustments == 0

    def test_clamping(self):
        agent = self.agent()
        state = self.make_state(c1=0.5, c2=1.0, ave_dup=0.0, ave_delay=5.0)
        for _ in range(20):
            agent._adjust(state)
        assert state.c1 >= agent.adaptive.c1_min
        assert state.c2 >= agent.adaptive.c2_min
        state = self.make_state(c1=2.0, c2=4.0, ave_dup=5.0)
        for _ in range(20):
            agent._adjust(state)
        assert state.c1 <= agent.adaptive.c1_max
        assert state.c2 <= agent.adaptive.c2_max


class TestSignals:
    def test_duplicate_requests_feed_ewma(self):
        world = adaptive_world()
        world.run_warmup()
        # two receivers share every loss -> duplicate requests happen
        drop = {seq: {("x0", "x1")} for seq in (1, 3, 5, 7, 9)}
        world.send_packets(11, period=0.4, drop=drop)
        world.run(extra=30.0)
        # at least one agent observed a duplicate or adjusted its state
        states = [
            agent.adaptive_state("s")
            for agent in world.agents.values()
            if isinstance(agent, AdaptiveSrmAgent)
        ]
        assert any(s.ave_dup > 0 or s.adjustments > 0 for s in states)

    def test_constants_drift_from_defaults(self):
        world = adaptive_world()
        world.run_warmup()
        drop = {seq: {("x0", "x1")} for seq in range(1, 20, 2)}
        world.send_packets(21, period=0.3, drop=drop)
        world.run(extra=30.0)
        drifted = [
            agent.request_constants("s")
            for agent in world.agents.values()
            if isinstance(agent, AdaptiveSrmAgent)
            and agent.request_constants("s") != (2.0, 2.0)
        ]
        assert drifted  # someone adapted

    def test_recovery_still_complete(self):
        world = adaptive_world()
        world.run_warmup()
        drop = {seq: {("x1", "r1")} for seq in (1, 4, 7)}
        world.send_packets(10, period=0.3, drop=drop)
        world.run(extra=30.0)
        assert world.agents["r1"].unrecovered_losses() == []


class TestRunnerIntegration:
    def synthetic(self):
        params = SynthesisParams(
            name="adaptive",
            n_receivers=6,
            tree_depth=4,
            period=0.05,
            n_packets=600,
            target_losses=350,
        )
        return synthesize_trace(params, seed=6)

    def test_protocol_registered(self):
        result = run_trace(self.synthetic(), "srm-adaptive")
        assert result.protocol == "srm-adaptive"
        assert result.unrecovered_losses == 0

    def test_adaptive_sends_no_expedited_traffic(self):
        result = run_trace(self.synthetic(), "srm-adaptive")
        assert result.metrics.total_sends(PacketKind.ERQST) == 0

    def test_adaptive_vs_fixed_tradeoff_exists(self):
        """Adaptation changes behaviour measurably (duplicates and/or
        latency differ from fixed-constant SRM on the same losses)."""
        synthetic = self.synthetic()
        fixed = run_trace(synthetic, "srm")
        adaptive = run_trace(synthetic, "srm-adaptive")
        fixed_stats = (
            fixed.metrics.total_sends(PacketKind.RQST),
            round(
                sum(fixed.avg_normalized_recovery_time(r) for r in fixed.receivers), 3
            ),
        )
        adaptive_stats = (
            adaptive.metrics.total_sends(PacketKind.RQST),
            round(
                sum(
                    adaptive.avg_normalized_recovery_time(r)
                    for r in adaptive.receivers
                ),
                3,
            ),
        )
        assert fixed_stats != adaptive_stats
        assert adaptive.unrecovered_losses == 0
