"""Integration: tracing must observe without perturbing.

The core guarantees of repro.obs: (1) attaching a tracer/profiler changes
nothing about the simulation's results — summaries are byte-identical
minus wall-clock and the ``obs`` block itself; (2) ``RunSummary`` carries
``obs`` losslessly when present and omits it (bytes unchanged vs an
obs-less build) when absent; (3) invariant violations surface in the
trace stream before the exception unwinds.
"""

import json

import pytest

from tests.helpers import make_world, two_subtrees

from repro.exec.summary import RunSummary
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.obs import EventKind, RingBufferSink, SimProfiler, Tracer
from repro.spec.invariants import Invariant
from repro.spec.monitor import InvariantMonitor, InvariantViolation
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import trace_meta

TINY = 200


@pytest.fixture(scope="module")
def synthetic():
    return synthesize_trace(trace_meta("WRN951113"), seed=0, max_packets=TINY)


def comparable(summary: RunSummary) -> str:
    data = summary.to_dict()
    data["wall_time"] = 0.0
    data.pop("obs", None)
    return json.dumps(data, sort_keys=True)


class TestTracingIsPureObservation:
    @pytest.mark.parametrize("protocol", ["srm", "cesrm"])
    def test_traced_run_results_identical_to_untraced(self, synthetic, protocol):
        config = SimulationConfig(seed=0, max_packets=TINY)
        plain = run_trace(synthetic, protocol, config)
        ring = RingBufferSink()
        traced = run_trace(
            synthetic, protocol, config,
            tracer=Tracer(ring), profiler=SimProfiler(),
        )
        assert ring.emitted > 0
        assert comparable(RunSummary.from_result(plain)) == comparable(
            RunSummary.from_result(traced)
        )

    def test_untraced_summary_json_has_no_obs_key(self, synthetic):
        config = SimulationConfig(seed=0, max_packets=TINY)
        summary = RunSummary.from_result(run_trace(synthetic, "cesrm", config))
        assert summary.obs is None
        assert "obs" not in summary.to_dict()
        assert '"obs"' not in summary.to_json()

    def test_obs_round_trips_through_json(self, synthetic):
        config = SimulationConfig(seed=0, max_packets=TINY)
        tracer = Tracer(RingBufferSink())
        result = run_trace(
            synthetic, "cesrm", config, tracer=tracer, profiler=SimProfiler()
        )
        summary = RunSummary.from_result(result)
        assert summary.obs is not None
        assert summary.obs["trace"]["events_emitted"] == tracer.emitted
        assert summary.obs["profile"]["events"] == result.events_processed
        again = RunSummary.from_json(summary.to_json())
        assert again.obs == summary.obs
        assert again.to_result().obs == summary.obs


class TestInvariantViolationEvents:
    def test_violation_reaches_trace_stream_before_raise(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        ring = RingBufferSink()
        world.sim.tracer = Tracer(ring)
        always_broken = Invariant(
            "always-broken", lambda agent, now: f"{agent.host_id} is sad"
        )
        monitor = InvariantMonitor(
            world.sim, world.agents, invariants=(always_broken,)
        )
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.check_now()
        assert excinfo.value.invariant == "always-broken"
        violations = [
            e for e in ring.events if e.kind == EventKind.INVARIANT_VIOLATION
        ]
        assert len(violations) == 1
        event = violations[0]
        assert event.node in world.agents  # carries the agent id
        assert event.detail["invariant"] == "always-broken"
        assert "is sad" in event.detail["message"]

    def test_healthy_run_emits_no_violation_events(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        ring = RingBufferSink()
        world.sim.tracer = Tracer(ring)
        monitor = InvariantMonitor(world.sim, world.agents)
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        monitor.check_now()
        assert monitor.checks_run >= 1
        kinds = {e.kind for e in ring.events}
        assert EventKind.INVARIANT_VIOLATION not in kinds
        assert EventKind.LOSS_DETECTED in kinds
