"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(2.0, out.append, "late")
    sim.schedule(1.0, out.append, "early")
    sim.schedule(3.0, out.append, "latest")
    sim.run()
    assert out == ["early", "late", "latest"]


def test_simultaneous_events_fire_fifo():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.25]
    assert sim.now == 4.25


def test_zero_delay_event_fires_after_current_instant_fifo():
    sim = Simulator()
    out = []

    def first():
        out.append("first")
        sim.schedule(0.0, out.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(1.0, out.append, "second")
    sim.run()
    assert out == ["first", "second", "nested"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    out = []
    event = sim.schedule(1.0, out.append, "cancelled")
    sim.schedule(2.0, out.append, "kept")
    event.cancel()
    sim.run()
    assert out == ["kept"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert not event.pending


def test_cancel_from_within_callback():
    sim = Simulator()
    out = []
    later = sim.schedule(2.0, out.append, "later")
    sim.schedule(1.0, later.cancel)
    sim.run()
    assert out == []


def test_run_until_stops_before_later_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "in")
    sim.schedule(5.0, out.append, "out")
    sim.run(until=2.0)
    assert out == ["in"]
    assert sim.now == 2.0
    assert sim.pending_events == 1


def test_run_until_includes_boundary_events():
    sim = Simulator()
    out = []
    sim.schedule(2.0, out.append, "boundary")
    sim.run(until=2.0)
    assert out == ["boundary"]


def test_run_resumes_after_until():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(3.0, out.append, "b")
    sim.run(until=2.0)
    sim.run()
    assert out == ["a", "b"]


def test_run_max_events():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=3)
    assert out == [0, 1, 2]


def test_stop_halts_run():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "first")
    sim.schedule(1.5, sim.stop)
    sim.schedule(2.0, out.append, "unreached")
    sim.run()
    assert out == ["first"]
    sim.run()  # resumes after stop
    assert out == ["first", "unreached"]


def test_step_fires_single_event():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(2.0, out.append, "b")
    assert sim.step()
    assert out == ["a"]
    assert sim.step()
    assert not sim.step()


def test_events_processed_counts_fired_only():
    sim = Simulator()
    kept = sim.schedule(1.0, lambda: None)
    cancelled = sim.schedule(2.0, lambda: None)
    cancelled.cancel()
    sim.run()
    assert sim.events_processed == 1
    assert kept.fired


def test_clear_drops_pending_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "x")
    sim.clear()
    sim.run()
    assert out == []


def test_clear_from_callback_halts_run():
    # clear() issued from inside a firing callback must stop the drain
    # loop dead: same-instant siblings and later buckets all vanish.
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: (out.append("a"), sim.clear()))
    sim.schedule(1.0, out.append, "sibling")
    sim.schedule(2.0, out.append, "later")
    sim.run()
    assert out == ["a"]
    assert sim.pending_events == 0
    # The engine is still usable afterwards.
    sim.schedule(1.0, out.append, "fresh")
    sim.run()
    assert out == ["a", "fresh"]


def test_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    out = []

    def chain(n):
        out.append(n)
        if n < 4:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert out == [0, 1, 2, 3, 4]
    assert sim.now == 5.0


def test_callback_args_passed_through():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda a, b, c: got.append((a, b, c)), 1, "two", [3])
    sim.run()
    assert got == [(1, "two", [3])]


def test_earlier_event_scheduled_after_until_break_fires_first():
    # A run(until=...) break can leave the engine paused on a future
    # event; anything scheduled before that instant between runs must
    # still fire first (and the clock must never move backwards).
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(5.0, out.append, "late")
    sim.schedule(5.0, out.append, "late2")
    sim.run(until=2.0)
    times = []
    sim.schedule_at(3.0, lambda: (out.append("mid"), times.append(sim.now)))
    sim.run()
    assert out == ["a", "mid", "late", "late2"]
    assert times == [3.0]
    assert sim.now == 5.0


def test_max_events_break_keeps_order_for_earlier_inserts():
    sim = Simulator()
    out = []
    for i in range(3):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=1)
    sim.schedule_at(1.5, out.append, "wedge")
    sim.run()
    assert out == [0, "wedge", 1, 2]


def test_compact_drops_cancelled_and_preserves_live_order():
    sim = Simulator()
    out = []
    cancelled = [sim.schedule(float(t), out.append, f"dead{t}") for t in (2, 3)]
    sim.schedule(2.0, out.append, "live2")
    sim.schedule(4.0, out.append, "live4")
    for event in cancelled:
        event.cancel()
    sim.compact()
    assert sim.pending_events == 2
    sim.run()
    assert out == ["live2", "live4"]


def test_schedule_raw_interleaves_with_events_in_call_order():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "event-first")
    sim.schedule_raw(1.0, out.append, ("raw",))
    sim.schedule(1.0, out.append, "event-second")
    sim.run()
    assert out == ["event-first", "raw", "event-second"]
    assert sim.events_processed == 3


def test_event_ordering_respects_subsecond_precision():
    sim = Simulator()
    out = []
    sim.schedule(0.0001, out.append, "a")
    sim.schedule(0.00009, out.append, "b")
    sim.run()
    assert out == ["b", "a"]


# ----------------------------------------------------------------------
# drain_batch: the batched stepping primitive (kernel v2)
# ----------------------------------------------------------------------
def test_drain_batch_fires_one_timestamp():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule_raw(1.0, out.append, ("b",))
    sim.schedule(2.0, out.append, "later")
    assert sim.drain_batch() == 2
    assert out == ["a", "b"]
    assert sim.now == 1.0
    assert sim.events_processed == 2
    assert sim.drain_batch() == 1
    assert out == ["a", "b", "later"]
    assert sim.drain_batch() == 0


def test_drain_batch_grouped_dispatch_preserves_fifo():
    # Runs of raw entries sharing a callback dispatch through a hoisted
    # local; interleaving with other callbacks must stay strictly FIFO.
    sim = Simulator()
    out = []
    other = []
    for i in range(3):
        sim.schedule_raw(1.0, out.append, (i,))
    sim.schedule_raw(1.0, other.append, ("x",))
    for i in range(3, 5):
        sim.schedule_raw(1.0, out.append, (i,))
    assert sim.drain_batch() == 6
    assert out == [0, 1, 2, 3, 4]
    assert other == ["x"]


def test_drain_batch_includes_zero_delay_appends():
    # Entries scheduled *at the draining instant* from inside a callback
    # join the same batch — matching run()'s live-bucket semantics.
    sim = Simulator()
    out = []

    def first():
        out.append("first")
        sim.schedule(0.0, out.append, "appended")

    sim.schedule(1.0, first)
    assert sim.drain_batch() == 2
    assert out == ["first", "appended"]


def test_drain_batch_until_stops_short_and_advances_clock():
    sim = Simulator()
    out = []
    sim.schedule(5.0, out.append, "far")
    assert sim.drain_batch(until=2.0) == 0
    assert sim.now == 2.0
    assert out == []
    assert sim.drain_batch() == 1
    assert out == ["far"]


def test_drain_batch_skips_cancelled_entries():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "live")
    dead = sim.schedule(1.0, out.append, "dead")
    dead.cancel()
    assert sim.drain_batch() == 1
    assert out == ["live"]
    assert sim.events_processed == 1


def test_drain_batch_not_reentrant():
    sim = Simulator()
    calls = []

    def reenter():
        try:
            sim.drain_batch()
        except SimulationError as exc:
            calls.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(calls) == 1


def test_clear_inside_drain_batch_drops_stale_siblings():
    # Regression (kernel v2): clear() fired from inside a batched drain
    # truncates the active bucket in place — the remaining same-timestamp
    # entries are stale and must NOT fire, and neither may later buckets.
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: (out.append("a"), sim.clear()))
    sim.schedule(1.0, out.append, "stale-sibling")
    sim.schedule_raw(1.0, out.append, ("stale-raw",))
    sim.schedule(2.0, out.append, "later")
    assert sim.drain_batch() == 1
    assert out == ["a"]
    assert sim.pending_events == 0
    # The engine stays usable: fresh work after the wipe drains normally.
    sim.schedule(3.0, out.append, "fresh")
    assert sim.drain_batch() == 1
    assert out == ["a", "fresh"]


def test_clear_inside_grouped_run_stops_same_callback_batch():
    # The grouped-by-callback fast path must re-check bucket identity
    # between entries of one run: clear() mid-run of identical callbacks
    # halts the group immediately.
    sim = Simulator()
    out = []

    def record(tag):
        out.append(tag)
        if tag == "b":
            sim.clear()

    for tag in ("a", "b", "c", "d"):
        sim.schedule_raw(1.0, record, (tag,))
    assert sim.drain_batch() == 2
    assert out == ["a", "b"]
    assert sim.pending_events == 0
