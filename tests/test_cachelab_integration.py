"""Cache policies through the whole stack: byte-identity of the default,
wire-format compatibility, determinism across execution modes, the sweep
axis, the store migration, and the CLI surfaces."""

import hashlib
import json
import sqlite3

import pytest

from repro.exec.cache import RunCache
from repro.exec.jobs import RunJob, execute_job
from repro.exec.pool import ExecutionEngine
from repro.exec.summary import RunSummary, config_from_dict, config_to_dict
from repro.harness.config import SimulationConfig
from repro.sweep import SweepError, SweepStore, compile_sweep

TRACE = "tree:depth=3,fanout=2"
CFG = SimulationConfig(seed=5, max_packets=80)
POLICIES = (
    "paper:capacity=16",
    "lru:capacity=4",
    "lfu:capacity=4",
    "ttl:capacity=8,ttl=5s",
    "prob:capacity=8,p=0.5",
    "unbounded",
)


def job(cache="", protocol="cesrm"):
    return RunJob(
        trace=TRACE,
        protocol=protocol,
        config=CFG.with_(cache=cache),
        trace_seed=5,
        trace_max_packets=80,
    )


def digest(summary: RunSummary) -> str:
    summary.wall_time = 0.0
    return hashlib.sha256(summary.to_json().encode()).hexdigest()


class TestByteIdentity:
    def test_default_config_key_unchanged(self):
        """A default-cache job serializes without any `cache` key, so its
        content digest matches pre-cachelab builds."""
        data = job().to_dict()
        assert "cache" not in data["config"]
        assert job().key() == job().key()
        assert job(cache="lru:capacity=4").key() != job().key()

    def test_paper_run_equals_default_run(self):
        """An explicit paper:capacity=16 run is the default run plus the
        stats block — every simulated byte identical."""
        default = execute_job(job()).to_dict()
        paper = execute_job(job(cache="paper:capacity=16")).to_dict()
        assert default.get("cache") is None and "cache" not in default
        block = paper.pop("cache")
        assert block["spec"] == "paper:capacity=16"
        assert paper["config"].pop("cache") == "paper:capacity=16"
        default["wall_time"] = paper["wall_time"] = 0.0
        assert paper == default

    def test_config_dict_round_trip(self):
        cfg = CFG.with_(cache="ttl:capacity=8,ttl=5s")
        data = config_to_dict(cfg)
        assert data["cache"] == "ttl:capacity=8,ttl=5s"
        assert config_from_dict(data) == cfg

    def test_pre_cachelab_wire_format_decodes(self):
        """A config dict written before the `cache` field existed decodes
        to the default policy."""
        data = config_to_dict(CFG)
        assert "cache" not in data
        assert config_from_dict(data).cache == ""

    def test_config_validates_spec_eagerly(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            SimulationConfig(cache="arc:capacity=16")

    def test_summary_json_round_trip(self):
        summary = execute_job(job(cache="lru:capacity=4"))
        clone = RunSummary.from_json(summary.to_json())
        assert clone == summary
        assert clone.cache["spec"] == "lru:capacity=4"


class TestRunStats:
    def test_default_run_has_no_cache_block(self):
        assert execute_job(job()).cache is None

    @pytest.mark.parametrize("spec", POLICIES)
    def test_stats_block_shape(self, spec):
        block = execute_job(job(cache=spec)).cache
        assert block is not None
        for key in (
            "spec",
            "caches",
            "inserts",
            "improvements",
            "rejects",
            "capacity_evictions",
            "replier_evictions",
            "expirations",
            "lookups",
            "hits",
            "evictions",
            "hit_rate",
            "expedited_fraction",
            "occupancy",
        ):
            assert key in block, key
        assert block["caches"] > 0
        assert 0.0 <= block["hit_rate"] <= 1.0
        assert block["evictions"] == (
            block["capacity_evictions"] + block["replier_evictions"]
        )

    def test_canonical_spec_recorded(self):
        block = execute_job(job(cache="ttl:ttl=5s,capacity=8")).cache
        assert block["spec"] == "ttl:capacity=8,ttl=5s"

    def test_unbounded_never_rejects(self):
        block = execute_job(job(cache="unbounded")).cache
        assert block["rejects"] == 0
        assert block["capacity_evictions"] == 0

    def test_tight_capacity_evicts_more(self):
        tight = execute_job(job(cache="lru:capacity=1")).cache
        roomy = execute_job(job(cache="lru:capacity=64")).cache
        assert tight["capacity_evictions"] > roomy["capacity_evictions"]


class TestDeterminism:
    def all_jobs(self):
        return [job(cache=spec) for spec in POLICIES]

    def digests(self, results):
        out = []
        for result in results:
            if not isinstance(result, RunSummary):
                result = RunSummary.from_result(result)
            out.append(digest(result))
        return out

    def test_serial_rerun_identical(self):
        j = job(cache="prob:capacity=8,p=0.5")
        assert digest(execute_job(j)) == digest(execute_job(j))

    def test_jobs2_matches_serial(self):
        serial = ExecutionEngine(jobs=1).execute(self.all_jobs())
        pooled = ExecutionEngine(jobs=2).execute(self.all_jobs())
        assert self.digests(serial) == self.digests(pooled)

    def test_cache_round_trip_identical(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        cold = ExecutionEngine(jobs=1, cache=cache).execute(self.all_jobs())
        warm = ExecutionEngine(jobs=1, cache=cache).execute(self.all_jobs())
        assert cache.stats.hits == len(POLICIES)
        assert self.digests(cold) == self.digests(warm)
        for summary in warm:
            assert summary.cache is not None

    def test_distinct_policies_distinct_slots(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        batch = self.all_jobs()
        assert len({j.key() for j in batch}) == len(batch)
        ExecutionEngine(jobs=1, cache=cache).execute(batch)
        entries = cache.entries()
        assert sorted(e.cache for e in entries) == sorted(
            "paper:capacity=16" if s.startswith("paper") else s
            for s in POLICIES
        )

    def test_prob_differs_from_paper(self):
        """The admission RNG actually changes the dynamics (and therefore
        the digest) relative to always-admit."""
        paper = execute_job(job(cache="paper:capacity=2"))
        prob = execute_job(job(cache="prob:capacity=2,p=0.1"))
        paper.cache = prob.cache = None
        paper.config = prob.config = {}
        assert digest(paper) != digest(prob)


class TestSweepAxis:
    def test_cache_axis_expands(self):
        spec = compile_sweep(
            {
                "name": "caches",
                "grid": {
                    "protocol": ["cesrm"],
                    "trace": [TRACE],
                    "cache": ["", "lru:capacity=4"],
                },
            }
        )
        assert len(spec.cases) == 2
        assert sorted(c.cache for c in spec.cases) == ["", "lru:capacity=4"]
        by_cache = {c.cache: c for c in spec.cases}
        assert by_cache["lru:capacity=4"].job.config.cache == "lru:capacity=4"
        assert by_cache[""].job.config.cache == ""
        assert by_cache[""].axes()["cache"] == ""

    def test_bad_cache_axis_fails_eagerly(self):
        with pytest.raises(SweepError, match="unknown cache policy"):
            compile_sweep(
                {
                    "name": "bad",
                    "grid": {
                        "protocol": ["cesrm"],
                        "trace": [TRACE],
                        "cache": ["arc:capacity=16"],
                    },
                }
            )

    def test_cache_is_reserved_as_param(self):
        with pytest.raises(SweepError, match="is a sweep axis, not a param"):
            compile_sweep(
                {
                    "name": "bad",
                    "grid": {"protocol": ["cesrm"], "trace": [TRACE]},
                    "params": {"cache": "lru:capacity=4"},
                }
            )

    def test_store_records_cache_metrics(self, tmp_path):
        from repro.sweep import run_sweep

        spec = compile_sweep(
            {
                "name": "caches",
                "defaults": {"max_packets": 80},
                "grid": {
                    "protocol": ["cesrm"],
                    "trace": [TRACE],
                    "cache": ["", "lru:capacity=4"],
                },
            }
        )
        with SweepStore(tmp_path / "store.sqlite") as store:
            run_sweep(spec, engine=ExecutionEngine(jobs=1), store=store)
            digest_ = spec.digest()
            assert store.distinct(digest_, "cache") == ["", "lru:capacity=4"]
            headers, rows = store.query(
                digest_,
                group_by=["cache"],
                metrics=["cache_inserts", "cache_hit_rate"],
            )
            by_cache = {row[0]: row for row in rows}
            # default-cache rows collected no stats -> NULL aggregates
            assert by_cache[""][1] is None
            assert by_cache["lru:capacity=4"][1] > 0
            assert 0.0 <= by_cache["lru:capacity=4"][2] <= 1.0


class TestStoreMigration:
    def test_old_store_gains_cache_columns(self, tmp_path):
        """A runs table created before the cache dimension existed is
        ALTER TABLE-migrated on open, and old rows read back with the
        defaults."""
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute(
            """CREATE TABLE runs (
                sweep_digest TEXT NOT NULL, job_key TEXT NOT NULL,
                protocol TEXT NOT NULL, trace TEXT NOT NULL,
                workload TEXT NOT NULL DEFAULT '',
                faults TEXT NOT NULL DEFAULT '',
                seed INTEGER NOT NULL, max_packets INTEGER,
                params TEXT NOT NULL DEFAULT '{}',
                status TEXT NOT NULL, cached INTEGER NOT NULL,
                attempts INTEGER NOT NULL, error TEXT,
                ingested_at REAL NOT NULL,
                n_packets INTEGER, total_losses INTEGER,
                recovered INTEGER, unrecovered INTEGER,
                avg_latency_rtt REAL, expedited_requests INTEGER,
                expedited_replies INTEGER, expedited_success REAL,
                expedited_fraction REAL, retransmissions INTEGER,
                multicast_control INTEGER, unicast_control INTEGER,
                events INTEGER, sim_time REAL, wall_time REAL,
                PRIMARY KEY (sweep_digest, job_key)
            )"""
        )
        conn.execute(
            """INSERT INTO runs (sweep_digest, job_key, protocol, trace,
                seed, max_packets, status, cached, attempts, ingested_at,
                n_packets)
               VALUES ('d0', 'k0', 'cesrm', 'T', 0, 80, 'ok', 0, 1, 0.0,
                       80)"""
        )
        conn.execute(
            """CREATE TABLE sweeps (
                digest TEXT PRIMARY KEY, name TEXT NOT NULL,
                description TEXT NOT NULL DEFAULT '',
                n_jobs INTEGER NOT NULL, schema INTEGER NOT NULL,
                created_at REAL NOT NULL, updated_at REAL NOT NULL)"""
        )
        conn.execute(
            "INSERT INTO sweeps VALUES ('d0', 'old', '', 1, 1, 0.0, 0.0)"
        )
        conn.commit()
        conn.close()

        with SweepStore(path) as store:
            columns = {
                row[1]
                for row in store._conn.execute(
                    "PRAGMA table_info(runs)"
                ).fetchall()
            }
            assert {
                "cache",
                "cache_inserts",
                "cache_evictions",
                "cache_hit_rate",
            } <= columns
            headers, rows = store.rows("d0")
            row = dict(zip(headers, rows[0]))
            assert row["cache"] == ""
            assert row["cache_inserts"] is None

    def test_migrated_store_accepts_new_rows(self, tmp_path):
        """After migration, ingest works with the full column set."""
        path = tmp_path / "old.sqlite"
        with SweepStore(path):
            pass  # current layout
        # dropping columns isn't possible; simulate old-store reopen
        with SweepStore(path) as store:  # second open: migration is a no-op
            assert store.counts("nothing")["recorded"] == 0


class TestCli:
    def run_cli(self, *argv):
        import contextlib
        import io

        from repro.harness.cli import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(list(argv))
        return code, out.getvalue()

    def test_caches_listing(self):
        code, out = self.run_cli("caches")
        assert code == 0
        for family in ("paper", "lru", "lfu", "ttl", "prob", "unbounded"):
            assert family in out

    def test_caches_json(self):
        code, out = self.run_cli("caches", "--json")
        assert code == 0
        payload = json.loads(out)
        names = [entry["name"] for entry in payload["caches"]]
        assert names == ["paper", "lru", "lfu", "ttl", "prob", "unbounded"]
        for entry in payload["caches"]:
            assert set(entry) == {"name", "description", "params", "tags"}

    def test_run_with_cache_reports_stats(self):
        code, out = self.run_cli(
            "run",
            "--trace",
            TRACE,
            "--max-packets",
            "80",
            "--cache",
            "lru:capacity=4",
            "--no-cache",
        )
        assert code == 0
        assert "cache lru:capacity=4" in out
        assert "hit rate" in out
        assert "occupancy by source" in out

    def test_run_default_has_no_cache_section(self):
        code, out = self.run_cli(
            "run", "--trace", TRACE, "--max-packets", "80", "--no-cache"
        )
        assert code == 0
        assert "hit rate" not in out

    def test_bad_cache_spec_fails_at_parse_time(self, capsys):
        from repro.harness.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cache", "arc:capacity=16"])
        assert "unknown cache policy" in capsys.readouterr().err

    def test_inline_fault_spec(self):
        code, out = self.run_cli(
            "run",
            "--trace",
            TRACE,
            "--max-packets",
            "80",
            "--no-cache",
            "--faults",
            "packet-duplicate:rate=0.05,start=1,end=6",
        )
        assert code == 0
        assert "losses" in out
