"""Incremental-index equivalence oracle.

Any sequence of :meth:`MulticastTree.attach_receiver` /
:meth:`MulticastTree.detach_subtree` patches must leave the in-place
:class:`~repro.net.index.TopologyIndex` answering every query — LCA,
paths, hop distances, routing rows, descendant tests, subtree receiver
bitsets — exactly like an index rebuilt from scratch over the patched
tree.  Bit *positions* may differ between the two (the patched index
keeps stable slots across churn, the rebuild numbers the current
membership), so bitsets are compared through their name sets.
"""

from __future__ import annotations

import random

import pytest

from repro.net.families import build_topology
from repro.net.index import NO_NODE, TopologyIndex
from repro.net.topology import NodeKind, build_balanced_tree


def rebuild(tree) -> TopologyIndex:
    """A from-scratch index over the patched tree's current structure.

    Built directly (not via ``MulticastTree.index``) because churn can
    legally leave a router childless, which the tree constructor's
    leaf-kind validation would reject for a *new* tree.
    """
    return TopologyIndex(
        names=tuple(tree._nodes),
        parent_of=tree._parents,
        children_of=tree._children,
        receivers=tuple(tree.current_receivers()),
    )


def _pairs(rng, nodes, k=80):
    if len(nodes) * len(nodes) <= k:
        return [(a, b) for a in nodes for b in nodes]
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(k)]


def assert_equivalent(patched: TopologyIndex, tree, rng) -> None:
    fresh = rebuild(tree)
    nodes = list(tree._nodes)

    for name in nodes:
        p, f = patched.ids[name], fresh.ids[name]
        assert patched.alive[p]
        assert patched.depth[p] == fresh.depth[f], name
        p_parent = patched.parent[p]
        f_parent = fresh.parent[f]
        if f_parent == NO_NODE:
            assert p_parent == NO_NODE
        else:
            assert patched.names[p_parent] == fresh.names[f_parent]
        assert [patched.names[c] for c in patched.children[p]] == [
            fresh.names[c] for c in fresh.children[f]
        ], name
        assert [patched.names[c] for c in patched.neighbors[p]] == [
            fresh.names[c] for c in fresh.neighbors[f]
        ], name
        # Subtree receiver bitsets, compared as name sets.
        assert patched.names_of_bits(
            patched.subtree_bits[p]
        ) == fresh.names_of_bits(fresh.subtree_bits[f]), name

    n_patched = patched.n
    n_fresh = fresh.n
    for a, b in _pairs(rng, nodes):
        pa, pb = patched.ids[a], patched.ids[b]
        fa, fb = fresh.ids[a], fresh.ids[b]
        assert patched.names[patched.lca_int(pa, pb)] == fresh.names[
            fresh.lca_int(fa, fb)
        ], (a, b)
        assert patched.hop_distance_int(pa, pb) == fresh.hop_distance_int(fa, fb)
        assert patched.is_descendant_int(pa, pb) == fresh.is_descendant_int(fa, fb)
        assert tuple(patched.names[i] for i in patched.path_ints(pa, pb)) == tuple(
            fresh.names[i] for i in fresh.path_ints(fa, fb)
        ), (a, b)
        # Routing rows: the lazy O(log) answer, the patched dense table,
        # and the rebuilt dense table must all agree.
        lazy = patched.next_hop_int(pa, pb)
        dense = patched.next_hop[pa * n_patched + pb]
        fresh_dense = fresh.next_hop[fa * n_fresh + fb]
        if fresh_dense == NO_NODE:
            assert lazy == NO_NODE and dense == NO_NODE
        else:
            assert patched.names[lazy] == fresh.names[fresh_dense], (a, b)
            assert dense == lazy

    assert sorted(tree.current_receivers()) == sorted(
        fresh.names[r] for r in fresh.receiver_ids
    )


class TestSingleOps:
    def test_attach_one_leaf(self):
        tree = build_balanced_tree(branching=2, depth=3)
        index = tree.index
        tree.attach_receiver("j1", "x2")
        assert tree.index is index  # patched in place, not rebuilt
        assert_equivalent(index, tree, random.Random(0))

    def test_detach_one_receiver(self):
        tree = build_balanced_tree(branching=2, depth=3)
        index = tree.index
        tree.detach_subtree("r3")
        assert_equivalent(index, tree, random.Random(0))
        assert "r3" not in tree.current_receivers()
        assert "r3" in tree.receivers  # display membership is the initial one

    def test_detach_router_subtree(self):
        tree = build_balanced_tree(branching=2, depth=3)
        index = tree.index
        removed = tree.detach_subtree("x2")
        assert set(removed) == {"x2", "x5", "x6", "r5", "r6", "r7", "r8"}
        assert_equivalent(index, tree, random.Random(0))

    def test_revive_reuses_id_and_bit_slot(self):
        tree = build_balanced_tree(branching=2, depth=3)
        index = tree.index
        rid = index.ids["r1"]
        slot = index._receiver_slot[rid]
        tree.detach_subtree("r1")
        assert not index.alive[rid]
        tree.attach_receiver("r1", "x3")  # rejoin under a different router
        assert index.ids["r1"] == rid
        assert index._receiver_slot[rid] == slot
        assert tree.parent("r1") == "x3"
        assert_equivalent(index, tree, random.Random(0))

    def test_attach_deepens_past_lifting_levels(self):
        # A chain of attach_leaf calls (router spine growing one hop at a
        # time) pushes depth past the original lifting-table level count;
        # the table must grow columns and keep answering LCA/paths.
        tree = build_balanced_tree(branching=2, depth=2)
        index = tree.index
        levels_before = len(index._up)
        parent = "x1"
        for i in range(20):
            name = f"j{i}"
            index.attach_leaf(name, parent, receiver=(i == 19))
            parent = name
        assert len(index._up) > levels_before
        assert index.hop_distance("s", "j19") == 21
        assert index.names[index.lca_int(index.ids["j19"], index.ids["r1"])] == "x1"
        path = index.path_names("j19", "r2")
        assert path[0] == "j19" and path[-1] == "r2" and len(path) == 22

    def test_attach_under_receiver_rejected(self):
        tree = build_balanced_tree(branching=2, depth=2)
        with pytest.raises(Exception):
            tree.attach_receiver("j1", "r1")

    def test_detach_source_rejected(self):
        tree = build_balanced_tree(branching=2, depth=2)
        with pytest.raises(Exception):
            tree.detach_subtree("s")


class TestRandomChurnSequences:
    @pytest.mark.parametrize("seed", range(6))
    def test_patched_matches_rebuild(self, seed):
        rng = random.Random(seed)
        tree = build_topology("transit_stub:transits=3,stubs=3,hosts=3")
        index = tree.index  # materialize, then patch in place
        routers = [n for n in tree.nodes if tree.kind(n) is NodeKind.ROUTER]
        joined = 0
        detached_names: list[str] = []
        for step in range(48):
            members = tree.current_receivers()
            action = rng.random()
            if action < 0.4 and len(members) > 2:
                victim = rng.choice(members)
                tree.detach_subtree(victim)
                detached_names.append(victim)
            elif action < 0.55 and detached_names:
                # Rejoin a previously departed member (id/bit-slot revive).
                name = detached_names.pop(rng.randrange(len(detached_names)))
                tree.attach_receiver(name, rng.choice(routers))
            else:
                joined += 1
                tree.attach_receiver(f"j{joined}", rng.choice(routers))
            if step % 12 == 11:
                assert_equivalent(index, tree, rng)
        assert_equivalent(index, tree, rng)
