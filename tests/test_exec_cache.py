"""The on-disk content-addressed run cache."""

import json

import pytest

from repro.exec.cache import CACHE_DIR_ENV, RunCache, default_cache_dir
from repro.exec.jobs import RunJob
from repro.harness.config import SimulationConfig

CFG = SimulationConfig(seed=0, max_packets=200)
JOB = RunJob("WRN951113", "cesrm", CFG, trace_seed=0, trace_max_packets=200)
SUMMARY = {"fake": "summary"}
FP = "f" * 64


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "cache")


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "cesrm-repro"


class TestGetPut:
    def test_miss_on_empty(self, cache):
        assert cache.get(JOB, FP) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_hit_after_put(self, cache):
        cache.put(JOB, FP, SUMMARY)
        assert cache.get(JOB, FP) == SUMMARY
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_entry_is_valid_json(self, cache):
        path = cache.put(JOB, FP, SUMMARY)
        payload = json.loads(path.read_text())
        assert payload["summary"] == SUMMARY
        assert payload["fingerprint"] == FP
        assert payload["job"]["trace"] == "WRN951113"

    def test_distinct_jobs_distinct_slots(self, cache):
        other = RunJob("WRN951216", "srm", CFG, 0, 200)
        cache.put(JOB, FP, SUMMARY)
        cache.put(other, FP, {"other": 1})
        assert cache.get(JOB, FP) == SUMMARY
        assert cache.get(other, FP) == {"other": 1}


class TestInvalidation:
    def test_fingerprint_change_invalidates(self, cache):
        cache.put(JOB, FP, SUMMARY)
        assert cache.get(JOB, "0" * 64) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1

    def test_config_change_misses(self, cache):
        cache.put(JOB, FP, SUMMARY)
        changed = RunJob(
            JOB.trace, JOB.protocol, CFG.with_(reorder_delay=0.1), 0, 200
        )
        assert cache.get(changed, FP) is None

    def test_stale_entry_overwritten_in_place(self, cache):
        cache.put(JOB, "0" * 64, {"stale": 1})
        cache.put(JOB, FP, SUMMARY)
        assert len(cache.entries()) == 1
        assert cache.get(JOB, FP) == SUMMARY

    def test_corrupt_entry_is_invalidation(self, cache):
        path = cache.put(JOB, FP, SUMMARY)
        path.write_text("{not json")
        assert cache.get(JOB, FP) is None
        assert cache.stats.invalidations == 1


class TestMigration:
    """Entries written before the workload field existed keep working."""

    def test_pre_workload_payload_reads_back(self, cache):
        # hand-write the exact pre-workload on-disk shape: a job dict
        # with no "workload" key
        cache.runs_dir.mkdir(parents=True, exist_ok=True)
        job_dict = JOB.to_dict()
        assert "workload" not in job_dict
        path = cache.runs_dir / f"{JOB.key()}.json"
        path.write_text(
            json.dumps(
                {
                    "digest": JOB.digest(FP),
                    "fingerprint": FP,
                    "job": job_dict,
                    "summary": SUMMARY,
                }
            )
        )
        assert cache.get(JOB, FP) == SUMMARY  # same slot, still a hit
        [entry] = cache.entries()
        assert entry.workload == ""  # missing key decodes to the default

    def test_workload_entry_listed_with_spec(self, cache):
        workload_job = RunJob(
            "WRN951113",
            "cesrm",
            CFG,
            trace_seed=0,
            trace_max_packets=200,
            workload="zipf:alpha=1.1",
        )
        cache.put(workload_job, FP, SUMMARY)
        [entry] = cache.entries()
        assert entry.workload == "zipf:alpha=1.1"

    def test_workload_and_default_use_distinct_slots(self, cache):
        workload_job = RunJob(
            "WRN951113",
            "cesrm",
            CFG,
            trace_seed=0,
            trace_max_packets=200,
            workload="poisson",
        )
        cache.put(JOB, FP, SUMMARY)
        cache.put(workload_job, FP, {"other": 1})
        assert cache.get(JOB, FP) == SUMMARY
        assert cache.get(workload_job, FP) == {"other": 1}


class TestMaintenance:
    def test_entries_listing(self, cache):
        cache.put(JOB, FP, SUMMARY)
        [entry] = cache.entries()
        assert entry.trace == "WRN951113"
        assert entry.protocol == "cesrm"
        assert entry.seed == 0
        assert entry.max_packets == 200
        assert entry.fingerprint == FP
        assert entry.size_bytes > 0
        assert entry.workload == ""

    def test_size_bytes(self, cache):
        assert cache.size_bytes() == 0
        cache.put(JOB, FP, SUMMARY)
        assert cache.size_bytes() > 0

    def test_clear(self, cache):
        cache.put(JOB, FP, SUMMARY)
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.get(JOB, FP) is None

    def test_no_temp_files_left_behind(self, cache):
        cache.put(JOB, FP, SUMMARY)
        leftovers = [
            p for p in cache.runs_dir.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
