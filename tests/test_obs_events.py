"""Unit tests for the repro.obs event model, sinks, tracer, and profiler."""

import json

import pytest

from repro.metrics.stats import Histogram
from repro.obs import (
    EventKind,
    FilterSink,
    JsonlFileSink,
    RingBufferSink,
    SimProfiler,
    TraceEvent,
    Tracer,
    callback_label,
    callback_node,
)
from repro.sim.engine import Simulator


class TestTraceEvent:
    def test_round_trip(self):
        event = TraceEvent(
            1.5, EventKind.NET_DROP, node="r1", source="s", seqno=7,
            detail={"link": "x1->r1"},
        )
        again = TraceEvent.from_dict(event.to_dict())
        assert again.time == 1.5
        assert again.kind == "net.drop"
        assert again.node == "r1"
        assert again.packet_id == ("s", 7)
        assert again.detail == {"link": "x1->r1"}

    def test_none_fields_omitted_from_dict(self):
        event = TraceEvent(0.0, EventKind.TIMER_FIRE)
        assert event.to_dict() == {"t": 0.0, "kind": "timer.fire"}

    def test_packet_id_requires_real_seqno(self):
        assert TraceEvent(0.0, "x", source="s", seqno=-1).packet_id is None
        assert TraceEvent(0.0, "x", source="s").packet_id is None
        assert TraceEvent(0.0, "x", seqno=3).packet_id is None

    def test_describe_mentions_packet_and_detail(self):
        event = TraceEvent(
            2.0, EventKind.REPLY_SENT, node="r2", source="s", seqno=4,
            detail={"requestor": "r1"},
        )
        text = event.describe()
        assert "[r2]" in text
        assert "s:4" in text
        assert "requestor=r1" in text


class TestCallbackHelpers:
    def test_bound_method_label_and_node(self):
        class FakeAgent:
            host_id = "r9"

            def fire(self):
                pass

        agent = FakeAgent()
        assert callback_label(agent.fire) == "FakeAgent.fire"
        assert callback_node(agent.fire) == "r9"

    def test_plain_function_label(self):
        def on_tick():
            pass

        assert "on_tick" in callback_label(on_tick)
        assert callback_node(on_tick) is None


class TestSinks:
    def test_ring_buffer_caps_and_counts(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.emit(TraceEvent(float(i), "x"))
        assert ring.emitted == 5
        assert ring.dropped == 2
        assert len(ring) == 3
        assert [e.time for e in ring.events] == [2.0, 3.0, 4.0]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlFileSink(path)
        sink.emit(TraceEvent(0.5, EventKind.NET_SEND, node="s", source="s", seqno=0))
        sink.emit(TraceEvent(0.7, EventKind.NET_DELIVER, node="r1", source="s", seqno=0))
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        json.loads(lines[0])  # valid JSON per line
        events = JsonlFileSink.read(path)
        assert [e.kind for e in events] == ["net.send", "net.deliver"]
        assert events[1].node == "r1"

    def test_filter_sink_by_kind_prefix_and_node(self):
        ring = RingBufferSink()
        sink = FilterSink(ring, kinds=("net.",), nodes=("r1",))
        sink.emit(TraceEvent(0.0, EventKind.NET_DELIVER, node="r1"))
        sink.emit(TraceEvent(0.0, EventKind.NET_DELIVER, node="r2"))  # wrong node
        sink.emit(TraceEvent(0.0, EventKind.TIMER_FIRE, node="r1"))  # wrong kind
        assert len(ring) == 1
        assert ring.events[0].kind == "net.deliver"


class TestTracer:
    def test_fans_out_and_aggregates(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer(a, b)
        tracer.emit(1.0, EventKind.LOSS_DETECTED, node="r1", source="s", seqno=2)
        tracer.emit(2.0, EventKind.REQUEST_SENT, node="r1", source="s", seqno=2)
        tracer.emit(2.5, EventKind.REPLY_SENT, node="r2", source="s", seqno=2)
        assert tracer.emitted == 3
        assert len(a) == len(b) == 3
        assert tracer.events_by_kind["request.sent"] == 1
        assert tracer.events_by_node == {"r1": 2, "r2": 1}

    def test_observe_builds_histograms(self):
        tracer = Tracer()
        for value in (0.002, 0.002, 4.0):
            tracer.observe("lat", value)
        summary = tracer.summary()
        assert summary["events_emitted"] == 0
        hist = summary["histograms"]["lat"]
        assert hist["total"] == 3
        assert hist["max"] == 4.0

    def test_summary_is_json_serializable(self):
        tracer = Tracer()
        tracer.emit(0.0, EventKind.TIMER_FIRE, node="r1")
        tracer.observe("x", 1.0)
        json.dumps(tracer.summary())


class TestHistogram:
    def test_counts_and_moments(self):
        hist = Histogram()
        for value in (0.0005, 0.003, 100.0):
            hist.add(value)
        data = hist.to_dict()
        assert data["total"] == 3
        assert data["min"] == 0.0005
        assert data["max"] == 100.0
        assert sum(data["counts"]) == 3
        assert data["counts"][-1] == 1  # overflow bucket caught 100.0
        assert hist.mean == pytest.approx((0.0005 + 0.003 + 100.0) / 3)

    def test_empty_histogram(self):
        data = Histogram().to_dict()
        assert data["total"] == 0
        assert data["min"] == 0.0  # inf would not survive JSON


class TestSimProfiler:
    def test_attributes_events_to_handlers(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.profiler = profiler
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b"]
        assert profiler.events == 2
        summary = profiler.summary()
        assert summary["events"] == 2
        (label, entry), = summary["handlers"].items()
        assert "append" in label
        assert entry["events"] == 2
        assert entry["wall_s"] >= 0.0

    def test_times_even_when_callback_raises(self):
        profiler = SimProfiler()

        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            profiler.record_call(boom, ())
        assert profiler.events == 1

    def test_describe_lists_hottest(self):
        profiler = SimProfiler()
        profiler.record_call(lambda: None, ())
        text = profiler.describe()
        assert "profile:" in text
        assert "<lambda>" in text
