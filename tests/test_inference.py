"""Tests for the per-link loss-rate estimators (§4.2)."""

import random

import pytest

from repro.traces.inference import (
    estimate_link_rates_mle,
    estimate_link_rates_subtree,
    reach_masks,
)
from repro.traces.model import LossTrace
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import deep_tree, line_tree, two_subtrees


def bernoulli_trace(tree, rates, n, seed=0, name="bern") -> LossTrace:
    """A memoryless per-link loss trace with known ground-truth rates."""
    rng = random.Random(seed)
    drops = {
        link: bytes(1 if rng.random() < rates[link] else 0 for _ in range(n))
        for link in tree.links
    }
    loss_seqs = {}
    for receiver in tree.receivers:
        path = tree.path(tree.source, receiver)
        seq = bytearray(n)
        for i in range(n):
            if any(drops[link][i] for link in zip(path, path[1:])):
                seq[i] = 1
        loss_seqs[receiver] = bytes(seq)
    return LossTrace(name, tree, 0.08, loss_seqs)


class TestReachMasks:
    def test_source_reaches_everything(self):
        tree = line_tree()
        trace = LossTrace(
            "t", tree, 0.08, {"r1": bytes([1, 1, 1]), "r2": bytes([1, 1, 1])}
        )
        masks = reach_masks(trace)
        assert masks["s"] == 0b111

    def test_router_reach_is_union_of_children(self):
        tree = line_tree()
        trace = LossTrace(
            "t", tree, 0.08, {"r1": bytes([1, 0, 1]), "r2": bytes([0, 0, 1])}
        )
        masks = reach_masks(trace)
        # r1 received packet 1 only; r2 received packets 0 and 1
        assert masks["x1"] == 0b011
        assert masks["r1"] == 0b010
        assert masks["r2"] == 0b011


class TestSubtreeEstimator:
    def test_recovers_bernoulli_rates(self):
        tree = two_subtrees()
        rates = {
            ("s", "x0"): 0.0,
            ("x0", "x1"): 0.06,
            ("x0", "x2"): 0.0,
            ("x1", "r1"): 0.03,
            ("x1", "r2"): 0.0,
            ("x2", "r3"): 0.10,
            ("x2", "r4"): 0.02,
        }
        trace = bernoulli_trace(tree, rates, 40_000, seed=1)
        estimated = estimate_link_rates_subtree(trace)
        for link, truth in rates.items():
            assert estimated[link] == pytest.approx(truth, abs=0.01)

    def test_zero_losses_give_zero_rates(self):
        tree = two_subtrees()
        trace = bernoulli_trace(tree, {link: 0.0 for link in tree.links}, 100)
        assert all(v == 0.0 for v in estimate_link_rates_subtree(trace).values())

    def test_chain_loss_attributed_to_lowest_link(self):
        tree = deep_tree()  # has chain s -> x1 -> x2 -> x3 -> {r1, r2}
        rates = {link: 0.0 for link in tree.links}
        rates[("x1", "x2")] = 0.08  # an upper chain link is lossy
        trace = bernoulli_trace(tree, rates, 30_000, seed=2)
        estimated = estimate_link_rates_subtree(trace)
        # x2 has children x3 and r3 — wait, x2's children: x3, r3.
        # (x1, x2) is NOT an upper chain link here since x2 has 2 children.
        assert estimated[("x1", "x2")] == pytest.approx(0.08, abs=0.01)

    def test_true_chain_convention(self):
        # s -> x1 -> x2 -> {r1, r2}: (s, x1) is an upper chain link.
        from repro.net.topology import MulticastTree

        tree = MulticastTree(
            "s",
            {"x1": "s", "x2": "x1", "r1": "x2", "r2": "x2"},
            ["r1", "r2"],
        )
        rates = {link: 0.0 for link in tree.links}
        rates[("s", "x1")] = 0.05
        trace = bernoulli_trace(tree, rates, 30_000, seed=3)
        estimated = estimate_link_rates_subtree(trace)
        assert estimated[("s", "x1")] == 0.0
        assert estimated[("x1", "x2")] == pytest.approx(0.05, abs=0.01)


class TestMleEstimator:
    def test_recovers_bernoulli_rates(self):
        tree = two_subtrees()
        rates = {
            ("s", "x0"): 0.02,
            ("x0", "x1"): 0.05,
            ("x0", "x2"): 0.0,
            ("x1", "r1"): 0.03,
            ("x1", "r2"): 0.0,
            ("x2", "r3"): 0.08,
            ("x2", "r4"): 0.01,
        }
        trace = bernoulli_trace(tree, rates, 60_000, seed=4)
        estimated = estimate_link_rates_mle(trace)
        for link, truth in rates.items():
            if link == ("s", "x0"):
                continue  # (s, x0) is an upper chain link (x0's reach = s's)
            assert estimated[link] == pytest.approx(truth, abs=0.015)

    def test_empty_trace(self):
        tree = line_tree()
        trace = LossTrace("t", tree, 0.08, {"r1": b"", "r2": b""})
        assert all(v == 0.0 for v in estimate_link_rates_mle(trace).values())

    def test_receiver_losing_everything(self):
        tree = line_tree()
        trace = LossTrace(
            "t", tree, 0.08, {"r1": bytes([1] * 50), "r2": bytes([0] * 50)}
        )
        estimated = estimate_link_rates_mle(trace)
        assert estimated[("x1", "r1")] == pytest.approx(1.0)
        assert estimated[("x1", "r2")] == pytest.approx(0.0)


class TestEstimatorAgreement:
    def test_both_estimators_agree_on_synthetic_traces(self):
        """§4.2: 'both methods yield very similar link loss probability
        estimates' — must hold on our synthetic traces too."""
        params = SynthesisParams(
            name="agree",
            n_receivers=8,
            tree_depth=4,
            period=0.08,
            n_packets=6000,
            target_losses=3000,
        )
        synthetic = synthesize_trace(params, seed=9)
        subtree = estimate_link_rates_subtree(synthetic.trace)
        mle = estimate_link_rates_mle(synthetic.trace)
        for link in synthetic.link_rates:
            assert subtree[link] == pytest.approx(mle[link], abs=0.02)

    def test_subtree_estimator_tracks_ground_truth(self):
        params = SynthesisParams(
            name="truth",
            n_receivers=8,
            tree_depth=4,
            period=0.08,
            n_packets=8000,
            target_losses=4000,
        )
        synthetic = synthesize_trace(params, seed=10)
        estimated = estimate_link_rates_subtree(synthetic.trace)
        tree = synthetic.trace.tree
        for link, truth in synthetic.link_rates.items():
            _, child = link
            if len(tree.children(child)) == 1:
                continue  # chain links: rate pushed to the lowest link
            # ground truth must be within a few points (estimator bias on
            # correlated losses is bounded)
            assert abs(estimated[link] - truth) < 0.08
