"""Unit and property tests for the multicast tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import (
    MulticastTree,
    NodeKind,
    TopologyError,
    build_balanced_tree,
    build_random_tree,
)

from tests.helpers import deep_tree, line_tree, two_subtrees


class TestConstruction:
    def test_line_tree_roles(self):
        tree = line_tree()
        assert tree.kind("s") is NodeKind.SOURCE
        assert tree.kind("x1") is NodeKind.ROUTER
        assert tree.kind("r1") is NodeKind.RECEIVER

    def test_hosts_are_source_then_receivers(self):
        assert line_tree().hosts == ["s", "r1", "r2"]

    def test_links_are_parent_child(self):
        assert set(line_tree().links) == {("s", "x1"), ("x1", "r1"), ("x1", "r2")}

    def test_source_with_parent_rejected(self):
        with pytest.raises(TopologyError):
            MulticastTree("s", {"s": "x", "x": "s"}, [])

    def test_duplicate_receivers_rejected(self):
        with pytest.raises(TopologyError):
            MulticastTree("s", {"x1": "s", "r1": "x1"}, ["r1", "r1"])

    def test_source_as_receiver_rejected(self):
        with pytest.raises(TopologyError):
            MulticastTree("s", {"x1": "s", "r1": "x1"}, ["s"])

    def test_unknown_parent_rejected(self):
        with pytest.raises(TopologyError):
            MulticastTree("s", {"r1": "ghost"}, ["r1"])

    def test_unreachable_node_rejected(self):
        # a -> b cycle disconnected from s
        with pytest.raises(TopologyError):
            MulticastTree("s", {"r1": "s", "a": "b", "b": "a"}, ["r1"])

    def test_internal_receiver_rejected(self):
        with pytest.raises(TopologyError):
            MulticastTree("s", {"r1": "s", "r2": "r1"}, ["r1", "r2"])

    def test_leaf_router_rejected(self):
        with pytest.raises(TopologyError):
            MulticastTree("s", {"x1": "s", "x2": "x1", "r1": "x1"}, ["r1"])

    def test_unknown_node_query_raises(self):
        with pytest.raises(TopologyError):
            line_tree().kind("nope")


class TestQueries:
    def test_depth(self):
        assert line_tree().depth == 2
        assert two_subtrees().depth == 3
        assert deep_tree().depth == 4

    def test_node_depths(self):
        tree = deep_tree()
        assert tree.node_depth("s") == 0
        assert tree.node_depth("x1") == 1
        assert tree.node_depth("r1") == 4
        assert tree.node_depth("r4") == 2

    def test_parent_and_children(self):
        tree = two_subtrees()
        assert tree.parent("x1") == "x0"
        assert tree.parent("s") is None
        assert sorted(tree.children("x0")) == ["x1", "x2"]
        assert tree.children("r1") == []

    def test_neighbors_include_parent_and_children(self):
        tree = two_subtrees()
        assert sorted(tree.neighbors("x0")) == ["s", "x1", "x2"]
        assert tree.neighbors("s") == ["x0"]
        assert tree.neighbors("r1") == ["x1"]

    def test_subtree_receivers(self):
        tree = two_subtrees()
        assert tree.subtree_receivers("x1") == {"r1", "r2"}
        assert tree.subtree_receivers("x0") == {"r1", "r2", "r3", "r4"}
        assert tree.subtree_receivers("r3") == {"r3"}
        assert tree.subtree_receivers("s") == set(tree.receivers)

    def test_is_descendant(self):
        tree = two_subtrees()
        assert tree.is_descendant("r1", "x0")
        assert tree.is_descendant("r1", "s")
        assert not tree.is_descendant("r1", "x2")
        assert not tree.is_descendant("x0", "r1")
        assert not tree.is_descendant("s", "s")

    def test_ancestors(self):
        tree = two_subtrees()
        assert tree.ancestors("r1") == ["x1", "x0", "s"]
        assert tree.ancestors("s") == []

    def test_lca(self):
        tree = two_subtrees()
        assert tree.lca("r1", "r2") == "x1"
        assert tree.lca("r1", "r3") == "x0"
        assert tree.lca("r1", "s") == "s"
        assert tree.lca("r1", "r1") == "r1"
        assert tree.lca("x1", "r2") == "x1"

    def test_path(self):
        tree = two_subtrees()
        assert tree.path("r1", "r3") == ("r1", "x1", "x0", "x2", "r3")
        assert tree.path("s", "r1") == ("s", "x0", "x1", "r1")
        assert tree.path("r1", "r1") == ("r1",)

    def test_path_is_deterministic_and_consistent(self):
        tree = two_subtrees()
        assert tree.path("r1", "r3") == tree.path("r1", "r3")
        assert tree.path("r1", "r3") == tuple(reversed(tree.path("r3", "r1")))

    def test_hop_distance(self):
        tree = two_subtrees()
        assert tree.hop_distance("r1", "r2") == 2
        assert tree.hop_distance("r1", "r3") == 4
        assert tree.hop_distance("s", "r1") == 3
        assert tree.hop_distance("r1", "r1") == 0

    def test_links_upstream_of(self):
        tree = two_subtrees()
        assert tree.links_upstream_of(("x1", "r1")) == [("s", "x0"), ("x0", "x1")]
        assert tree.links_upstream_of(("s", "x0")) == []
        with pytest.raises(TopologyError):
            tree.links_upstream_of(("x1", "r3"))

    def test_downstream_links(self):
        tree = two_subtrees()
        assert set(tree.downstream_links("x1")) == {("x1", "r1"), ("x1", "r2")}
        assert set(tree.downstream_links("r1")) == set()
        assert len(tree.downstream_links("s")) == len(tree.links)

    def test_to_parent_map_roundtrip(self):
        tree = two_subtrees()
        rebuilt = MulticastTree("s", tree.to_parent_map(), list(tree.receivers))
        assert set(rebuilt.links) == set(tree.links)


class TestBalancedBuilder:
    def test_receiver_count(self):
        tree = build_balanced_tree(branching=2, depth=3)
        assert len(tree.receivers) == 8
        assert tree.depth == 3

    def test_branching_three(self):
        tree = build_balanced_tree(branching=3, depth=2)
        assert len(tree.receivers) == 9
        assert len(tree.routers) == 3

    def test_depth_one_receivers_at_source(self):
        tree = build_balanced_tree(branching=2, depth=1)
        assert len(tree.receivers) == 2
        assert tree.routers == []

    def test_invalid_args(self):
        with pytest.raises(TopologyError):
            build_balanced_tree(depth=0)
        with pytest.raises(TopologyError):
            build_balanced_tree(branching=0)


class TestRandomBuilder:
    @given(
        n_receivers=st.integers(min_value=1, max_value=20),
        depth=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_receivers_and_depth(self, n_receivers, depth, seed):
        tree = build_random_tree(n_receivers, depth, random.Random(seed))
        assert len(tree.receivers) == n_receivers
        assert tree.depth == depth
        # receivers are exactly the leaves
        for node in tree.nodes:
            is_leaf = not tree.children(node)
            if node in tree.receivers:
                assert is_leaf
            elif node != tree.source:
                assert not is_leaf

    def test_deterministic_for_seed(self):
        a = build_random_tree(10, 5, random.Random(3))
        b = build_random_tree(10, 5, random.Random(3))
        assert a.to_parent_map() == b.to_parent_map()

    def test_invalid_args(self):
        with pytest.raises(TopologyError):
            build_random_tree(0, 3, random.Random(0))
        with pytest.raises(TopologyError):
            build_random_tree(5, 1, random.Random(0))
