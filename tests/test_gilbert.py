"""Unit and property tests for the Gilbert loss process."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces.gilbert import (
    GilbertModel,
    bitmask_from_bytes,
    bytes_from_bitmask,
    iter_set_bits,
)


class TestModel:
    def test_from_rate_and_burst_roundtrip(self):
        model = GilbertModel.from_rate_and_burst(0.05, 4.0)
        assert model.loss_rate == pytest.approx(0.05)
        assert model.mean_burst_length == pytest.approx(4.0)

    def test_zero_rate(self):
        model = GilbertModel.from_rate_and_burst(0.0, 5.0)
        assert model.loss_rate == 0.0
        assert model.sample(100, random.Random(0)) == bytes(100)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            GilbertModel.from_rate_and_burst(1.0, 4.0)
        with pytest.raises(ValueError):
            GilbertModel.from_rate_and_burst(-0.1, 4.0)

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            GilbertModel.from_rate_and_burst(0.1, 0.5)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            GilbertModel(p_gb=1.5, p_bg=0.5)
        with pytest.raises(ValueError):
            GilbertModel(p_gb=0.5, p_bg=-0.1)

    def test_scaled_preserves_burst(self):
        model = GilbertModel.from_rate_and_burst(0.05, 4.0)
        scaled = model.scaled(2.0)
        assert scaled.loss_rate == pytest.approx(0.10)
        assert scaled.mean_burst_length == pytest.approx(4.0)

    def test_scaled_caps_rate(self):
        model = GilbertModel.from_rate_and_burst(0.5, 4.0)
        assert model.scaled(10.0).loss_rate <= 0.95


class TestSampling:
    def test_marginal_rate_converges(self):
        model = GilbertModel.from_rate_and_burst(0.08, 5.0)
        n = 200_000
        sample = model.sample(n, random.Random(1))
        assert sum(sample) / n == pytest.approx(0.08, rel=0.10)

    def test_mean_burst_converges(self):
        model = GilbertModel.from_rate_and_burst(0.08, 5.0)
        sample = model.sample(200_000, random.Random(2))
        bursts = []
        run = 0
        for bit in sample:
            if bit:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        assert sum(bursts) / len(bursts) == pytest.approx(5.0, rel=0.15)

    def test_slot_and_mask_samplers_agree_statistically(self):
        model = GilbertModel.from_rate_and_burst(0.10, 4.0)
        n = 100_000
        slots = model.sample_slots(n, random.Random(3))
        mask = model.sample_mask(n, random.Random(4))
        rate_slots = sum(slots) / n
        rate_mask = bin(mask).count("1") / n
        assert rate_slots == pytest.approx(rate_mask, rel=0.15)

    def test_sampling_is_deterministic(self):
        model = GilbertModel.from_rate_and_burst(0.05, 3.0)
        assert model.sample(5000, random.Random(7)) == model.sample(
            5000, random.Random(7)
        )

    def test_empty_sample(self):
        model = GilbertModel.from_rate_and_burst(0.05, 3.0)
        assert model.sample(0, random.Random(0)) == b""
        assert model.sample_mask(0, random.Random(0)) == 0

    def test_mask_never_exceeds_length(self):
        model = GilbertModel.from_rate_and_burst(0.5, 10.0)
        for seed in range(20):
            mask = model.sample_mask(64, random.Random(seed))
            assert mask < (1 << 64)

    def test_burstiness_exceeds_bernoulli(self):
        """Gilbert with long bursts produces far fewer, longer runs than a
        Bernoulli process of the same marginal rate."""
        rate, n = 0.10, 100_000
        gilbert = GilbertModel.from_rate_and_burst(rate, 8.0)
        sample = gilbert.sample(n, random.Random(5))

        def run_count(seq):
            runs, prev = 0, 0
            for bit in seq:
                if bit and not prev:
                    runs += 1
                prev = bit
            return runs

        rng = random.Random(6)
        bernoulli = bytes(1 if rng.random() < rate else 0 for _ in range(n))
        assert run_count(sample) < run_count(bernoulli) / 3


class TestBitmaskHelpers:
    @given(st.binary(max_size=300).map(lambda b: bytes(x & 1 for x in b)))
    def test_roundtrip(self, seq):
        assert bytes_from_bitmask(bitmask_from_bytes(seq), len(seq)) == seq

    @given(st.integers(min_value=0, max_value=2**200 - 1))
    def test_iter_set_bits_matches_binary(self, mask):
        positions = list(iter_set_bits(mask))
        assert positions == sorted(positions)
        rebuilt = 0
        for p in positions:
            rebuilt |= 1 << p
        assert rebuilt == mask

    def test_bytes_from_bitmask_empty(self):
        assert bytes_from_bitmask(0, 0) == b""

    def test_bytes_from_bitmask_truncates(self):
        assert bytes_from_bitmask(0b101, 3) == bytes([1, 0, 1])
        assert bytes_from_bitmask(0b101, 2) == bytes([1, 0])
