"""Tests for the declarative fault-plan model (repro.faults.plan)."""

import json

import pytest

from repro.faults import (
    EVENT_TYPES,
    FaultPlan,
    LinkDown,
    LinkFlap,
    NodeCrash,
    PacketDuplicate,
    PacketReorder,
    Partition,
    SessionSuppress,
    event_from_dict,
    sample_plan,
)


class TestEventValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            LinkDown(u="a", v="b", at=-1.0)
        with pytest.raises(ValueError):
            NodeCrash(host="r1", at=-0.5)
        with pytest.raises(ValueError):
            Partition(node="r1", at=-2.0)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ValueError):
            LinkDown(u="a", v="b", at=1.0, duration=0.0)
        with pytest.raises(ValueError):
            NodeCrash(host="r1", at=1.0, restart_after=0.0)
        with pytest.raises(ValueError):
            SessionSuppress(host="r1", at=1.0, duration=0.0)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            PacketDuplicate(rate=0.0)
        with pytest.raises(ValueError):
            PacketDuplicate(rate=1.5)
        with pytest.raises(ValueError):
            PacketReorder(rate=2.0, max_delay=0.1)
        with pytest.raises(ValueError):
            PacketReorder(rate=0.5, max_delay=0.0)

    def test_windows_must_be_ordered(self):
        with pytest.raises(ValueError):
            PacketDuplicate(rate=0.1, start=5.0, end=5.0)
        with pytest.raises(ValueError):
            LinkFlap(u="a", v="b", mean_up=1.0, mean_down=1.0, start=3.0, end=2.0)

    def test_flap_means_positive(self):
        with pytest.raises(ValueError):
            LinkFlap(u="a", v="b", mean_up=0.0, mean_down=1.0)


class TestWireFormat:
    def test_every_event_type_round_trips(self):
        events = (
            LinkDown(u="x1", v="r1", at=2.0, duration=1.5),
            LinkFlap(u="x1", v="r1", mean_up=4.0, mean_down=0.5, start=1.0, end=9.0),
            Partition(node="r2", at=3.0, duration=2.0),
            NodeCrash(host="r1", at=5.0, restart_after=4.0),
            PacketDuplicate(rate=0.05, kind="data", start=1.0, end=6.0),
            PacketReorder(rate=0.02, max_delay=0.1),
            SessionSuppress(host="r3", at=2.0, duration=3.0),
        )
        for event in events:
            assert event_from_dict(event.to_dict()) == event

    def test_none_fields_omitted_from_wire_form(self):
        data = LinkDown(u="a", v="b", at=1.0).to_dict()
        assert data == {"type": "link-down", "u": "a", "v": "b", "at": 1.0}

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event type"):
            event_from_dict({"type": "meteor-strike", "at": 1.0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            event_from_dict({"type": "node-crash", "host": "r1", "at": 1.0, "x": 2})

    def test_plan_json_round_trip(self):
        plan = sample_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_plan_file_round_trip(self, tmp_path):
        plan = sample_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # the on-disk form is plain JSON with an "events" list
        data = json.loads(path.read_text())
        assert set(data) == {"events"}
        assert all("type" in row for row in data["events"])

    def test_plan_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"events": [], "version": 2})

    def test_registry_covers_all_event_classes(self):
        assert set(EVENT_TYPES) == {
            "link-down",
            "link-flap",
            "partition",
            "node-crash",
            "packet-duplicate",
            "packet-reorder",
            "session-suppress",
        }


class TestPlanSemantics:
    def test_empty_plan_is_identity(self):
        plan = FaultPlan()
        assert plan.empty
        assert len(plan) == 0
        assert list(plan) == []
        assert not plan.crashes_hosts
        assert "empty" in plan.describe()

    def test_of_type_and_crashes_hosts(self):
        plan = sample_plan()
        assert not plan.empty
        assert plan.crashes_hosts
        assert len(plan.of_type(NodeCrash)) == 1
        assert len(plan.of_type(LinkFlap)) == 0

    def test_events_must_be_fault_events(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("link-down",))

    def test_describe_names_every_event(self):
        text = sample_plan().describe()
        for event in sample_plan():
            assert event.type_name in text
