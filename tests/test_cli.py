"""Tests for the ``cesrm`` command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_commands_accepted(self):
        parser = build_parser()
        for command in (
            "table1",
            "figure1",
            "figure5",
            "run",
            "timeline",
            "analyze",
            "synth",
            "all",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--trace", "WRN951216", "--protocol", "cesrm-router", "--seed", "3"]
        )
        assert args.trace == "WRN951216"
        assert args.protocol == "cesrm-router"
        assert args.seed == 3

    def test_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "NOPE"])

    def test_max_packets_flag(self):
        args = build_parser().parse_args(["table1", "--max-packets", "500"])
        assert args.max_packets == 500

    def test_exec_flags(self):
        args = build_parser().parse_args(
            ["figure1", "--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache

    def test_cache_command_accepted(self):
        args = build_parser().parse_args(["cache", "--clear"])
        assert args.command == "cache"
        assert args.clear

    def test_trace_command_options(self):
        args = build_parser().parse_args(
            [
                "trace",
                "--trace",
                "WRN951216",
                "--trace-out",
                "events.jsonl",
                "--profile",
                "--host",
                "r3",
                "--seq",
                "42",
                "--outcome",
                "expedited",
                "--limit",
                "5",
                "--events",
                "erqst.",
            ]
        )
        assert args.command == "trace"
        assert args.trace_out == "events.jsonl"
        assert args.profile
        assert args.host == "r3"
        assert args.seq == 42
        assert args.outcome == "expedited"
        assert args.limit == 5
        assert args.events == "erqst."

    def test_bad_outcome_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--outcome", "nope"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1", "--max-packets", "300"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "RFV960419" in out

    def test_run_single(self, capsys):
        code = main(
            ["run", "--trace", "WRN951216", "--protocol", "cesrm", "--max-packets", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cesrm on WRN951216" in out
        assert "expedited" in out

    def test_run_srm_has_no_expedited_line(self, capsys):
        main(["run", "--trace", "WRN951216", "--protocol", "srm", "--max-packets", "300"])
        out = capsys.readouterr().out
        assert "expedited" not in out

    def test_section34(self, capsys):
        assert main(["section34", "--max-packets", "300"]) == 0
        out = capsys.readouterr().out
        assert "Eq.(1)" in out

    def test_timeline(self, capsys):
        assert main(
            ["timeline", "--trace", "WRN951216", "--max-packets", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery timeline" in out
        assert "RTT" in out

    def test_timeline_with_explicit_receiver(self, capsys):
        main(
            [
                "timeline",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--receiver",
                "r1",
            ]
        )
        out = capsys.readouterr().out
        assert "r1" in out

    def test_synth_writes_file(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        assert main(
            [
                "synth",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--out",
                str(out_path),
            ]
        ) == 0
        assert out_path.exists()
        from repro.traces.io import load_trace

        assert load_trace(out_path).n_packets == 300

    def test_analyze(self, capsys):
        assert main(["analyze", "--max-packets", "300"]) == 0
        out = capsys.readouterr().out
        assert "RecentAcc" in out

    def test_verify_flag(self, capsys):
        assert main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--protocol",
                "cesrm",
                "--max-packets",
                "300",
                "--verify",
            ]
        ) == 0

    def test_all_traces_flag(self, capsys):
        assert main(["figure2", "--all-traces", "--max-packets", "300"]) == 0
        out = capsys.readouterr().out
        assert out.count("Figure 2") == 14

    def test_trace_command_prints_timelines(self, capsys):
        assert main(
            [
                "trace",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--limit",
                "2",
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "losses" in out
        assert "loss.detected" in out
        assert "loss s:" in out

    def test_trace_outcome_filter(self, capsys):
        assert main(
            [
                "trace",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--outcome",
                "expedited",
                "--limit",
                "1",
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        # every printed story carries the requested outcome label
        for line in out.splitlines():
            if line.startswith("loss "):
                assert "— expedited" in line

    def test_trace_out_writes_valid_jsonl(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(
            [
                "trace",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--trace-out",
                str(path),
                "--limit",
                "0",
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert str(path) in out
        from repro.obs import JsonlFileSink, RecoveryTimeline

        events = JsonlFileSink.read(path)
        assert events
        assert len(RecoveryTimeline.from_events(events).stories) > 0

    def test_run_with_profile(self, capsys):
        assert main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--profile",
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cesrm on WRN951216" in out
        assert "profile:" in out

    def test_run_with_trace_out(self, capsys, tmp_path):
        path = tmp_path / "run-events.jsonl"
        assert main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--trace-out",
                str(path),
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "event stream written to" in out
        assert path.exists()


class TestExecIntegration:
    def test_warm_rerun_stdout_identical(self, capsys, tmp_path):
        argv = [
            "figure2",
            "--max-packets",
            "300",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "0 misses" in warm.err  # second pass served from cache

    def test_cache_stats_on_stderr_not_stdout(self, capsys, tmp_path):
        main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        captured = capsys.readouterr()
        assert "[exec] cache:" in captured.err
        assert "[exec]" not in captured.out

    def test_no_cache_skips_cache(self, capsys, tmp_path):
        main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--no-cache",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        captured = capsys.readouterr()
        assert "[exec] cache:" not in captured.err
        assert not (tmp_path / "cache").exists()

    def test_cache_inspect_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--cache-dir",
                cache_dir,
            ]
        )
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 1 (1 current, 0 stale)" in out
        assert "WRN951216" in out
        assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 entries" in out
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestWorkloads:
    def test_parser_accepts_workload(self):
        args = build_parser().parse_args(
            ["run", "--workload", "zipf:alpha=1.1,objects=64"]
        )
        assert args.workload == "zipf:alpha=1.1,objects=64"

    def test_bad_workload_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope:x=1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "zipf:alpa=1"])

    def test_parser_accepts_topology_trace(self):
        args = build_parser().parse_args(
            ["run", "--trace", "tree:depth=3,fanout=2"]
        )
        assert args.trace == "tree:depth=3,fanout=2"

    def test_bad_topology_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "tree:depth=0"])

    def test_workloads_command_lists_families(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for family in ("cbr", "poisson", "zipf", "flash_crowd", "diurnal",
                       "multi_source", "trace"):
            assert family in out
        assert "tree:depth" in out  # topology grammar footer

    def test_run_with_workload_prints_stats(self, capsys):
        assert main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--protocol",
                "cesrm",
                "--max-packets",
                "300",
                "--workload",
                "multi_source:senders=3",
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "workload multi_source:senders=3" in out
        assert "senders" in out

    def test_run_on_generative_topology(self, capsys):
        assert main(
            [
                "run",
                "--trace",
                "tree:depth=2,fanout=2",
                "--protocol",
                "srm",
                "--max-packets",
                "200",
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "srm on tree:depth=2,fanout=2" in out

    def test_workload_composes_with_faults(self, capsys, tmp_path):
        """The ISSUE's acceptance command: workload + fault plan + cesrm."""
        from repro.faults import sample_plan

        plan_path = tmp_path / "plan.json"
        sample_plan().save(plan_path)
        assert main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--protocol",
                "cesrm",
                "--max-packets",
                "300",
                "--workload",
                "zipf:alpha=1.1",
                "--faults",
                str(plan_path),
                "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "workload zipf:alpha=1.1" in out

    def test_cache_listing_shows_workload(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(
            [
                "run",
                "--trace",
                "WRN951216",
                "--max-packets",
                "300",
                "--workload",
                "poisson",
                "--cache-dir",
                cache_dir,
            ]
        )
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "workload=poisson" in capsys.readouterr().out


class TestBenchCommand:
    def test_parser_collects_suite_names(self):
        args = build_parser().parse_args(["bench", "kernel", "obs"])
        assert args.command == "bench"
        assert args.names == ["kernel", "obs"]

    def test_bare_bench_lists_available_suites(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out
        assert "obs" in out

    def test_unknown_suite_rejected(self, capsys):
        assert main(["bench", "definitely-not-a-suite"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark suite" in err
        assert "kernel" in err
