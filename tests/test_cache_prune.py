"""Run-cache garbage collection: ``prune`` and its unit parsers."""

import os

import pytest

from repro.exec.cache import RunCache, parse_age, parse_size
from repro.exec.jobs import RunJob
from repro.harness.cli import main
from repro.harness.config import SimulationConfig

FP = "f" * 64


def _put(cache: RunCache, seed: int, mtime: float | None = None):
    """Store a fake entry and optionally backdate its file mtime."""
    job = RunJob(
        "WRN950919",
        "srm",
        SimulationConfig(seed=seed, max_packets=100),
        trace_seed=seed,
        trace_max_packets=100,
    )
    path = cache.put(job, FP, {"fake": seed})
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return path


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "cache")


class TestPruneAge:
    def test_old_entries_dropped(self, cache):
        now = 1_000_000.0
        _put(cache, 0, mtime=now - 100)
        _put(cache, 1, mtime=now - 10)
        stats = cache.prune(older_than=50, now=now)
        assert stats.removed == 1
        assert stats.kept == 1
        assert stats.freed_bytes > 0
        assert len(cache.entries()) == 1
        assert cache.entries()[0].seed == 1

    def test_fresh_cache_untouched(self, cache):
        now = 1_000_000.0
        _put(cache, 0, mtime=now - 10)
        stats = cache.prune(older_than=3600, now=now)
        assert stats.removed == 0
        assert stats.kept == 1

    def test_empty_cache(self, cache):
        stats = cache.prune(older_than=0)
        assert stats.removed == 0
        assert stats.kept == 0


class TestPruneSize:
    def test_oldest_dropped_first_until_fit(self, cache):
        now = 1_000_000.0
        for seed in range(4):
            _put(cache, seed, mtime=now + seed)  # seed 0 is oldest
        per_entry = cache.size_bytes() // 4
        stats = cache.prune(max_size=2 * per_entry + 1, now=now)
        assert stats.removed == 2
        assert sorted(e.seed for e in cache.entries()) == [2, 3]
        assert cache.size_bytes() <= 2 * per_entry + 1
        assert stats.kept_bytes == cache.size_bytes()

    def test_zero_budget_clears_everything(self, cache):
        _put(cache, 0)
        _put(cache, 1)
        stats = cache.prune(max_size=0)
        assert stats.removed == 2
        assert len(cache.entries()) == 0

    def test_age_then_size_compose(self, cache):
        now = 1_000_000.0
        _put(cache, 0, mtime=now - 100)  # killed by age
        _put(cache, 1, mtime=now - 5)
        _put(cache, 2, mtime=now - 1)
        per_entry = cache.size_bytes() // 3
        stats = cache.prune(older_than=50, max_size=per_entry + 1, now=now)
        assert stats.removed == 2
        assert [e.seed for e in cache.entries()] == [2]


class TestParseAge:
    @pytest.mark.parametrize(
        ("text", "seconds"),
        [
            ("45s", 45.0),
            ("30m", 1800.0),
            ("12h", 43200.0),
            ("7d", 604800.0),
            ("1w", 604800.0),
            ("90", 90.0),
            ("1.5h", 5400.0),
            (" 2D ", 172800.0),
        ],
    )
    def test_units(self, text, seconds):
        assert parse_age(text) == seconds

    @pytest.mark.parametrize("text", ["", "d7", "7x", "-3d", "1h30m"])
    def test_rejects(self, text):
        with pytest.raises(ValueError, match="invalid age"):
            parse_age(text)


class TestParseSize:
    @pytest.mark.parametrize(
        ("text", "size"),
        [
            ("512", 512),
            ("64K", 64 * 1024),
            ("500M", 500 * 1024 * 1024),
            ("2G", 2 * 1024**3),
            ("10kb", 10 * 1024),
            ("3MiB", 3 * 1024**2),
            ("1.5k", 1536),
        ],
    )
    def test_units(self, text, size):
        assert parse_size(text) == size

    @pytest.mark.parametrize("text", ["", "M5", "5T", "-1G"])
    def test_rejects(self, text):
        with pytest.raises(ValueError, match="invalid size"):
            parse_size(text)


class TestCli:
    def test_prune_via_cli(self, tmp_path, capsys):
        cache = RunCache(tmp_path / "cache")
        now = 1_000_000.0
        _put(cache, 0, mtime=now - 100)
        rc = main(
            ["cache", "prune", "--older-than", "0s", "--cache-dir", str(tmp_path / "cache")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pruned 1 entries" in out
        assert len(cache.entries()) == 0

    def test_prune_requires_a_bound(self, tmp_path):
        with pytest.raises(SystemExit, match="needs --older-than"):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])

    def test_prune_rejects_bad_age(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid age"):
            main(
                ["cache", "prune", "--older-than", "nope", "--cache-dir", str(tmp_path)]
            )

    def test_unknown_cache_subcommand(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown cache subcommand"):
            main(["cache", "wipe", "--cache-dir", str(tmp_path)])
