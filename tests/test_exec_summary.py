"""RunSummary must round-trip every statistic the report layer consumes."""

import json

import pytest

from repro.exec.summary import (
    RunSummary,
    SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
)
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.srm.constants import SrmParams
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import trace_meta

TINY = 300


@pytest.fixture(scope="module")
def result():
    config = SimulationConfig(seed=0, max_packets=TINY)
    synthetic = synthesize_trace(trace_meta("WRN951113"), seed=0, max_packets=TINY)
    return run_trace(synthetic, "cesrm", config)


@pytest.fixture(scope="module")
def rehydrated(result):
    summary = RunSummary.from_result(result)
    return RunSummary.from_json(summary.to_json()).to_result()


class TestConfigSerialization:
    def test_round_trip_defaults(self):
        config = SimulationConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_round_trip_customized(self):
        config = SimulationConfig(
            params=SrmParams(c1=1.5, d3=2.0),
            seed=7,
            max_packets=123,
            policy="most-frequent",
            lossy_recovery=True,
            verify_period=0.5,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_vector_kernel_round_trips(self):
        config = SimulationConfig(kernel="vector")
        data = config_to_dict(config)
        assert data["kernel"] == "vector"
        assert config_from_dict(data) == config

    def test_default_kernel_omitted_from_wire(self):
        # Pre-v2 digest stability: the default kernel never serializes.
        assert "kernel" not in config_to_dict(SimulationConfig())
        assert "kernel" not in config_to_dict(
            SimulationConfig(kernel="python")
        )

    def test_pre_v2_wire_format_decodes_to_python_kernel(self):
        """Wire-format versioning: entries serialized before the kernel
        axis existed (no ``kernel`` key) decode to the python default."""
        data = config_to_dict(SimulationConfig())
        assert "kernel" not in data  # genuinely the old shape
        assert config_from_dict(data).kernel == "python"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            SimulationConfig(kernel="cuda")


class TestJsonRoundTrip:
    def test_summary_equality(self, result):
        summary = RunSummary.from_result(result)
        assert RunSummary.from_json(summary.to_json()) == summary

    def test_json_is_plain_data(self, result):
        # must survive a strict JSON round trip with no custom encoding
        text = RunSummary.from_result(result).to_json()
        json.loads(text)

    def test_schema_mismatch_rejected(self, result):
        data = RunSummary.from_result(result).to_dict()
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            RunSummary.from_dict(data)

    def test_unknown_field_rejected(self, result):
        data = RunSummary.from_result(result).to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            RunSummary.from_dict(data)


class TestResultRehydration:
    """Every field the figures/tables read must survive exactly."""

    def test_identity_and_structure(self, result, rehydrated):
        assert rehydrated.protocol == result.protocol
        assert rehydrated.trace_name == result.trace_name
        assert rehydrated.config == result.config
        assert rehydrated.receivers == result.receivers
        assert rehydrated.source == result.source
        assert rehydrated.hosts == result.hosts

    def test_figure1_latencies(self, result, rehydrated):
        for receiver in result.receivers:
            assert rehydrated.normalized_latencies(receiver) == (
                result.normalized_latencies(receiver)
            )
            assert rehydrated.avg_normalized_recovery_time(receiver) == (
                result.avg_normalized_recovery_time(receiver)
            )

    def test_figure2_gaps(self, result, rehydrated):
        for receiver in result.receivers:
            assert rehydrated.expedited_gap(receiver) == result.expedited_gap(
                receiver
            )

    def test_figure34_packet_counts(self, result, rehydrated):
        for host in result.hosts:
            assert rehydrated.request_counts(host) == result.request_counts(host)
            assert rehydrated.reply_counts(host) == result.reply_counts(host)

    def test_figure5_overhead_and_success(self, result, rehydrated):
        assert rehydrated.overhead == result.overhead
        assert (
            rehydrated.metrics.expedited_success_rate
            == result.metrics.expedited_success_rate
        )
        assert (
            rehydrated.metrics.expedited_requests_sent
            == result.metrics.expedited_requests_sent
        )

    def test_router_assist_crossings(self, result, rehydrated):
        assert rehydrated.crossings_snapshot == result.crossings_snapshot

    def test_metrics_collections(self, result, rehydrated):
        assert rehydrated.metrics.sends == result.metrics.sends
        assert rehydrated.metrics.recoveries == result.metrics.recoveries
        assert (
            rehydrated.metrics.losses_detected == result.metrics.losses_detected
        )
        assert rehydrated.metrics.unrecovered == result.metrics.unrecovered
        assert (
            rehydrated.metrics.rounds_histogram()
            == result.metrics.rounds_histogram()
        )

    def test_unrecovered_and_scalars(self, result, rehydrated):
        assert rehydrated.unrecovered == result.unrecovered
        assert rehydrated.unrecovered_losses == result.unrecovered_losses
        assert rehydrated.recovered_losses == result.recovered_losses
        assert rehydrated.rtt_to_source == result.rtt_to_source
        assert rehydrated.n_packets == result.n_packets
        assert rehydrated.total_losses == result.total_losses
        assert rehydrated.sim_time == result.sim_time
        assert rehydrated.events_processed == result.events_processed
        assert rehydrated.wall_time == result.wall_time

    def test_timeline_render_identical(self, result, rehydrated):
        from repro.harness.report import render_recovery_timeline

        receiver = max(
            result.receivers,
            key=lambda r: len(result.metrics.recoveries.get(r, [])),
        )
        assert render_recovery_timeline(
            rehydrated, receiver
        ) == render_recovery_timeline(result, receiver)
