"""Tests for the public facade (repro.api) and the examples' use of it."""

import ast
from pathlib import Path

import repro.api as api

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestFacade:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_core_surface_present(self):
        assert api.run_trace is not None
        assert api.build_simulation is not None
        assert api.SimulationConfig is not None
        assert api.FaultPlan is not None
        assert api.ProtocolSpec is not None
        assert callable(api.available_protocols)

    def test_facade_matches_deep_paths(self):
        from repro.faults import FaultPlan
        from repro.harness.registry import available_protocols
        from repro.harness.runner import run_trace

        assert api.run_trace is run_trace
        assert api.FaultPlan is FaultPlan
        assert api.available_protocols is available_protocols

    def test_no_duplicate_exports(self):
        assert len(api.__all__) == len(set(api.__all__))


class TestExamplesUseOnlyTheFacade:
    def test_examples_import_repro_api_only(self):
        assert EXAMPLES.is_dir()
        offenders = []
        for path in sorted(EXAMPLES.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module.startswith("repro") and module != "repro.api":
                        offenders.append(f"{path.name}: from {module} import ...")
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.startswith("repro"):
                            offenders.append(f"{path.name}: import {alias.name}")
        assert offenders == []

    def test_examples_only_use_exported_names(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module == "repro.api":
                    for alias in node.names:
                        assert alias.name in api.__all__, (
                            f"{path.name} imports {alias.name}, "
                            "not part of repro.api.__all__"
                        )
