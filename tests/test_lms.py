"""Tests for the LMS comparator (§3.3's router-assisted protocol)."""

from repro.harness.config import SimulationConfig
from repro.harness.runner import build_simulation, run_trace
from repro.lms.agent import LmsAgent
from repro.lms.fabric import LmsFabric
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import PacketKind
from repro.sim.engine import Simulator
from repro.srm.constants import SrmParams
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import deep_tree, two_subtrees


class TestFabric:
    def test_repliers_are_closest_receivers(self):
        tree = two_subtrees()
        fabric = LmsFabric(tree)
        # x1's subtree holds r1, r2 at equal distance: lexicographic tie
        assert fabric.replier_of("x1") == "r1"
        assert fabric.replier_of("x2") == "r3"
        assert fabric.replier_of("x0") in ("r1", "r2", "r3", "r4")

    def test_source_elects_itself(self):
        tree = two_subtrees()
        assert LmsFabric(tree).replier_of(tree.source) == tree.source

    def test_route_diverts_at_first_foreign_replier(self):
        tree = two_subtrees()
        fabric = LmsFabric(tree)
        # r2's NACK: x1's replier is r1 (not in r2's own leaf subtree) ->
        # diverted at x1 toward r1
        assert fabric.route_request("r2") == ("x1", "r1")

    def test_designated_replier_climbs(self):
        tree = two_subtrees()
        fabric = LmsFabric(tree)
        # r1 IS x1's replier, so its NACK climbs to x0; x0's replier is r1
        # itself (in the same child subtree) -> climbs to the source
        turning_point, replier = fabric.route_request("r1")
        if fabric.replier_of("x0") == "r1":
            assert (turning_point, replier) == (tree.source, tree.source)
        else:
            assert turning_point == "x0"

    def test_deep_tree_routing(self):
        tree = deep_tree()
        fabric = LmsFabric(tree)
        for receiver in tree.receivers:
            turning_point, replier = fabric.route_request(receiver)
            assert replier != receiver
            # the turning point is an ancestor of the requestor
            assert turning_point == tree.source or tree.is_descendant(
                receiver, turning_point
            )

    def test_fail_host_leaves_stale_state(self):
        tree = two_subtrees()
        fabric = LmsFabric(tree)
        victim = fabric.replier_of("x1")
        fabric.fail_host(victim)
        assert "x1" in fabric.stale_routers()
        assert fabric.replier_of("x1") == victim  # stale, by design

    def test_redesignate_repairs_state(self):
        tree = two_subtrees()
        fabric = LmsFabric(tree)
        victim = fabric.replier_of("x1")
        fabric.fail_host(victim)
        fixed = fabric.redesignate()
        assert fixed >= 1
        assert fabric.replier_of("x1") != victim
        assert fabric.stale_routers() == []


def lms_world():
    """A hand-wired LMS world on two_subtrees."""
    import random

    tree = two_subtrees()
    sim = Simulator()
    network = Network(sim, tree)
    metrics = MetricsCollector()
    fabric = LmsFabric(tree)
    agents = {
        host: LmsAgent(
            sim=sim,
            network=network,
            host_id=host,
            source=tree.source,
            params=SrmParams(),
            rng=random.Random(7),
            metrics=metrics,
            fabric=fabric,
        )
        for host in tree.hosts
    }
    for index, host in enumerate(tree.hosts):
        agents[host].start(session_offset=(index + 0.5) / (len(tree.hosts) + 1))
    return sim, network, tree, agents, metrics, fabric


class TestLmsRecovery:
    def run_with_drop(self, drop):
        sim, network, tree, agents, metrics, fabric = lms_world()
        sim.run(until=3.0)

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            return (u, v) in drop.get(packet.seqno, ())

        network.drop_fn = drop_fn
        for seq in range(4):
            sim.schedule_at(3.0 + seq * 0.3, agents["s"].send_data, seq)
        sim.run(until=40.0)
        return agents, metrics, network

    def test_single_loss_recovered_locally(self):
        agents, metrics, network = self.run_with_drop({1: {("x1", "r2")}})
        assert agents["r2"].stream.has(1)
        # the repair was a subcast, not a group-wide multicast
        snapshot = network.crossings.snapshot()
        assert snapshot.get(("erepl", "subcast"), 0) > 0
        assert snapshot.get(("repl", "multicast"), 0) == 0
        assert snapshot.get(("rqst", "multicast"), 0) == 0

    def test_repair_does_not_reach_other_subtree(self):
        agents, metrics, network = self.run_with_drop({1: {("x1", "r2")}})
        # r2's NACK diverted at x1 to r1; subcast from x1 covers r1, r2 only
        assert 1 not in agents["r3"].reply_states
        assert 1 not in agents["r4"].reply_states

    def test_shared_subtree_loss_forwarded_upstream(self):
        agents, metrics, network = self.run_with_drop({1: {("x0", "x1")}})
        # both r1 and r2 lost packet 1; a replier outside x1 repaired it
        assert agents["r1"].stream.has(1)
        assert agents["r2"].stream.has(1)

    def test_whole_group_loss_repaired_by_source(self):
        agents, metrics, network = self.run_with_drop({2: {("s", "x0")}})
        for receiver in ("r1", "r2", "r3", "r4"):
            assert agents[receiver].stream.has(2), receiver

    def test_nack_retry_survives_transient_silence(self):
        """If the first NACK is lost, the exponential retry recovers."""
        sim, network, tree, agents, metrics, fabric = lms_world()
        sim.run(until=3.0)
        dropped = []

        def drop_fn(u, v, packet):
            if packet.kind is PacketKind.DATA:
                return packet.seqno == 1 and (u, v) == ("x1", "r2")
            if packet.kind is PacketKind.ERQST and not dropped:
                dropped.append(packet)
                return True  # kill exactly the first NACK
            return False

        network.drop_fn = drop_fn
        for seq in range(4):
            sim.schedule_at(3.0 + seq * 0.3, agents["s"].send_data, seq)
        sim.run(until=60.0)
        assert dropped
        assert agents["r2"].stream.has(1)
        assert agents["r2"].nacks_sent >= 2


class TestLmsViaRunner:
    def synthetic(self):
        params = SynthesisParams(
            name="lms",
            n_receivers=6,
            tree_depth=4,
            period=0.05,
            n_packets=500,
            target_losses=300,
        )
        return synthesize_trace(params, seed=8)

    def test_full_reliability(self):
        result = run_trace(self.synthetic(), "lms")
        assert result.unrecovered_losses == 0

    def test_no_multicast_recovery_traffic(self):
        result = run_trace(self.synthetic(), "lms")
        assert result.metrics.total_sends(PacketKind.RQST) == 0
        assert result.metrics.total_sends(PacketKind.REPL) == 0
        assert result.metrics.total_sends(PacketKind.ERQST) > 0

    def test_fabric_exposed_on_simulation(self):
        simulation = build_simulation(self.synthetic(), "lms", SimulationConfig())
        assert simulation.fabric is not None
        simulation_srm = build_simulation(self.synthetic(), "srm", SimulationConfig())
        assert simulation_srm.fabric is None


class TestLmsChurnFragility:
    def test_stale_replier_stalls_recovery(self):
        """§3.3's claim: with a crashed designated replier and no router
        re-designation, losses behind that replier's router stall —
        whereas CESRM in the same scenario recovers everything."""
        sim, network, tree, agents, metrics, fabric = lms_world()
        sim.run(until=3.0)
        victim = fabric.replier_of("x1")  # r1
        other = "r2" if victim == "r1" else "r1"
        agents[victim].fail()
        fabric.fail_host(victim)  # recorded, but routers stay stale

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            return packet.seqno == 1 and (u, v) == ("x1", other)

        network.drop_fn = drop_fn
        for seq in range(3):
            sim.schedule_at(3.0 + seq * 0.3, agents["s"].send_data, seq)
        sim.run(until=20.0)
        # the NACKs keep going to the dead replier: recovery stalls
        assert not agents[other].stream.has(1)
        assert agents[other].unrecovered_losses() == [1]
        assert agents[other].nacks_sent >= 2

    def test_redesignation_unblocks_recovery(self):
        sim, network, tree, agents, metrics, fabric = lms_world()
        sim.run(until=3.0)
        victim = fabric.replier_of("x1")
        other = "r2" if victim == "r1" else "r1"
        agents[victim].fail()
        fabric.fail_host(victim)

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            return packet.seqno == 1 and (u, v) == ("x1", other)

        network.drop_fn = drop_fn
        for seq in range(3):
            sim.schedule_at(3.0 + seq * 0.3, agents["s"].send_data, seq)
        sim.schedule_at(8.0, fabric.redesignate)  # control plane catches up
        sim.run(until=60.0)
        assert agents[other].stream.has(1)
        assert agents[other].unrecovered_losses() == []
