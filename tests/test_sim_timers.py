"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        out = []
        timer = Timer(sim, out.append, "fired")
        timer.start(2.0)
        sim.run()
        assert out == ["fired"]
        assert sim.now == 2.0

    def test_not_armed_before_start(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.expiry is None

    def test_armed_while_pending(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        assert timer.armed
        assert timer.expiry == 1.0

    def test_not_armed_after_fire(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.armed

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        out = []
        timer = Timer(sim, out.append, 1)
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert out == []
        assert not timer.armed

    def test_cancel_never_started_is_safe(self):
        Timer(Simulator(), lambda: None).cancel()

    def test_restart_supersedes_previous(self):
        sim = Simulator()
        out = []
        timer = Timer(sim, lambda: out.append(sim.now))
        timer.start(1.0)
        timer.start(5.0)
        sim.run()
        assert out == [5.0]

    def test_restart_after_fire(self):
        sim = Simulator()
        out = []
        timer = Timer(sim, lambda: out.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert out == [1.0, 2.0]

    def test_start_at_absolute_time(self):
        sim = Simulator()
        out = []
        timer = Timer(sim, lambda: out.append(sim.now))
        timer.start_at(3.5)
        sim.run()
        assert out == [3.5]

    def test_callback_args_bound_at_construction(self):
        sim = Simulator()
        out = []
        timer = Timer(sim, lambda a, b: out.append((a, b)), 1, 2)
        timer.start(1.0)
        sim.run()
        assert out == [(1, 2)]

    def test_restart_from_own_callback(self):
        sim = Simulator()
        fires = []
        timer = Timer(sim, lambda: None)

        def fire():
            fires.append(sim.now)
            if len(fires) < 3:
                timer.start(1.0)

        timer._callback = fire
        timer.start(1.0)
        sim.run()
        assert fires == [1.0, 2.0, 3.0]


class TestPeriodicTimer:
    def test_ticks_every_period(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert timer.ticks == 3

    def test_custom_first_delay(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start(first_delay=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_ticking(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.running

    def test_stop_from_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_restart_resets_schedule(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=1.5)
        timer.start(first_delay=0.2)
        sim.run(until=2.0)
        assert ticks == [1.0, 1.7]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), -1.0, lambda: None)

    def test_running_property(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
