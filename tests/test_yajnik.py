"""Tests for the Table 1 metadata."""

import pytest

from repro.traces.yajnik import FIGURE_TRACES, YAJNIK_TRACES, trace_meta


def test_fourteen_traces():
    assert len(YAJNIK_TRACES) == 14
    assert [m.index for m in YAJNIK_TRACES] == list(range(1, 15))


def test_known_row_values():
    meta = trace_meta("WRN951113")
    assert meta.index == 7
    assert meta.n_receivers == 12
    assert meta.tree_depth == 5
    assert meta.period_ms == 80
    assert meta.n_packets == 46443
    assert meta.n_losses == 29686


def test_period_seconds():
    assert trace_meta("RFV960508").period == pytest.approx(0.040)
    assert trace_meta("RFV960419").period == pytest.approx(0.080)


def test_mean_loss_rate():
    meta = trace_meta("WRN951216")
    assert meta.mean_loss_rate == pytest.approx(37833 / (50202 * 8))


def test_receiver_counts_in_paper_range():
    for meta in YAJNIK_TRACES:
        assert 7 <= meta.n_receivers <= 15
        assert 3 <= meta.tree_depth <= 7
        assert meta.period_ms in (40, 80)


def test_figure_traces_are_the_six_typical_ones():
    assert len(FIGURE_TRACES) == 6
    names = {m.name for m in YAJNIK_TRACES}
    assert set(FIGURE_TRACES) <= names


def test_unknown_trace_raises():
    with pytest.raises(KeyError):
        trace_meta("NOPE")
