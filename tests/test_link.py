"""Unit tests for the per-direction link model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.link import LinkState


def make_link(bw: float = 1.5e6, delay: float = 0.020) -> LinkState:
    return LinkState(bandwidth_bps=bw, propagation_delay=delay)


def test_transmission_time_of_payload():
    link = make_link()
    # 1 KB at 1.5 Mbps = 8192 / 1.5e6 s ≈ 5.46 ms
    assert link.transmission_time(1024) == pytest.approx(8192 / 1.5e6)


def test_control_packets_have_zero_transmission_time():
    assert make_link().transmission_time(0) == 0.0


def test_enqueue_idle_link():
    link = make_link()
    arrival = link.enqueue(now=1.0, size_bytes=0)
    assert arrival == pytest.approx(1.020)


def test_enqueue_includes_transmission_and_propagation():
    link = make_link()
    arrival = link.enqueue(now=0.0, size_bytes=1024)
    assert arrival == pytest.approx(8192 / 1.5e6 + 0.020)


def test_back_to_back_payloads_queue():
    link = make_link()
    tx = link.transmission_time(1024)
    first = link.enqueue(now=0.0, size_bytes=1024)
    second = link.enqueue(now=0.0, size_bytes=1024)
    assert first == pytest.approx(tx + 0.020)
    assert second == pytest.approx(2 * tx + 0.020)
    assert link.queueing_delay_total == pytest.approx(tx)


def test_control_packet_not_delayed_by_idle_gap():
    link = make_link()
    link.enqueue(now=0.0, size_bytes=1024)
    tx = link.transmission_time(1024)
    # after the payload finished serializing, the link is idle again
    arrival = link.enqueue(now=tx + 1.0, size_bytes=0)
    assert arrival == pytest.approx(tx + 1.0 + 0.020)


def test_counters():
    link = make_link()
    link.enqueue(now=0.0, size_bytes=1024)
    link.enqueue(now=0.0, size_bytes=0)
    assert link.packets_carried == 2
    assert link.bytes_carried == 1024


def test_mean_queueing_delay_empty():
    assert make_link().mean_queueing_delay == 0.0


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=4096), min_size=1, max_size=30),
    bw=st.floats(min_value=1e4, max_value=1e9),
    delay=st.floats(min_value=0.0001, max_value=0.5),
)
def test_arrivals_are_fifo_monotone(sizes, bw, delay):
    """Arrivals over one direction never reorder (FIFO queue)."""
    link = LinkState(bandwidth_bps=bw, propagation_delay=delay)
    arrivals = [link.enqueue(now=0.0, size_bytes=size) for size in sizes]
    assert arrivals == sorted(arrivals)
    # every arrival is at least propagation + own transmission away
    for size, arrival in zip(sizes, arrivals):
        assert arrival >= delay + link.transmission_time(size) - 1e-12
