"""The deprecated `repro.core.cache` shim: warns once per name, forwards
to `repro.core.cachelab`, and stays import-cycle-free."""

import subprocess
import sys

import pytest


def test_shim_warns_and_forwards():
    import repro.core.cache as shim
    from repro.core import cachelab

    with pytest.warns(DeprecationWarning, match="moved to repro.core.cachelab"):
        cls = shim.RecoveryPairCache
    assert cls is cachelab.RecoveryPairCache
    with pytest.warns(DeprecationWarning):
        assert shim.RecoveryTuple is cachelab.RecoveryTuple


def test_shim_unknown_name():
    import repro.core.cache as shim

    with pytest.raises(AttributeError, match="NoSuchThing"):
        shim.NoSuchThing


def test_shim_import_fails_under_error_filter():
    """CI pins the deprecation: importing through the shim with
    `-W error::DeprecationWarning` must raise, proving no internal code
    path still routes through it."""
    proc = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::DeprecationWarning",
            "-c",
            "from repro.core.cache import RecoveryPairCache",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode != 0
    assert "DeprecationWarning" in proc.stderr


def test_internal_surface_is_shim_free():
    """Importing the public facade and the CLI module under the error
    filter succeeds — nothing internal touches the shim."""
    proc = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::DeprecationWarning",
            "-c",
            "import repro.api, repro.harness.cli",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
