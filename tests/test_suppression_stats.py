"""Statistical behaviour of SRM's suppression machinery (§2.1–2.2).

These tests exercise the *purpose* of the C/D constants over many loss
events on a topology where all receivers are equidistant from the source
(deterministic suppression can't help, so probabilistic suppression has to
do the work):

* with C2 = 0 every co-loser fires its request at the same instant —
  duplicates everywhere;
* with the paper's C2 = 2 most duplicate requests are suppressed;
* replies behave symmetrically under D2.
"""

from repro.net.packet import PacketKind
from repro.net.topology import MulticastTree
from repro.srm.constants import SrmParams

from tests.helpers import make_world, two_subtrees


def star_tree(n_receivers: int = 6) -> MulticastTree:
    """s -> x1 -> {r1..rn}: every receiver equidistant from everything."""
    parents = {"x1": "s"}
    receivers = []
    for i in range(1, n_receivers + 1):
        rid = f"r{i}"
        parents[rid] = "x1"
        receivers.append(rid)
    return MulticastTree("s", parents, receivers)


def run_shared_losses(params: SrmParams, n_events: int = 30, seed: int = 0):
    """All receivers lose every odd packet (shared loss on (s, x1))."""
    world = make_world(tree=star_tree(), params=params, seed=seed)
    world.run_warmup()
    drop = {2 * k + 1: {("s", "x1")} for k in range(n_events)}
    world.send_packets(2 * n_events + 1, period=0.4, drop=drop)
    world.run(extra=30.0)
    requests = len(world.metrics.sends_of(PacketKind.RQST))
    replies = len(world.metrics.sends_of(PacketKind.REPL))
    unrecovered = sum(
        len(world.agents[r].unrecovered_losses()) for r in world.tree.receivers
    )
    return requests, replies, unrecovered, n_events


class TestProbabilisticRequestSuppression:
    def test_no_jitter_means_duplicate_storms(self):
        """C2 = 0 with equidistant receivers: everyone's timer expires at
        the same instant, so (nearly) every co-loser requests."""
        params = SrmParams(c1=2.0, c2=0.0)
        requests, _, unrecovered, events = run_shared_losses(params)
        assert unrecovered == 0
        assert requests / events > 4.0  # ~all 6 receivers fire

    def test_paper_jitter_suppresses_most_duplicates(self):
        params = SrmParams(c1=2.0, c2=2.0)
        requests, _, unrecovered, events = run_shared_losses(params)
        assert unrecovered == 0
        # 6 co-losers per event; the paper's jitter suppresses over half
        assert requests / events < 4.5

    def test_wider_jitter_suppresses_harder_but_never_below_one(self):
        narrow, _, _, events = run_shared_losses(SrmParams(c1=2.0, c2=1.0))
        wide, _, _, _ = run_shared_losses(SrmParams(c1=2.0, c2=6.0))
        assert wide <= narrow
        assert wide >= events  # at least one request per loss event


class TestReplySuppression:
    def test_source_is_sole_replier_for_shared_losses(self):
        """The drop is on (s, x1): only the source holds the packet, and
        reply abstinence keeps replies near one per event even when
        duplicate requests storm in (a request arriving after the D3·d'
        hold expires legitimately earns a second reply)."""
        params = SrmParams(c1=2.0, c2=0.0)  # force duplicate requests
        _, replies, unrecovered, events = run_shared_losses(params)
        assert unrecovered == 0
        assert events <= replies <= 1.5 * events

    def test_star_topology_defeats_reply_suppression(self):
        """On a star every replier is equidistant from the requestor, so
        the reply windows close *before* any reply can cross the tree —
        suppression physically cannot engage and every holder replies.
        This is precisely the duplicate-reply pathology that inflates
        SRM's Figure 4 counts (and that CESRM's single expedited reply
        eliminates)."""
        world = make_world(tree=star_tree(), params=SrmParams(), seed=1)
        world.run_warmup()
        n_events = 20
        drop = {2 * k + 1: {("x1", "r1")} for k in range(n_events)}
        world.send_packets(2 * n_events + 1, period=0.4, drop=drop)
        world.run(extra=30.0)
        replies = len(world.metrics.sends_of(PacketKind.REPL))
        assert world.agents["r1"].unrecovered_losses() == []
        # all 6 holders (5 receivers + source) reply, every time
        assert replies == 6 * n_events

    def test_heterogeneous_distances_enable_reply_suppression(self):
        """With varied replier distances (two_subtrees), near repliers
        fire inside far repliers' windows and suppress them: well below
        the 4-holder population."""
        world = make_world(tree=two_subtrees(), params=SrmParams(), seed=1)
        world.run_warmup()
        n_events = 20
        drop = {2 * k + 1: {("x1", "r1")} for k in range(n_events)}
        world.send_packets(2 * n_events + 1, period=0.4, drop=drop)
        world.run(extra=30.0)
        replies = len(world.metrics.sends_of(PacketKind.REPL))
        assert world.agents["r1"].unrecovered_losses() == []
        assert n_events <= replies < 3.5 * n_events


class TestDeterministicSuppression:
    def test_closer_requestor_usually_wins(self):
        """On a chain, the receiver closer to the source fires first
        (deterministic suppression) for shared losses."""
        parents = {"x1": "s", "r1": "x1", "x2": "x1", "r2": "x2"}
        tree = MulticastTree("s", parents, ["r1", "r2"])
        world = make_world(tree=tree, params=SrmParams(c1=2.0, c2=0.5), seed=2)
        world.run_warmup()
        n_events = 20
        drop = {2 * k + 1: {("s", "x1")} for k in range(n_events)}
        world.send_packets(2 * n_events + 1, period=0.4, drop=drop)
        world.run(extra=30.0)
        near = len(world.metrics.sends_of(PacketKind.RQST, host="r1"))
        far = len(world.metrics.sends_of(PacketKind.RQST, host="r2"))
        assert near > far
