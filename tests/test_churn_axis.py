"""The ``churn:`` membership axis — spec grammar, determinism, digests.

(Distinct from ``tests/test_churn.py``, which covers host-crash *fault*
churn: there the member stays in the group and recovers; here members
join and leave the tree itself.)
"""

import pytest

from repro.churn import ChurnError, compile_churn, validate_churn
from repro.exec.jobs import RunJob
from repro.exec.summary import RunSummary
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.net.network import Network
from repro.net.packet import Packet, PacketKind
from repro.net.topology import build_balanced_tree
from repro.sim.engine import Simulator
from repro.workloads.topology import synthesize_topology_trace

SPEC = "transit_stub:transits=2,stubs=2,hosts=2,packets=150,loss=0.02"


def small_trace():
    return synthesize_topology_trace(SPEC, seed=1, max_packets=150)


class TestGrammar:
    def test_empty_spec_is_no_churn(self):
        assert compile_churn("").empty
        assert compile_churn("  ").empty

    def test_rate_required(self):
        with pytest.raises(ChurnError, match="rate"):
            compile_churn("churn:leave=0.5")

    def test_rate_must_be_positive(self):
        with pytest.raises(ChurnError, match="must be > 0"):
            compile_churn("churn:rate=0")
        with pytest.raises(ChurnError, match="must be > 0"):
            compile_churn("churn:rate=-1")

    def test_leave_is_a_probability(self):
        with pytest.raises(ChurnError, match="leave"):
            compile_churn("churn:rate=1,leave=1.5")

    def test_until_after_start(self):
        with pytest.raises(ChurnError, match="until"):
            compile_churn("churn:rate=1,start=10,until=5")

    def test_unknown_family_and_params_rejected(self):
        with pytest.raises(ChurnError, match="unknown churn family"):
            compile_churn("membership:rate=1")
        with pytest.raises(ChurnError):
            compile_churn("churn:rate=1,flap=2")

    def test_canonical_spec_is_identity(self):
        a = compile_churn("churn:rate=0.5,leave=0.3")
        b = compile_churn("churn:leave=0.3,rate=0.5")
        assert a.spec == b.spec
        assert validate_churn("churn:leave=0.3,rate=0.5") == (
            "churn:leave=0.3,rate=0.5"  # user's spelling preserved
        )


class TestDigestFolding:
    def test_empty_churn_leaves_job_identity_unchanged(self):
        base = RunJob(trace="WRN951128", protocol="cesrm", config=SimulationConfig())
        static = RunJob(
            trace="WRN951128", protocol="cesrm", config=SimulationConfig(), churn=""
        )
        assert base.key() == static.key()
        assert "churn" not in base.to_dict()
        assert RunJob.from_dict(base.to_dict()) == base  # pre-churn wire format

    def test_nonempty_churn_changes_identity(self):
        base = RunJob(trace="WRN951128", protocol="cesrm", config=SimulationConfig())
        churned = base.__class__(
            trace="WRN951128",
            protocol="cesrm",
            config=SimulationConfig(),
            churn="churn:rate=1",
        )
        assert base.key() != churned.key()
        assert churned.to_dict()["churn"] == "churn:rate=1"
        assert RunJob.from_dict(churned.to_dict()) == churned

    def test_bad_spec_fails_at_job_construction(self):
        with pytest.raises(ValueError, match="churn"):
            RunJob(
                trace="WRN951128",
                protocol="cesrm",
                config=SimulationConfig(),
                churn="churn:rate=-2",
            )


class TestRuns:
    def test_static_summary_has_no_churn_block(self):
        result = run_trace(small_trace(), "cesrm", SimulationConfig(max_packets=150))
        summary = RunSummary.from_result(result)
        assert result.churn is None
        assert "churn" not in summary.to_dict()

    def test_churn_run_counters_are_consistent(self):
        trace = small_trace()
        initial = len(trace.trace.tree.receivers)
        result = run_trace(
            trace,
            "cesrm",
            SimulationConfig(max_packets=150),
            churn="churn:rate=1.5",
        )
        block = result.churn
        assert block is not None
        assert block["spec"] == "churn:rate=1.5"
        assert block["joins"] + block["leaves"] > 0
        assert block["final_receivers"] == initial + block["joins"] - block["leaves"]
        assert block["final_receivers"] >= compile_churn("churn:rate=1.5").floor

    def test_churn_run_is_deterministic(self):
        config = SimulationConfig(max_packets=150)
        first = run_trace(small_trace(), "cesrm", config, churn="churn:rate=2")
        second = run_trace(small_trace(), "cesrm", config, churn="churn:rate=2")
        a = RunSummary.from_result(first).to_dict()
        b = RunSummary.from_result(second).to_dict()
        a.pop("wall_time")
        b.pop("wall_time")
        assert a == b

    def test_churn_rides_the_summary_round_trip(self):
        result = run_trace(
            small_trace(),
            "cesrm",
            SimulationConfig(max_packets=150),
            churn="churn:rate=1",
        )
        summary = RunSummary.from_result(result)
        rehydrated = RunSummary.from_json(summary.to_json())
        assert rehydrated.churn == summary.churn


class TestUnicastUnderChurn:
    """Unicast traffic addressed at or crossing a detached subtree is
    dropped and counted, never a crash (static runs keep the hard
    invariant that every unicast is deliverable)."""

    def _network(self):
        tree = build_balanced_tree(branching=2, depth=2)
        sim = Simulator()
        network = Network(sim, tree, propagation_delay=0.020)

        class Sink:
            def receive(self, packet):
                pass

        for host in tree.hosts:
            network.attach(host, Sink())
        return sim, network

    def test_unicast_to_detached_receiver_is_dropped(self):
        sim, network = self._network()
        network.detach_subtree("r1")
        before = network.packets_dropped
        network.unicast(
            "r1",
            Packet(
                kind=PacketKind.REPL, origin="s", source="s", seqno=0, size_bytes=0
            ),
        )
        sim.run()
        assert network.packets_dropped == before + 1

    def test_reattached_receiver_is_deliverable_again(self):
        sim, network = self._network()
        network.detach_subtree("r1")
        network.attach_receiver("r1", "x1")

        class Sink:
            def __init__(self):
                self.got = 0

            def receive(self, packet):
                self.got += 1

        sink = Sink()
        network.attach("r1", sink)
        network.unicast(
            "r1",
            Packet(
                kind=PacketKind.REPL, origin="s", source="s", seqno=0, size_bytes=0
            ),
        )
        sim.run()
        assert sink.got == 1
