"""Workload determinism across execution modes (the ISSUE's satellite):
the same spec + seed must yield identical event streams and identical
``RunSummary`` digests serially, under ``--jobs N`` (process-pool
fan-out), and across a run-cache round trip."""

import hashlib

import pytest

from repro.exec.cache import RunCache
from repro.exec.jobs import RunJob, execute_job
from repro.exec.pool import ExecutionEngine
from repro.exec.summary import RunSummary
from repro.harness.config import SimulationConfig

#: A generative topology keeps these runs fast (8 receivers, 80 packets)
#: while also exercising the topology family through the whole exec stack.
TRACE = "tree:depth=3,fanout=2"
WORKLOADS = ("zipf:alpha=1.2,objects=16", "multi_source:senders=3")
CFG = SimulationConfig(seed=5, max_packets=80)


def jobs():
    return [
        RunJob(
            trace=TRACE,
            protocol=protocol,
            config=CFG,
            trace_seed=5,
            trace_max_packets=80,
            workload=workload,
        )
        for workload in WORKLOADS
        for protocol in ("srm", "cesrm")
    ]


def digests(results):
    """sha256 each run's ``RunSummary`` JSON.  ``execute_job`` hands back
    a ``RunSummary`` but ``ExecutionEngine.execute`` rehydrates to
    ``RunResult``; normalize both."""
    out = []
    for result in results:
        if not isinstance(result, RunSummary):
            result = RunSummary.from_result(result)
        result.wall_time = 0.0  # host-dependent; everything else counts
        out.append(hashlib.sha256(result.to_json().encode()).hexdigest())
    return out


class TestSerial:
    def test_rerun_is_byte_identical(self):
        job = jobs()[0]
        assert digests([execute_job(job)]) == digests([execute_job(job)])

    def test_event_stream_protocol_independent(self):
        """Workloads offer the same traffic to every protocol: the stream
        depends on (spec, trace, seed) only."""
        from repro.exec.jobs import synthesize_job_trace
        from repro.workloads import compile_workload

        trace = synthesize_job_trace(TRACE, seed=5, max_packets=80).trace
        workload = compile_workload(WORKLOADS[0])
        assert workload.events(trace, seed=5) == workload.events(trace, seed=5)


class TestPool:
    def test_jobs2_matches_serial(self):
        serial = ExecutionEngine(jobs=1).execute(jobs())
        pooled = ExecutionEngine(jobs=2).execute(jobs())
        assert digests(serial) == digests(pooled)

    def test_pooled_summaries_carry_workload(self):
        for summary in ExecutionEngine(jobs=2).execute(jobs()):
            assert summary.workload is not None
            assert summary.workload["spec"] in WORKLOADS


class TestCacheRoundTrip:
    @pytest.fixture
    def cache(self, tmp_path):
        return RunCache(tmp_path / "cache")

    def test_cached_rerun_is_byte_identical(self, cache):
        cold = ExecutionEngine(jobs=1, cache=cache).execute(jobs())
        assert cache.stats.stores == len(jobs())
        warm_engine = ExecutionEngine(jobs=1, cache=cache)
        warm = warm_engine.execute(jobs())
        assert cache.stats.hits == len(jobs())
        assert digests(cold) == digests(warm)

    def test_workload_block_survives_disk(self, cache):
        engine = ExecutionEngine(jobs=1, cache=cache)
        engine.execute(jobs())
        warm = ExecutionEngine(jobs=1, cache=cache).execute(jobs())
        for summary in warm:
            assert summary.workload is not None
            assert summary.workload["events"] == 80

    def test_distinct_workloads_distinct_slots(self, cache):
        batch = jobs()
        keys = {job.key() for job in batch}
        assert len(keys) == len(batch)
        ExecutionEngine(jobs=1, cache=cache).execute(batch)
        assert len(list(cache.runs_dir.glob("*.json"))) == len(batch)
