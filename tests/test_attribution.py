"""Tests for loss-pattern → link-combination attribution (§4.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.attribution import Attributor
from repro.traces.model import LossTrace
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import deep_tree, line_tree, two_subtrees


def uniform_rates(tree, p=0.05):
    return {link: p for link in tree.links}


class TestSingleLinkPatterns:
    def test_single_receiver_loss(self):
        tree = two_subtrees()
        att = Attributor(tree, uniform_rates(tree))
        choice = att.best_combination(frozenset({"r1"}))
        assert choice.combo == {("x1", "r1")}
        assert 0.0 < choice.probability <= 1.0
        assert choice.posterior > 0.9

    def test_subtree_loss_prefers_shared_link(self):
        tree = two_subtrees()
        att = Attributor(tree, uniform_rates(tree))
        choice = att.best_combination(frozenset({"r1", "r2"}))
        # one drop on (x0, x1) is far likelier than two independent drops
        assert choice.combo == {("x0", "x1")}

    def test_whole_group_loss(self):
        tree = two_subtrees()
        att = Attributor(tree, uniform_rates(tree))
        choice = att.best_combination(frozenset(tree.receivers))
        assert choice.combo == {("s", "x0")}

    def test_rates_steer_the_choice(self):
        tree = two_subtrees()
        rates = uniform_rates(tree, 0.001)
        # make the two receiver links individually very lossy
        rates[("x1", "r1")] = 0.5
        rates[("x1", "r2")] = 0.5
        att = Attributor(tree, rates)
        choice = att.best_combination(frozenset({"r1", "r2"}))
        # two hot tail drops now beat one cold shared drop
        assert choice.combo == {("x1", "r1"), ("x1", "r2")}

    def test_cross_subtree_pattern_needs_two_links(self):
        tree = two_subtrees()
        att = Attributor(tree, uniform_rates(tree))
        choice = att.best_combination(frozenset({"r1", "r3"}))
        assert choice.combo == {("x1", "r1"), ("x2", "r3")}

    def test_empty_pattern(self):
        tree = two_subtrees()
        att = Attributor(tree, uniform_rates(tree))
        choice = att.best_combination(frozenset())
        assert choice.combo == frozenset()
        assert choice.posterior == 1.0

    def test_unknown_receiver_rejected(self):
        tree = line_tree()
        att = Attributor(tree, uniform_rates(tree))
        with pytest.raises(ValueError):
            att.best_combination(frozenset({"ghost"}))


class TestDpAgainstBruteForce:
    @given(
        pattern_bits=st.integers(min_value=0, max_value=15),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_probability_matches_enumeration(self, pattern_bits, seed):
        tree = two_subtrees()
        rng = random.Random(seed)
        rates = {link: rng.uniform(0.01, 0.4) for link in tree.links}
        att = Attributor(tree, rates)
        receivers = list(tree.receivers)
        pattern = frozenset(
            r for i, r in enumerate(receivers) if pattern_bits & (1 << i)
        )
        combos = att.enumerate_combinations(pattern)
        # enumeration lists only combos whose pattern matches x
        for combo, _ in combos:
            assert att.pattern_of_combo(combo) == pattern
        total = sum(weight for _, weight in combos)
        assert att.total_probability(pattern) == pytest.approx(total, rel=1e-9)

    @given(
        pattern_bits=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_best_combination_matches_enumeration(self, pattern_bits, seed):
        tree = two_subtrees()
        rng = random.Random(seed)
        rates = {link: rng.uniform(0.01, 0.4) for link in tree.links}
        att = Attributor(tree, rates)
        receivers = list(tree.receivers)
        pattern = frozenset(
            r for i, r in enumerate(receivers) if pattern_bits & (1 << i)
        )
        combos = att.enumerate_combinations(pattern)
        best_weight = max(weight for _, weight in combos)
        choice = att.best_combination(pattern)
        assert choice.probability == pytest.approx(best_weight, rel=1e-9)
        assert choice.posterior == pytest.approx(
            best_weight / sum(w for _, w in combos), rel=1e-9
        )

    def test_deeper_tree_against_enumeration(self):
        tree = deep_tree()
        rng = random.Random(11)
        rates = {link: rng.uniform(0.02, 0.3) for link in tree.links}
        att = Attributor(tree, rates)
        for pattern in (
            frozenset({"r1"}),
            frozenset({"r1", "r2"}),
            frozenset({"r1", "r2", "r3"}),
            frozenset({"r4"}),
            frozenset({"r1", "r4"}),
            frozenset(tree.receivers),
        ):
            combos = att.enumerate_combinations(pattern)
            total = sum(w for _, w in combos)
            best = max(w for _, w in combos)
            assert att.total_probability(pattern) == pytest.approx(total, rel=1e-9)
            assert att.best_combination(pattern).probability == pytest.approx(
                best, rel=1e-9
            )


class TestSampling:
    def test_sampled_combos_reproduce_pattern(self):
        tree = two_subtrees()
        att = Attributor(tree, uniform_rates(tree, 0.2))
        rng = random.Random(0)
        pattern = frozenset({"r1", "r2", "r3"})
        for _ in range(50):
            combo = att.sample_combination(pattern, rng)
            assert att.pattern_of_combo(combo) == pattern

    def test_sampling_frequencies_match_posterior(self):
        tree = line_tree()
        rates = {("s", "x1"): 0.1, ("x1", "r1"): 0.2, ("x1", "r2"): 0.3}
        att = Attributor(tree, rates)
        pattern = frozenset({"r1", "r2"})
        combos = att.enumerate_combinations(pattern)
        total = sum(w for _, w in combos)
        shared_posterior = next(
            w for c, w in combos if c == frozenset({("s", "x1")})
        ) / total
        rng = random.Random(42)
        n = 4000
        hits = sum(
            1
            for _ in range(n)
            if att.sample_combination(pattern, rng) == frozenset({("s", "x1")})
        )
        assert hits / n == pytest.approx(shared_posterior, abs=0.03)

    def test_sample_requires_rng_in_trace_mode(self):
        tree = line_tree()
        att = Attributor(tree, uniform_rates(tree))
        trace = LossTrace(
            "t", tree, 0.08, {"r1": bytes([1]), "r2": bytes([0])}
        )
        with pytest.raises(ValueError):
            att.attribute_trace(trace, select="sample")

    def test_unknown_select_mode(self):
        tree = line_tree()
        att = Attributor(tree, uniform_rates(tree))
        trace = LossTrace("t", tree, 0.08, {"r1": bytes([1]), "r2": bytes([0])})
        with pytest.raises(ValueError):
            att.attribute_trace(trace, select="magic")


class TestTraceAttribution:
    def test_every_lossy_packet_attributed(self):
        params = SynthesisParams(
            name="attr",
            n_receivers=6,
            tree_depth=4,
            period=0.08,
            n_packets=2000,
            target_losses=900,
        )
        synthetic = synthesize_trace(params, seed=3)
        att = Attributor(synthetic.trace.tree, synthetic.link_rates)
        result = att.attribute_trace(synthetic.trace)
        assert set(result.combos) == set(synthetic.trace.lossy_packets())
        for packet, combo in result.combos.items():
            assert att.pattern_of_combo(combo) == synthetic.trace.loss_pattern(packet)

    def test_posterior_statistics_match_paper_claim(self):
        """§4.2: the overwhelming majority of selected combinations carry
        posterior probability above 95% — using the paper's pipeline, i.e.
        rates *estimated from the observations* (estimated rates reflect
        where losses actually concentrated, which sharpens posteriors)."""
        from repro.traces.inference import estimate_link_rates_subtree

        params = SynthesisParams(
            name="post",
            n_receivers=8,
            tree_depth=4,
            period=0.08,
            n_packets=4000,
            target_losses=2000,
        )
        synthetic = synthesize_trace(params, seed=4)
        rates = estimate_link_rates_subtree(synthetic.trace)
        att = Attributor(synthetic.trace.tree, rates)
        result = att.attribute_trace(synthetic.trace)
        assert result.posterior_fraction_above(0.95) > 0.85
        assert result.mean_posterior > 0.9

    def test_attribution_on_memoryless_losses_recovers_ground_truth(self):
        """With Bernoulli (memoryless) per-link losses the generator matches
        the DP's independence model, so the selected combination should be
        the true one almost always."""
        tree = two_subtrees()
        rng = random.Random(5)
        rates = {link: 0.001 for link in tree.links}
        rates[("x0", "x1")] = 0.08
        rates[("x2", "r3")] = 0.05
        n = 4000
        drops = {
            link: bytes(1 if rng.random() < p else 0 for _ in range(n))
            for link, p in rates.items()
        }
        loss_seqs = {}
        for receiver in tree.receivers:
            path = tree.path(tree.source, receiver)
            seq = bytearray(n)
            for i in range(n):
                if any(drops[link][i] for link in zip(path, path[1:])):
                    seq[i] = 1
            loss_seqs[receiver] = bytes(seq)
        trace = LossTrace("bern", tree, 0.08, loss_seqs)
        att = Attributor(tree, rates)
        result = att.attribute_trace(trace)
        correct = 0
        for packet, combo in result.combos.items():
            truth = set()
            for link in tree.links:
                if drops[link][packet]:
                    # only effective (topmost) drops are ground truth
                    upstream = tree.links_upstream_of(link)
                    if not any(drops[up][packet] for up in upstream):
                        truth.add(link)
            if combo == truth:
                correct += 1
        assert correct / len(result.combos) > 0.9

    def test_pattern_cache_hits(self):
        tree = line_tree()
        att = Attributor(tree, uniform_rates(tree))
        first = att.best_combination(frozenset({"r1"}))
        second = att.best_combination(frozenset({"r1"}))
        assert first is second

    def test_distinct_patterns_counted(self):
        tree = line_tree()
        att = Attributor(tree, uniform_rates(tree))
        trace = LossTrace(
            "t",
            tree,
            0.08,
            {"r1": bytes([1, 0, 1, 1]), "r2": bytes([0, 1, 0, 1])},
        )
        result = att.attribute_trace(trace)
        # patterns: {r1}, {r2}, {r1}, {r1,r2} -> 3 distinct
        assert result.distinct_patterns == 3


class TestClamping:
    def test_zero_rate_links_still_usable(self):
        tree = line_tree()
        att = Attributor(tree, {link: 0.0 for link in tree.links})
        choice = att.best_combination(frozenset({"r1"}))
        assert choice.combo == {("x1", "r1")}

    def test_probability_normalization(self):
        """Sum of posteriors over all combos of a pattern equals 1."""
        tree = two_subtrees()
        rng = random.Random(9)
        rates = {link: rng.uniform(0.05, 0.3) for link in tree.links}
        att = Attributor(tree, rates)
        pattern = frozenset({"r1", "r2", "r4"})
        combos = att.enumerate_combinations(pattern)
        total = att.total_probability(pattern)
        posterior_sum = sum(w / total for _, w in combos)
        assert posterior_sum == pytest.approx(1.0, rel=1e-9)
