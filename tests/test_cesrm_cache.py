"""Tests for the optimal requestor/replier cache (§3.1)."""

import pytest

from repro.core.cachelab import RecoveryPairCache, RecoveryTuple


def tup(seq: int, q="q", d_qs=0.1, r="r", d_rq=0.05, tp=None) -> RecoveryTuple:
    return RecoveryTuple(
        seqno=seq,
        requestor=q,
        requestor_to_source=d_qs,
        replier=r,
        replier_to_requestor=d_rq,
        turning_point=tp,
    )


class TestRecoveryTuple:
    def test_recovery_delay_metric(self):
        # d_qs + 2 * d_rq (§3.1)
        assert tup(0, d_qs=0.1, d_rq=0.05).recovery_delay == pytest.approx(0.2)

    def test_pair(self):
        assert tup(0, q="a", r="b").pair == ("a", "b")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            tup(0).seqno = 5

    def test_turning_point_default_none(self):
        assert tup(0).turning_point is None
        assert tup(0, tp="x1").turning_point == "x1"


class TestObserveRules:
    def test_insert_new_packet(self):
        cache = RecoveryPairCache(capacity=4)
        assert cache.observe(tup(1))
        assert 1 in cache
        assert len(cache) == 1

    def test_optimal_pair_kept_on_duplicate(self):
        cache = RecoveryPairCache(capacity=4)
        cache.observe(tup(1, r="slow", d_rq=0.2))
        improved = tup(1, r="fast", d_rq=0.01)
        assert cache.observe(improved)
        assert cache.get(1).replier == "fast"

    def test_worse_pair_discarded_on_duplicate(self):
        cache = RecoveryPairCache(capacity=4)
        cache.observe(tup(1, r="fast", d_rq=0.01))
        assert not cache.observe(tup(1, r="slow", d_rq=0.2))
        assert cache.get(1).replier == "fast"

    def test_equal_delay_keeps_first(self):
        cache = RecoveryPairCache(capacity=4)
        cache.observe(tup(1, r="first"))
        assert not cache.observe(tup(1, r="second"))
        assert cache.get(1).replier == "first"

    def test_eviction_of_least_recent_packet(self):
        cache = RecoveryPairCache(capacity=2)
        cache.observe(tup(1))
        cache.observe(tup(2))
        cache.observe(tup(3))
        assert 1 not in cache
        assert 2 in cache and 3 in cache

    def test_older_than_everything_rejected_when_full(self):
        cache = RecoveryPairCache(capacity=2)
        cache.observe(tup(5))
        cache.observe(tup(6))
        assert not cache.observe(tup(1))
        assert 1 not in cache
        assert cache.rejects == 1

    def test_old_packet_accepted_when_not_full(self):
        cache = RecoveryPairCache(capacity=3)
        cache.observe(tup(5))
        cache.observe(tup(6))
        assert cache.observe(tup(1))
        assert 1 in cache

    def test_update_allowed_even_for_oldest_cached(self):
        cache = RecoveryPairCache(capacity=2)
        cache.observe(tup(5, d_rq=0.2))
        cache.observe(tup(6))
        assert cache.observe(tup(5, d_rq=0.01))  # same packet: update
        assert cache.get(5).replier_to_requestor == pytest.approx(0.01)

    def test_capacity_one(self):
        cache = RecoveryPairCache(capacity=1)
        cache.observe(tup(1))
        cache.observe(tup(2))
        assert len(cache) == 1
        assert 2 in cache

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RecoveryPairCache(capacity=0)


class TestQueries:
    def test_most_recent_is_highest_seq(self):
        cache = RecoveryPairCache(capacity=4)
        cache.observe(tup(3, q="q3"))
        cache.observe(tup(7, q="q7"))
        cache.observe(tup(5, q="q5"))
        assert cache.most_recent().requestor == "q7"

    def test_most_recent_empty(self):
        assert RecoveryPairCache().most_recent() is None

    def test_entries_ordered_most_recent_first(self):
        cache = RecoveryPairCache(capacity=4)
        for seq in (2, 9, 4):
            cache.observe(tup(seq))
        assert [e.seqno for e in cache.entries()] == [9, 4, 2]

    def test_pair_frequencies(self):
        cache = RecoveryPairCache(capacity=8)
        cache.observe(tup(1, q="a", r="x"))
        cache.observe(tup(2, q="a", r="x"))
        cache.observe(tup(3, q="b", r="y"))
        assert cache.pair_frequencies() == {("a", "x"): 2, ("b", "y"): 1}

    def test_clear(self):
        cache = RecoveryPairCache()
        cache.observe(tup(1))
        cache.clear()
        assert len(cache) == 0

    def test_stats_counters(self):
        cache = RecoveryPairCache(capacity=2)
        cache.observe(tup(1, d_rq=0.5))
        cache.observe(tup(1, d_rq=0.1))
        assert cache.inserts == 1
        assert cache.improvements == 1
