"""Functional tests for fault execution (repro.faults.inject) through the
full runner: outages block traffic, crashes silence agents, stochastic
rules draw from dedicated streams, and the whole thing is deterministic."""

import pytest

from repro.faults import (
    FaultPlan,
    LinkDown,
    LinkFlap,
    NodeCrash,
    PacketDuplicate,
    PacketReorder,
    Partition,
    SessionSuppress,
)
from repro.exec.summary import RunSummary
from repro.harness.config import SimulationConfig
from repro.harness.runner import build_simulation, run_trace
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import make_synthetic, two_subtrees


def small_synthetic(n_packets=300, target=100, seed=2):
    params = SynthesisParams(
        name="faulted",
        n_receivers=5,
        tree_depth=3,
        period=0.04,
        n_packets=n_packets,
        target_losses=target,
    )
    return synthesize_trace(params, seed=seed)


def lossless_synthetic(n_packets=40):
    return make_synthetic(two_subtrees(), n_packets=n_packets, period=0.08, combos={})


class TestEmptyPlanIdentity:
    def test_no_plan_and_empty_plan_agree_bytewise(self):
        synthetic = small_synthetic()
        config = SimulationConfig(seed=3)
        bare = RunSummary.from_result(run_trace(synthetic, "cesrm", config))
        empty = RunSummary.from_result(
            run_trace(synthetic, "cesrm", config, faults=FaultPlan())
        )
        bare.wall_time = empty.wall_time = 0.0
        assert bare.to_json() == empty.to_json()

    def test_fault_free_summary_has_no_faults_key(self):
        result = run_trace(small_synthetic(), "cesrm")
        assert result.faults is None
        summary = RunSummary.from_result(result)
        assert "faults" not in summary.to_dict()

    def test_empty_plan_draws_nothing(self):
        synthetic = small_synthetic()
        simulation = build_simulation(
            synthetic, "srm", SimulationConfig(), faults=FaultPlan()
        )
        assert simulation.faults is not None
        assert simulation.faults.plan.empty


class TestScheduledFaults:
    def test_link_down_blocks_and_heals(self):
        synthetic = lossless_synthetic()
        # r3's uplink dies mid-transmission and comes back.
        plan = FaultPlan(events=(LinkDown(u="x2", v="r3", at=4.0, duration=1.0),))
        result = run_trace(synthetic, "srm", SimulationConfig(), faults=plan)
        assert result.faults is not None
        assert result.faults["link_outages"] == 1
        assert result.faults["packets_blocked"] > 0
        # losses created by the outage recover after the heal
        assert result.unrecovered_losses == 0
        assert result.recovered_losses > 0

    def test_partition_equals_uplink_outage(self):
        synthetic = lossless_synthetic()
        down = run_trace(
            synthetic,
            "srm",
            SimulationConfig(seed=7),
            faults=FaultPlan(events=(LinkDown(u="x2", v="r3", at=4.0, duration=1.0),)),
        )
        part = run_trace(
            synthetic,
            "srm",
            SimulationConfig(seed=7),
            faults=FaultPlan(events=(Partition(node="r3", at=4.0, duration=1.0),)),
        )
        assert down.faults["packets_blocked"] == part.faults["packets_blocked"]
        assert down.recovered_losses == part.recovered_losses

    def test_permanent_crash_without_restart(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(events=(NodeCrash(host="r4", at=4.0),))
        simulation = build_simulation(
            synthetic, "srm", SimulationConfig(), faults=plan
        )
        simulation.sim.run(until=simulation.end_time)
        assert simulation.agents["r4"].failed
        assert simulation.faults.crashes == 1
        assert simulation.faults.restarts == 0
        assert simulation.faults.is_host_down("r4")

    def test_crash_and_restart_resumes_session(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(events=(NodeCrash(host="r4", at=4.0, restart_after=2.0),))
        simulation = build_simulation(
            synthetic, "srm", SimulationConfig(), faults=plan
        )
        simulation.sim.run(until=simulation.end_time)
        agent = simulation.agents["r4"]
        assert not agent.failed
        assert agent._session_timer.running
        assert simulation.faults.stats()["restarts"] == 1

    def test_session_suppress_counts_swallowed_reports(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(events=(SessionSuppress(host="r1", at=2.0, duration=3.0),))
        result = run_trace(synthetic, "srm", SimulationConfig(), faults=plan)
        # 1 s session period -> about three reports muted
        assert 2 <= result.faults["sessions_suppressed"] <= 4

    def test_link_flap_produces_outages(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(
            events=(
                LinkFlap(u="x0", v="x1", mean_up=1.0, mean_down=0.3, start=3.0),
            )
        )
        result = run_trace(synthetic, "srm", SimulationConfig(seed=5), faults=plan)
        assert result.faults["link_outages"] >= 1


class TestHopRules:
    def test_duplication_inflates_deliveries(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(events=(PacketDuplicate(rate=0.2, kind="data"),))
        result = run_trace(synthetic, "srm", SimulationConfig(), faults=plan)
        assert result.faults["packets_duplicated"] > 0
        # duplicates of held packets are discarded by the stream layer
        assert result.unrecovered_losses == 0

    def test_reorder_delays_packets(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(events=(PacketReorder(rate=0.3, max_delay=0.05),))
        result = run_trace(synthetic, "srm", SimulationConfig(), faults=plan)
        assert result.faults["packets_delayed"] > 0
        assert result.unrecovered_losses == 0

    def test_windowed_rule_respects_bounds(self):
        synthetic = lossless_synthetic()
        # window entirely before the data transmission begins (t0 = 3.25)
        plan = FaultPlan(
            events=(PacketDuplicate(rate=1.0, kind="data", start=0.0, end=1.0),)
        )
        result = run_trace(synthetic, "srm", SimulationConfig(), faults=plan)
        assert result.faults["packets_duplicated"] == 0


class TestValidation:
    def test_unknown_link_rejected(self):
        plan = FaultPlan(events=(LinkDown(u="r1", v="r3", at=1.0),))
        with pytest.raises(ValueError, match="no tree link"):
            build_simulation(lossless_synthetic(), "srm", SimulationConfig(), faults=plan)

    def test_unknown_host_rejected(self):
        plan = FaultPlan(events=(NodeCrash(host="nope", at=1.0),))
        with pytest.raises(ValueError, match="no agent"):
            build_simulation(lossless_synthetic(), "srm", SimulationConfig(), faults=plan)

    def test_partitioning_root_rejected(self):
        plan = FaultPlan(events=(Partition(node="s", at=1.0),))
        with pytest.raises(ValueError, match="root"):
            build_simulation(lossless_synthetic(), "srm", SimulationConfig(), faults=plan)


class TestDeterminism:
    def test_same_plan_same_seed_byte_identical(self):
        synthetic = small_synthetic()
        config = SimulationConfig(seed=11)
        plan = FaultPlan(
            events=(
                NodeCrash(host="r2", at=8.0, restart_after=5.0),
                PacketDuplicate(rate=0.02),
                PacketReorder(rate=0.02, max_delay=0.03),
            )
        )
        a = RunSummary.from_result(run_trace(synthetic, "cesrm", config, faults=plan))
        b = RunSummary.from_result(run_trace(synthetic, "cesrm", config, faults=plan))
        a.wall_time = b.wall_time = 0.0
        assert a.to_json() == b.to_json()

    def test_seed_changes_stochastic_faults(self):
        synthetic = small_synthetic()
        plan = FaultPlan(events=(PacketDuplicate(rate=0.05),))
        a = run_trace(synthetic, "srm", SimulationConfig(seed=1), faults=plan)
        b = run_trace(synthetic, "srm", SimulationConfig(seed=2), faults=plan)
        assert a.faults["packets_duplicated"] != b.faults["packets_duplicated"]

    def test_faulted_summary_round_trips(self):
        synthetic = lossless_synthetic()
        plan = FaultPlan(events=(PacketDuplicate(rate=0.1),))
        summary = RunSummary.from_result(
            run_trace(synthetic, "srm", SimulationConfig(), faults=plan)
        )
        assert summary.faults is not None
        rehydrated = RunSummary.from_json(summary.to_json())
        assert rehydrated == summary
        assert rehydrated.to_result().faults == summary.faults
