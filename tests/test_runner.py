"""Tests for the simulation runner and configuration."""

import pytest

from repro.harness.config import SimulationConfig
from repro.harness.registry import available_protocols
from repro.harness.runner import build_simulation, run_trace
from repro.net.packet import PacketKind
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import make_synthetic, two_subtrees


def small_synthetic(n_packets=400, target=150, seed=2):
    params = SynthesisParams(
        name="runner",
        n_receivers=5,
        tree_depth=3,
        period=0.04,
        n_packets=n_packets,
        target_losses=target,
    )
    return synthesize_trace(params, seed=seed)


class TestConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.propagation_delay == pytest.approx(0.020)
        assert config.bandwidth_bps == pytest.approx(1.5e6)
        assert config.session_period == 1.0
        assert config.reorder_delay == 0.0
        assert config.policy == "most-recent"
        assert not config.lossy_recovery

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(propagation_delay=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(cache_capacity=0)
        with pytest.raises(ValueError):
            SimulationConfig(max_packets=0)
        with pytest.raises(ValueError):
            SimulationConfig(reorder_delay=-1.0)

    def test_with_creates_modified_copy(self):
        config = SimulationConfig()
        other = config.with_(seed=9, policy="most-frequent")
        assert other.seed == 9
        assert other.policy == "most-frequent"
        assert config.seed == 0  # original untouched

    def test_transmission_start_after_warmup(self):
        config = SimulationConfig(warmup_periods=3.0, session_period=1.0)
        assert config.transmission_start > 3.0


class TestBuildSimulation:
    def test_agents_at_every_host(self):
        synthetic = small_synthetic()
        simulation = build_simulation(synthetic, "srm", SimulationConfig())
        assert set(simulation.agents) == set(synthetic.trace.tree.hosts)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_simulation(small_synthetic(), "tcp", SimulationConfig())

    def test_protocol_registry_covers_all(self):
        synthetic = small_synthetic(n_packets=50, target=20)
        for protocol in available_protocols():
            simulation = build_simulation(synthetic, protocol, SimulationConfig())
            assert simulation.source_agent.is_source

    def test_max_packets_truncates(self):
        synthetic = small_synthetic(n_packets=400)
        config = SimulationConfig(max_packets=100)
        simulation = build_simulation(synthetic, "srm", config)
        assert simulation.trace.trace.n_packets == 100


class TestRunTrace:
    def test_full_reliability_under_lossless_recovery(self):
        result = run_trace(small_synthetic(), "srm")
        assert result.unrecovered_losses == 0
        assert result.recovered_losses > 0

    def test_recovered_plus_undetected_covers_losses(self):
        result = run_trace(small_synthetic(), "cesrm")
        undetected = sum(result.metrics.undetected_recoveries.values())
        assert (
            result.recovered_losses + undetected + result.unrecovered_losses
            == result.total_losses
        )

    def test_deterministic_given_seed(self):
        synthetic = small_synthetic()
        a = run_trace(synthetic, "cesrm", SimulationConfig(seed=5))
        b = run_trace(synthetic, "cesrm", SimulationConfig(seed=5))
        assert a.metrics.sends == b.metrics.sends
        assert a.overhead == b.overhead
        assert [r.latency for r in a.metrics.all_recoveries()] == [
            r.latency for r in b.metrics.all_recoveries()
        ]

    def test_seed_changes_jitter(self):
        synthetic = small_synthetic()
        a = run_trace(synthetic, "srm", SimulationConfig(seed=1))
        b = run_trace(synthetic, "srm", SimulationConfig(seed=2))
        # same losses, same recoveries, different timers
        assert a.recovered_losses == b.recovered_losses
        a_times = [r.latency for r in a.metrics.all_recoveries()]
        b_times = [r.latency for r in b.metrics.all_recoveries()]
        assert a_times != b_times

    def test_rtt_estimates_match_topology(self):
        synthetic = small_synthetic()
        result = run_trace(synthetic, "srm")
        tree = synthetic.trace.tree
        for receiver in result.receivers:
            expected = 2 * tree.hop_distance(tree.source, receiver) * 0.020
            assert result.rtt_to_source[receiver] == pytest.approx(expected)

    def test_srm_sends_no_expedited_traffic(self):
        result = run_trace(small_synthetic(), "srm")
        assert result.metrics.expedited_requests_sent == 0
        assert result.metrics.expedited_replies_sent == 0
        assert result.overhead.unicast_control == 0

    def test_cesrm_request_and_reply_count_helpers(self):
        result = run_trace(small_synthetic(), "cesrm")
        total_rqst = sum(result.request_counts(h)["multicast"] for h in result.hosts)
        total_erqst = sum(result.request_counts(h)["unicast"] for h in result.hosts)
        assert total_rqst == result.metrics.total_sends(PacketKind.RQST)
        assert total_erqst == result.metrics.total_sends(PacketKind.ERQST)
        total_repl = sum(result.reply_counts(h)["multicast"] for h in result.hosts)
        assert total_repl == result.metrics.total_sends(PacketKind.REPL)

    def test_normalized_latencies_positive(self):
        result = run_trace(small_synthetic(), "cesrm")
        for receiver in result.receivers:
            for value in result.normalized_latencies(receiver):
                assert value > 0

    def test_trace_driven_losses_match_trace(self):
        """Every loss the trace prescribes is experienced: detected and
        recovered (or repaired before detection)."""
        tree = two_subtrees()
        combos = {
            2: frozenset({("x0", "x1")}),
            5: frozenset({("x2", "r3")}),
            7: frozenset({("x1", "r2"), ("x2", "r4")}),
        }
        synthetic = make_synthetic(tree, n_packets=10, period=0.08, combos=combos)
        result = run_trace(synthetic, "srm")
        recovered = {
            (rec.host, rec.seq) for rec in result.metrics.all_recoveries()
        }
        expected = {
            ("r1", 2),
            ("r2", 2),
            ("r2", 7),
            ("r3", 5),
            ("r4", 7),
        }
        assert recovered == expected

    def test_lossy_recovery_still_mostly_recovers(self):
        synthetic = small_synthetic()
        config = SimulationConfig(lossy_recovery=True, drain_time=60.0)
        result = run_trace(synthetic, "cesrm", config)
        assert result.recovered_losses > 0.9 * result.total_losses

    def test_lossy_recovery_latency_not_lower(self):
        synthetic = small_synthetic()
        lossless = run_trace(synthetic, "srm", SimulationConfig())
        lossy = run_trace(
            synthetic, "srm", SimulationConfig(lossy_recovery=True, drain_time=60.0)
        )

        def avg(result):
            values = [
                result.avg_normalized_recovery_time(r) for r in result.receivers
            ]
            return sum(values) / len(values)

        assert avg(lossy) >= avg(lossless) * 0.95  # latency can only grow

    def test_run_result_bookkeeping(self):
        synthetic = small_synthetic()
        result = run_trace(synthetic, "cesrm")
        assert result.protocol == "cesrm"
        assert result.trace_name == "runner"
        assert result.n_packets == 400
        assert result.events_processed > 0
        assert result.sim_time > 0
        assert result.wall_time > 0
