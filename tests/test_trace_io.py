"""Tests for trace serialization."""

import io
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces.io import (
    FORMAT_TAG,
    dump_trace,
    load_trace,
    parse_trace,
    rle_decode,
    rle_encode,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.traces.model import LossTrace, TraceError
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import line_tree


def sample_trace() -> LossTrace:
    return LossTrace(
        "io-test",
        line_tree(),
        0.04,
        {"r1": bytes([0, 1, 1, 0]), "r2": bytes([1, 0, 0, 0])},
    )


class TestRle:
    def test_encode_starts_with_zero_run(self):
        assert rle_encode(bytes([1, 1, 0])) == [0, 2, 1]

    def test_encode_simple(self):
        assert rle_encode(bytes([0, 0, 1, 0])) == [2, 1, 1]

    def test_decode_checks_length(self):
        with pytest.raises(TraceError):
            rle_decode([2, 1], 5)

    def test_decode_rejects_negative(self):
        with pytest.raises(TraceError):
            rle_decode([-1, 6], 5)

    @given(st.binary(max_size=500).map(lambda b: bytes(x & 1 for x in b)))
    def test_roundtrip(self, seq):
        assert rle_decode(rle_encode(seq), len(seq)) == seq

    def test_bursty_sequences_compress(self):
        seq = bytes([0] * 500 + [1] * 20 + [0] * 480)
        assert len(rle_encode(seq)) == 3


class TestDictRoundtrip:
    def test_roundtrip_preserves_everything(self):
        trace = sample_trace()
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.name == trace.name
        assert rebuilt.period == trace.period
        assert rebuilt.loss_seqs == trace.loss_seqs
        assert rebuilt.tree.to_parent_map() == trace.tree.to_parent_map()
        assert rebuilt.tree.receivers == trace.tree.receivers

    def test_format_tag_enforced(self):
        data = trace_to_dict(sample_trace())
        data["format"] = "other"
        with pytest.raises(TraceError):
            trace_from_dict(data)

    def test_dict_is_json_serializable(self):
        json.dumps(trace_to_dict(sample_trace()))


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.loss_seqs == trace.loss_seqs

    def test_stream_roundtrip(self):
        trace = sample_trace()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert parse_trace(buffer).loss_seqs == trace.loss_seqs

    def test_synthetic_trace_roundtrip(self, tmp_path):
        params = SynthesisParams(
            name="synth-io",
            n_receivers=5,
            tree_depth=3,
            period=0.08,
            n_packets=800,
            target_losses=300,
        )
        synthetic = synthesize_trace(params, seed=1)
        path = tmp_path / "synth.json"
        save_trace(synthetic.trace, path)
        loaded = load_trace(path)
        assert loaded.total_losses == synthetic.trace.total_losses
        assert loaded.n_packets == 800
        assert FORMAT_TAG in path.read_text()
