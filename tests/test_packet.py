"""Unit tests for the packet model."""

from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Cast, Packet, PacketKind


def test_payload_sizes_match_paper():
    assert PAYLOAD_BYTES == 1024  # 1 KB payload packets (§4.3)
    assert CONTROL_BYTES == 0  # 0 KB control packets (§4.3)


def test_payload_carrying_kinds():
    assert PacketKind.DATA.carries_payload
    assert PacketKind.REPL.carries_payload
    assert PacketKind.EREPL.carries_payload
    assert not PacketKind.RQST.carries_payload
    assert not PacketKind.ERQST.carries_payload
    assert not PacketKind.SESSION.carries_payload


def test_retransmission_kinds():
    assert PacketKind.REPL.is_retransmission
    assert PacketKind.EREPL.is_retransmission
    assert not PacketKind.DATA.is_retransmission
    assert not PacketKind.RQST.is_retransmission


def test_recovery_control_kinds():
    assert PacketKind.RQST.is_recovery_control
    assert PacketKind.ERQST.is_recovery_control
    assert not PacketKind.REPL.is_recovery_control
    assert not PacketKind.SESSION.is_recovery_control


def test_packet_id():
    packet = Packet(
        kind=PacketKind.RQST, origin="r1", source="s", seqno=42, size_bytes=0
    )
    assert packet.packet_id == ("s", 42)


def test_default_cast_is_multicast():
    packet = Packet(
        kind=PacketKind.DATA, origin="s", source="s", seqno=0, size_bytes=1024
    )
    assert packet.cast is Cast.MULTICAST


def test_annotation_defaults():
    packet = Packet(
        kind=PacketKind.DATA, origin="s", source="s", seqno=0, size_bytes=1024
    )
    assert packet.requestor is None
    assert packet.replier is None
    assert packet.turning_point is None
    assert packet.payload is None
