"""Behavioural tests for the SRM agent (§2).

Most tests run a tiny world (tests.helpers.make_world) through session
warmup so distances are exact, then inject controlled losses and assert on
the timing and counts of requests, replies, and recoveries.  A few tests
drive the agent surgically by delivering crafted packets.
"""

import pytest

from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Packet, PacketKind

from tests.helpers import make_world, two_subtrees

TX = PAYLOAD_BYTES * 8 / 1.5e6  # payload serialization per hop
D = 0.020  # per-link propagation in these tests


def rqst(origin: str, seq: int, requestor_dist: float = 0.04) -> Packet:
    return Packet(
        kind=PacketKind.RQST,
        origin=origin,
        source="s",
        seqno=seq,
        size_bytes=CONTROL_BYTES,
        requestor=origin,
        requestor_dist=requestor_dist,
    )


def repl(origin: str, seq: int, requestor: str = "r1") -> Packet:
    return Packet(
        kind=PacketKind.REPL,
        origin=origin,
        source="s",
        seqno=seq,
        size_bytes=PAYLOAD_BYTES,
        requestor=requestor,
        requestor_dist=0.04,
        replier=origin,
        replier_dist=0.04,
    )


class TestLossDetection:
    def test_gap_detection(self):
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        detections = [d for d in world.metrics.detection_log if d[1] == "r1"]
        assert [(host, seq) for _, host, seq in detections] == [("r1", 1)]

    def test_detection_time_is_arrival_of_next_packet(self):
        # 20 ms period so the gap closes before any session message can
        # reveal the loss first (sessions also detect losses — see below)
        world = make_world()
        world.run_warmup()
        world.send_packets(3, period=0.02, drop={1: {("x1", "r1")}})
        world.run()
        (t_detect, _, _), = [d for d in world.metrics.detection_log if d[1] == "r1"]
        # packet 2 leaves at data_start + 0.04 and arrives 2 hops later
        expected = world.data_start + 2 * 0.02 + 2 * (TX + D)
        assert t_detect == pytest.approx(expected, abs=1e-6)

    def test_session_message_can_beat_gap_detection(self):
        # with an 80 ms period the source session at +0.125 reports the
        # missing packet before the next data packet closes the gap
        world = make_world()
        world.run_warmup()
        world.send_packets(3, period=0.08, drop={1: {("x1", "r1")}})
        world.run()
        (t_detect, _, _), = [d for d in world.metrics.detection_log if d[1] == "r1"]
        gap_arrival = world.data_start + 2 * 0.08 + 2 * (TX + D)
        assert t_detect < gap_arrival

    def test_burst_detected_together(self):
        world = make_world()
        world.run_warmup()
        drop = {i: {("x1", "r1")} for i in (1, 2, 3)}
        world.send_packets(5, period=0.02, drop=drop)
        world.run()
        detections = [d for d in world.metrics.detection_log if d[1] == "r1"]
        seqs = sorted(seq for _, _, seq in detections)
        assert seqs == [1, 2, 3]
        times = {t for t, _, _ in detections}
        assert len(times) == 1  # all detected when packet 4 arrives

    def test_source_never_detects(self):
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("s", "x1")}})
        world.run()
        assert world.metrics.losses_detected["s"] == 0

    def test_unaffected_receiver_detects_nothing(self):
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        assert world.metrics.losses_detected["r2"] == 0


class TestRequestScheduling:
    def test_request_fires_within_c1_c2_interval(self):
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        (t_detect, _, _), = [d for d in world.metrics.detection_log if d[1] == "r1"]
        requests = world.metrics.sends_of(PacketKind.RQST, host="r1")
        assert len(requests) == 1
        delay = requests[0][0] - t_detect
        d_hs = 2 * D  # r1 is two hops from s
        assert 2 * d_hs <= delay <= 4 * d_hs  # [C1 d, (C1+C2) d]

    def test_request_annotated_with_requestor_and_distance(self):
        world = make_world()
        world.run_warmup()

        captured = []
        source_receive = world.agents["s"].receive

        def spy(packet):
            if packet.kind is PacketKind.RQST:
                captured.append(packet)
            source_receive(packet)

        world.agents["s"].receive = spy
        world.network._agents["s"] = world.agents["s"]  # rebind unchanged
        world.network._agents["s"].receive = spy
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        assert captured
        packet = captured[0]
        assert packet.requestor == "r1"
        assert packet.requestor_dist == pytest.approx(2 * D)

    def test_shared_loss_single_reply(self):
        """Both receivers lose the packet; requests may or may not be
        suppressed (jitter), but reply abstinence at the source must keep
        the reply count at one."""
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("s", "x1")}})
        world.run()
        replies = world.metrics.sends_of(PacketKind.REPL)
        assert len(replies) == 1
        assert replies[0][1] == "s"
        for receiver in ("r1", "r2"):
            assert world.agents[receiver].stream.has(1)

    def test_backoff_doubles_when_replies_never_arrive(self):
        world = make_world()
        world.run_warmup()
        base_drop = {1: {("x1", "r1")}}

        def drop_fn(u, v, packet):
            if packet.kind is PacketKind.DATA:
                return (u, v) in base_drop.get(packet.seqno, ())
            return packet.kind is PacketKind.REPL  # repairs never survive

        world.send_packets(3, drop=base_drop)
        world.network.drop_fn = drop_fn
        world.run(extra=60.0)
        requests = world.metrics.sends_of(PacketKind.RQST, host="r1")
        assert len(requests) >= 4
        gaps = [
            requests[i + 1][0] - requests[i][0] for i in range(len(requests) - 1)
        ]
        # each round's interval doubles: gap_{i+1} / gap_i in [1, 4] but the
        # *sum pattern* must grow; compare first and later gaps
        assert gaps[2] > 2 * gaps[0]

    def test_foreign_request_backs_off_scheduled_request(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        # create a request state surgically
        agent._detect_loss(5)
        state = agent.request_states[5]
        assert state.backoff == 0
        first_expiry = state.timer.expiry
        # deliver a foreign request after the abstinence period (none yet)
        agent.receive(rqst("r2", 5))
        assert state.backoff == 1
        assert state.timer.expiry != first_expiry
        assert state.abstain_until > world.sim.now

    def test_abstinence_prevents_double_backoff(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent._detect_loss(5)
        agent.receive(rqst("r2", 5))
        state = agent.request_states[5]
        assert state.backoff == 1
        agent.receive(rqst("r2", 5))  # still inside abstinence
        assert state.backoff == 1

    def test_backoff_resumes_after_abstinence(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent._detect_loss(5)
        agent.receive(rqst("r2", 5))
        state = agent.request_states[5]
        # wait out the abstinence period, then a new foreign request
        world.sim.schedule(state.abstain_until - world.sim.now + 0.001,
                           agent.receive, rqst("r2", 5))
        world.sim.run(until=state.abstain_until + 0.002)
        assert state.backoff == 2


class TestDetectOnRequest:
    def test_foreign_request_reveals_loss(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent.receive(rqst("r2", 7))
        assert 7 in agent.request_states
        # scheduled already backed off (suppressed by the heard request)
        assert agent.request_states[7].backoff == 1
        # the request also reveals packets 0..6 are missing (gap detection)
        assert world.metrics.losses_detected["r1"] == 8
        assert agent.request_states[0].backoff == 0  # normal first round

    def test_disabled_flag_ignores_foreign_request(self):
        world = make_world(detect_on_request=False)
        world.run_warmup()
        agent = world.agents["r1"]
        agent.receive(rqst("r2", 7))
        assert 7 not in agent.request_states

    def test_request_also_advances_stream_knowledge(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent.receive(rqst("r2", 3))
        # packets 0..2 are also revealed missing
        assert set(agent.request_states) == {0, 1, 2, 3}


class TestReplyScheduling:
    def test_reply_fires_within_d1_d2_interval(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        # r1 loses a packet; r2 (2 hops away) can repair
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        requests = world.metrics.sends_of(PacketKind.RQST, host="r1")
        replies = world.metrics.sends_of(PacketKind.REPL)
        assert requests and replies
        # whoever replied, its delay from hearing the request respects
        # [D1 d', (D1+D2) d'] for its own distance d' — verified loosely:
        # the earliest possible reply is D1*min_dist after the request
        # reaches the nearest replier.
        t_request = requests[0][0]
        t_reply = replies[0][0]
        assert t_reply >= t_request + 2 * D + 1.0 * (2 * D) - 1e-9

    def test_duplicate_requests_within_abstinence_ignored(self):
        world = make_world()
        world.run_warmup()
        source = world.agents["s"]
        source.send_data(0)
        world.run(extra=0.5)
        source.receive(rqst("r1", 0))
        world.run(extra=0.5)  # reply fires
        replies = world.metrics.sends_of(PacketKind.REPL, host="s")
        assert len(replies) == 1
        source.receive(rqst("r2", 0))  # within D3·d' hold
        world.run(extra=0.05)
        assert len(world.metrics.sends_of(PacketKind.REPL, host="s")) == 1

    def test_new_request_after_abstinence_answered(self):
        world = make_world()
        world.run_warmup()
        source = world.agents["s"]
        source.send_data(0)
        world.run(extra=0.5)
        source.receive(rqst("r1", 0))
        world.run(extra=0.5)
        state = source.reply_states[0]
        assert not state.pending(world.sim.now)  # hold expired during run
        source.receive(rqst("r2", 0))
        world.run(extra=0.5)
        assert len(world.metrics.sends_of(PacketKind.REPL, host="s")) == 2

    def test_hearing_reply_cancels_scheduled_reply(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        agent = world.agents["r2"]
        world.agents["s"].send_data(0)
        world.run(extra=0.5)
        agent.receive(rqst("r1", 0))
        assert agent.reply_states[0].scheduled()
        agent.receive(repl("r3", 0))
        assert not agent.reply_states[0].scheduled()
        assert agent.reply_states[0].pending(world.sim.now)

    def test_replier_without_packet_does_not_reply(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]  # r1 never received packet 0
        agent.receive(rqst("r2", 0))
        world.run(extra=5.0)
        assert world.metrics.sends_of(PacketKind.REPL, host="r1") == []


class TestRecovery:
    def test_loss_recovered_and_latency_recorded(self):
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        records = world.metrics.recoveries["r1"]
        assert len(records) == 1
        record = records[0]
        assert record.seq == 1
        assert not record.expedited
        d_hs = 2 * D
        # latency >= first-round minimum: C1·d (request) + d + D1·d' + d'
        assert record.latency >= 2 * d_hs + d_hs / 2
        # and below the analytic first-round cap plus serialization slack
        cap = 4 * d_hs + 2 * d_hs + 2 * (2 * D) + 6 * TX
        assert record.latency <= cap

    def test_recovery_via_reply_marks_received(self):
        world = make_world()
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        assert world.agents["r1"].stream.has(1)
        assert 1 in world.agents["r1"].stream.ever_lost
        assert world.agents["r1"].unrecovered_losses() == []

    def test_duplicate_reply_counted(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        world.agents["s"].send_data(0)
        world.run(extra=0.5)
        agent.receive(repl("s", 0))
        assert world.metrics.duplicate_replies["r1"] == 1

    def test_undetected_recovery(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent.receive(repl("s", 5))
        assert agent.stream.has(5)
        assert world.metrics.undetected_recoveries["r1"] == 1
        assert 5 in agent.stream.ever_lost

    def test_late_data_arrival_cancels_request(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent._detect_loss(3)
        assert 3 in agent.request_states
        packet = Packet(
            kind=PacketKind.DATA,
            origin="s",
            source="s",
            seqno=3,
            size_bytes=PAYLOAD_BYTES,
        )
        agent.receive(packet)
        assert 3 not in agent.request_states
        assert world.metrics.late_arrivals["r1"] == 1

    def test_unrecoverable_loss_reported(self):
        world = make_world()
        world.run_warmup()
        base_drop = {1: {("x1", "r1")}}

        def drop_fn(u, v, packet):
            if packet.kind is PacketKind.DATA:
                return (u, v) in base_drop.get(packet.seqno, ())
            return packet.kind in (PacketKind.RQST, PacketKind.REPL)

        world.send_packets(3, drop=base_drop)
        world.network.drop_fn = drop_fn
        world.run(extra=20.0)
        assert world.agents["r1"].unrecovered_losses() == [1]

    def test_all_losses_recovered_in_lossless_recovery(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        drop = {
            1: {("x0", "x1")},
            2: {("x1", "r1")},
            4: {("x2", "r3"), ("x1", "r2")},
            5: {("s", "x0")},
        }
        world.send_packets(8, drop=drop)
        world.run(extra=30.0)
        for receiver in world.tree.receivers:
            assert world.agents[receiver].unrecovered_losses() == []
            for seq in range(8):
                assert world.agents[receiver].stream.has(seq)


class TestLifecycle:
    def test_stop_cancels_pending_timers(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        agent._detect_loss(3)
        agent.stop()
        assert not agent.request_states[3].timer.armed
        before = len(world.metrics.sends_of(PacketKind.RQST, host="r1"))
        world.run(extra=10.0)
        assert len(world.metrics.sends_of(PacketKind.RQST, host="r1")) == before

    def test_any_host_may_source_its_own_stream(self):
        """SRM is an any-source protocol: a receiver may send data of its
        own stream; other hosts track it under that host's source id."""
        world = make_world()
        world.run_warmup()
        world.agents["r1"].send_data(0)
        world.run(extra=0.5)
        assert world.agents["r2"].source_state("r1").stream.has(0)
        assert world.agents["s"].source_state("r1").stream.has(0)
        # the primary-source stream is unaffected
        assert not world.agents["r2"].stream.has(0)

    def test_duplicate_data_counted(self):
        world = make_world()
        world.run_warmup()
        agent = world.agents["r1"]
        packet = Packet(
            kind=PacketKind.DATA,
            origin="s",
            source="s",
            seqno=0,
            size_bytes=PAYLOAD_BYTES,
        )
        agent.receive(packet)
        agent.receive(packet)
        assert agent.stream.duplicates == 1
