"""Tests for the pluggable protocol registry (repro.harness.registry)."""

import warnings

import pytest

from repro.harness.config import SimulationConfig
from repro.harness.registry import (
    ProtocolSpec,
    all_specs,
    available_protocols,
    get_spec,
    register,
    unregister,
)
from repro.harness.runner import build_simulation, run_trace
from repro.srm.agent import SrmAgent
from repro.traces.synthesize import SynthesisParams, synthesize_trace


def small_synthetic(n_packets=60, target=25, seed=2):
    params = SynthesisParams(
        name="registry",
        n_receivers=4,
        tree_depth=3,
        period=0.04,
        n_packets=n_packets,
        target_losses=target,
    )
    return synthesize_trace(params, seed=seed)


class TestBuiltinRegistry:
    def test_ships_all_protocols_in_paper_order(self):
        assert available_protocols() == (
            "srm",
            "srm-adaptive",
            "cesrm",
            "cesrm-router",
            "lms",
            "rmtp",
        )

    def test_every_builtin_runs_end_to_end(self):
        synthetic = small_synthetic()
        for name in available_protocols():
            result = run_trace(synthetic, name, SimulationConfig())
            assert result.protocol == name
            assert result.unrecovered_losses == 0, name

    def test_specs_carry_descriptions(self):
        for spec in all_specs():
            assert spec.description

    def test_get_spec_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="srm"):
            get_spec("tcp")

    def test_fabric_only_where_expected(self):
        assert get_spec("lms").fabric_factory is not None
        assert get_spec("rmtp").fabric_factory is not None
        assert get_spec("srm").fabric_factory is None
        assert get_spec("cesrm").fabric_factory is None

    def test_cesrm_kwargs_derive_from_config(self):
        config = SimulationConfig(cache_capacity=4, reorder_delay=0.01)
        kwargs = get_spec("cesrm").extra_agent_kwargs(config)
        assert kwargs["cache_capacity"] == 4
        assert kwargs["reorder_delay"] == 0.01
        assert get_spec("srm").extra_agent_kwargs(config) == {}


class TestRunnerIsProtocolAgnostic:
    def test_runner_source_has_no_protocol_name_literals(self):
        """The runner must dispatch through specs, never on protocol names."""
        import inspect

        from repro.harness import runner

        source = inspect.getsource(runner)
        for name in available_protocols():
            assert f'"{name}"' not in source
            assert f"'{name}'" not in source


class TestPluggability:
    def test_register_and_run_a_custom_protocol(self):
        class QuietSrm(SrmAgent):
            pass

        register(ProtocolSpec(name="quiet-srm", agent_cls=QuietSrm))
        try:
            assert "quiet-srm" in available_protocols()
            simulation = build_simulation(
                small_synthetic(), "quiet-srm", SimulationConfig()
            )
            assert all(isinstance(a, QuietSrm) for a in simulation.agents.values())
        finally:
            unregister("quiet-srm")
        assert "quiet-srm" not in available_protocols()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(ProtocolSpec(name="srm", agent_cls=SrmAgent))

    def test_replace_allows_test_doubles(self):
        original = get_spec("srm")
        register(ProtocolSpec(name="srm", agent_cls=SrmAgent), replace=True)
        try:
            assert get_spec("srm").agent_cls is SrmAgent
        finally:
            register(original, replace=True)


@pytest.mark.filterwarnings("default::DeprecationWarning")
class TestDeprecatedShim:
    """The shims are *supposed* to warn: opt out of the suite-wide
    ``error::DeprecationWarning`` so the warning can be asserted on."""

    def test_config_protocols_warns_and_matches_registry(self):
        from repro.harness import config

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = config.PROTOCOLS
        assert value == available_protocols()
        assert any(w.category is DeprecationWarning for w in caught)

    def test_package_level_shims_forward(self):
        import repro
        import repro.harness

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.PROTOCOLS == available_protocols()
            assert repro.harness.PROTOCOLS == available_protocols()

    def test_unknown_attribute_still_raises(self):
        from repro.harness import config

        with pytest.raises(AttributeError):
            config.NOT_A_THING
