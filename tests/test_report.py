"""Tests for the ASCII report renderers."""

from repro.harness.config import SimulationConfig
from repro.harness.report import (
    bar,
    render_recovery_timeline,
    render_table,
)
from repro.harness.runner import run_trace

from tests.helpers import make_synthetic, two_subtrees


class TestPrimitives:
    def test_render_table_alignment(self):
        text = render_table(["A", "Blong"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "Blong" in lines[0]
        # all rows padded to the same width
        assert len(set(map(len, lines[:2]))) == 1

    def test_cell_formatting(self):
        text = render_table(["v"], [[1.23456], [None], ["s"]])
        assert "1.23" in text
        assert "-" in text
        assert "s" in text

    def test_bar_proportionality(self):
        assert bar(5, 10, width=10) == "#" * 5
        assert bar(10, 10, width=10) == "#" * 10
        assert bar(0, 10, width=10) == ""
        assert bar(1, 0) == ""

    def test_bar_clamps_overflow(self):
        assert bar(20, 10, width=10) == "#" * 10


class TestTimeline:
    def result(self):
        combos = {
            1: frozenset({("x0", "x1")}),
            3: frozenset({("x1", "r1")}),
            5: frozenset({("x0", "x1")}),
        }
        synthetic = make_synthetic(
            two_subtrees(), n_packets=8, period=0.3, combos=combos
        )
        return run_trace(synthetic, "cesrm", SimulationConfig())

    def test_timeline_lists_recovered_packets(self):
        result = self.result()
        text = render_recovery_timeline(result, "r1")
        assert "pkt      1" in text
        assert "pkt      3" in text
        assert "pkt      5" in text
        assert "RTT" in text

    def test_timeline_marks_expedited(self):
        result = self.result()
        text = render_recovery_timeline(result, "r1")
        # the cold-cache first loss used SRM, a later one was expedited
        assert "." in text
        assert "E" in text

    def test_timeline_empty_receiver(self):
        result = self.result()
        assert "no recoveries" in render_recovery_timeline(result, "r4")

    def test_timeline_row_cap(self):
        result = self.result()
        text = render_recovery_timeline(result, "r1", max_rows=1)
        assert text.count("pkt ") == 1
