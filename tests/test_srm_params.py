"""Tests for SRM scheduling constants."""

import pytest

from repro.srm.constants import SrmParams


def test_paper_defaults():
    params = SrmParams()
    assert params.c1 == 2.0
    assert params.c2 == 2.0
    assert params.c3 == 1.5
    assert params.d1 == 1.0
    assert params.d2 == 1.0
    assert params.d3 == 1.5


def test_request_interval_round_zero():
    lo, hi = SrmParams().request_interval(distance=0.1, backoff=0)
    assert lo == pytest.approx(0.2)  # C1 * d
    assert hi == pytest.approx(0.4)  # (C1 + C2) * d


def test_request_interval_doubles_per_backoff():
    params = SrmParams()
    for k in range(5):
        lo, hi = params.request_interval(0.1, k)
        assert lo == pytest.approx((2**k) * 0.2)
        assert hi == pytest.approx((2**k) * 0.4)


def test_request_interval_backoff_capped():
    params = SrmParams(max_backoff=4)
    assert params.request_interval(0.1, 100) == params.request_interval(0.1, 4)


def test_reply_interval():
    lo, hi = SrmParams().reply_interval(distance=0.2)
    assert lo == pytest.approx(0.2)  # D1 * d'
    assert hi == pytest.approx(0.4)  # (D1 + D2) * d'


def test_backoff_abstinence():
    params = SrmParams()
    assert params.backoff_abstinence(0.1, 0) == pytest.approx(0.15)  # C3 * d
    assert params.backoff_abstinence(0.1, 2) == pytest.approx(0.6)  # 4 * C3 * d


def test_reply_abstinence():
    assert SrmParams().reply_abstinence(0.2) == pytest.approx(0.3)  # D3 * d'


def test_negative_constants_rejected():
    with pytest.raises(ValueError):
        SrmParams(c1=-1.0)
    with pytest.raises(ValueError):
        SrmParams(d3=-0.5)


def test_default_distance_positive():
    with pytest.raises(ValueError):
        SrmParams(default_distance=0.0)


def test_max_backoff_at_least_one():
    with pytest.raises(ValueError):
        SrmParams(max_backoff=0)


def test_custom_parameters_flow_through():
    params = SrmParams(c1=1.0, c2=4.0, d1=0.5, d2=2.0)
    lo, hi = params.request_interval(0.1, 0)
    assert (lo, hi) == (pytest.approx(0.1), pytest.approx(0.5))
    lo, hi = params.reply_interval(0.1)
    assert (lo, hi) == (pytest.approx(0.05), pytest.approx(0.25))
