"""The scale layer's memory and session shortcuts.

Covers the three pieces that take runs from 10^3 to 10^5+ receivers:

* :class:`~repro.srm.state.SeqSet` — the bitmap replacing per-stream
  ``set[int]`` reception state;
* ``__slots__`` on the per-receiver hot-state records;
* ``SimulationConfig.prime_distances`` — the analytic
  :class:`~repro.srm.session.TreeDistanceOracle` replacing the O(n^2)
  simulated session exchange, with the default path byte-identical.
"""

import pytest

from repro.exec.summary import config_from_dict, config_to_dict
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.net.topology import build_balanced_tree
from repro.srm.session import DistanceEstimator, TreeDistanceOracle
from repro.srm.state import ReplyState, SeqSet, StreamState
from repro.workloads.topology import synthesize_topology_trace


class TestSeqSet:
    def test_set_semantics(self):
        s = SeqSet()
        assert not s and len(s) == 0
        s.add(0)
        s.add(17)
        s.add(17)  # idempotent
        assert s and len(s) == 2
        assert 0 in s and 17 in s
        assert 1 not in s and 1000 not in s

    def test_negative_lookups_false_negative_adds_raise(self):
        s = SeqSet([3])
        assert -1 not in s
        with pytest.raises(ValueError):
            s.add(-1)

    def test_iteration_is_ascending(self):
        s = SeqSet([900, 0, 64, 7, 63])
        assert list(s) == [0, 7, 63, 64, 900]
        assert max(s) == 900
        assert sorted(s) == list(s)

    def test_equality_with_sets_and_seqsets(self):
        s = SeqSet([1, 5, 9])
        assert s == {1, 5, 9}
        assert s == SeqSet([9, 5, 1])
        assert s != {1, 5}
        assert s != SeqSet([1, 5, 8])

    def test_right_hand_set_difference(self):
        # the invariant monitor computes set(request_states) - ever_lost
        assert {1, 2, 3} - SeqSet([2]) == {1, 3}

    def test_constructor_seeds(self):
        assert SeqSet(range(10)) == set(range(10))


class TestSlots:
    def test_hot_state_records_reject_stray_attributes(self):
        stream = StreamState()
        with pytest.raises((AttributeError, TypeError)):
            stream.scratch = 1
        reply = ReplyState()
        with pytest.raises((AttributeError, TypeError)):
            reply.scratch = 1

    def test_stream_state_uses_seqset(self):
        stream = StreamState()
        assert isinstance(stream.received, SeqSet)
        assert isinstance(stream.ever_lost, SeqSet)


class TestOracle:
    def test_distance_is_hops_times_delay(self):
        tree = build_balanced_tree(branching=2, depth=3)
        oracle = TreeDistanceOracle(tree, propagation_delay=0.020)
        index = tree.index
        for a, b in (("r1", "r2"), ("r1", "r8"), ("s", "r1"), ("r3", "r3")):
            hops = index.hop_distance_int(index.ids[a], index.ids[b])
            assert oracle.distance(a, b) == pytest.approx(hops * 0.020)

    def test_primed_estimator_prefers_learned_estimates(self):
        tree = build_balanced_tree(branching=2, depth=2)
        estimator = DistanceEstimator("r1")
        oracle = TreeDistanceOracle(tree, propagation_delay=0.020)
        estimator.prime(oracle)
        # never heard from r2: analytic fallback, not the default
        assert estimator.get_or("r2", 99.0) == pytest.approx(
            oracle.distance("r1", "r2")
        )
        # a session-learned estimate wins over the oracle
        estimator._estimates["r2"] = 0.123
        assert estimator.get_or("r2", 99.0) == 0.123

    def test_unprimed_estimator_keeps_bound_dict_get(self):
        estimator = DistanceEstimator("r1")
        assert estimator.get_or == estimator._estimates.get
        assert estimator.get_or("r2", 7.5) == 7.5


class TestPrimeDistancesMode:
    SPEC = "transit_stub:transits=2,stubs=2,hosts=3,packets=120,loss=0.03"

    def test_primed_run_recovers_without_sessions(self):
        trace = synthesize_topology_trace(self.SPEC, seed=2, max_packets=120)
        config = SimulationConfig(max_packets=120, prime_distances=True)
        result = run_trace(trace, "cesrm", config)
        assert result.total_losses > 0
        recovered = sum(len(v) for v in result.metrics.recoveries.values())
        assert recovered == result.total_losses  # full recovery, no sessions
        from repro.net.packet import PacketKind

        session_sends = [
            row for (host, kind, cast), row in result.metrics.sends.items()
            if kind is PacketKind.SESSION
        ]
        assert not session_sends

    def test_flag_folds_out_of_default_configs(self):
        data = config_to_dict(SimulationConfig())
        assert "prime_distances" not in data
        assert not config_from_dict(data).prime_distances
        primed = config_to_dict(SimulationConfig(prime_distances=True))
        assert primed["prime_distances"] is True
        assert config_from_dict(primed).prime_distances
