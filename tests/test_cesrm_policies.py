"""Tests for expeditious-pair selection policies (§3.2)."""

import pytest

from repro.core.cachelab import RecoveryPairCache, RecoveryTuple
from repro.core.policies import (
    MostFrequentLossPolicy,
    MostRecentLossPolicy,
    SelectionPolicy,
    make_policy,
    policy_names,
    register_policy,
)


def tup(seq, q="q", r="r", d_qs=0.1, d_rq=0.05):
    return RecoveryTuple(seq, q, d_qs, r, d_rq)


class TestMostRecent:
    def test_selects_highest_seq(self):
        cache = RecoveryPairCache()
        cache.observe(tup(1, q="old"))
        cache.observe(tup(9, q="new"))
        cache.observe(tup(5, q="mid"))
        assert MostRecentLossPolicy().select(cache).requestor == "new"

    def test_empty_cache(self):
        assert MostRecentLossPolicy().select(RecoveryPairCache()) is None


class TestMostFrequent:
    def test_selects_most_frequent_pair(self):
        cache = RecoveryPairCache(capacity=8)
        cache.observe(tup(1, q="a", r="x"))
        cache.observe(tup(2, q="a", r="x"))
        cache.observe(tup(3, q="b", r="y"))
        choice = MostFrequentLossPolicy().select(cache)
        assert choice.pair == ("a", "x")

    def test_tie_breaks_toward_recency(self):
        cache = RecoveryPairCache(capacity=8)
        cache.observe(tup(1, q="a", r="x"))
        cache.observe(tup(2, q="b", r="y"))  # tie 1-1; b is more recent
        choice = MostFrequentLossPolicy().select(cache)
        assert choice.pair == ("b", "y")

    def test_returns_most_recent_tuple_of_winning_pair(self):
        cache = RecoveryPairCache(capacity=8)
        cache.observe(tup(1, q="a", r="x", d_rq=0.5))
        cache.observe(tup(7, q="a", r="x", d_rq=0.1))
        choice = MostFrequentLossPolicy().select(cache)
        assert choice.seqno == 7

    def test_empty_cache(self):
        assert MostFrequentLossPolicy().select(RecoveryPairCache()) is None


class TestRegistry:
    def test_builtin_names(self):
        assert "most-recent" in policy_names()
        assert "most-frequent" in policy_names()

    def test_make_policy(self):
        assert isinstance(make_policy("most-recent"), MostRecentLossPolicy)
        assert isinstance(make_policy("most-frequent"), MostFrequentLossPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("nope")

    def test_register_custom_policy(self):
        @register_policy
        class OldestPolicy(SelectionPolicy):
            name = "test-oldest"

            def select(self, cache):
                entries = cache.entries()
                return entries[-1] if entries else None

        try:
            policy = make_policy("test-oldest")
            cache = RecoveryPairCache()
            cache.observe(tup(3, q="new"))
            cache.observe(tup(1, q="old"))
            assert policy.select(cache).requestor == "old"
        finally:
            from repro.core.policies import unregister_policy

            unregister_policy("test-oldest")

    def test_register_requires_name(self):
        with pytest.raises(ValueError):

            @register_policy
            class Nameless(SelectionPolicy):
                name = "abstract"

                def select(self, cache):
                    return None
