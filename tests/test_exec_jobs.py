"""RunJob digests: stable, spec-sensitive, and fingerprint-sensitive."""

import pytest

from repro.exec.jobs import RunJob, source_fingerprint
from repro.faults import FaultPlan, NodeCrash, PacketDuplicate
from repro.harness.config import SimulationConfig

CFG = SimulationConfig(seed=0, max_packets=200)
CRASH_PLAN = FaultPlan(events=(NodeCrash(host="r1", at=5.0),))


def job(**overrides) -> RunJob:
    base = dict(
        trace="WRN951113",
        protocol="cesrm",
        config=CFG,
        trace_seed=0,
        trace_max_packets=200,
    )
    base.update(overrides)
    return RunJob(**base)


class TestKey:
    def test_stable_across_constructions(self):
        assert job().key() == job().key()

    def test_differs_by_trace(self):
        assert job().key() != job(trace="WRN951216").key()

    def test_differs_by_protocol(self):
        assert job().key() != job(protocol="srm").key()

    def test_differs_by_config(self):
        assert job().key() != job(config=CFG.with_(seed=1)).key()
        assert job().key() != job(config=CFG.with_(cache_capacity=1)).key()
        assert (
            job().key()
            != job(config=CFG.with_(policy="most-frequent")).key()
        )

    def test_differs_by_kernel(self):
        assert job().key() != job(config=CFG.with_(kernel="vector")).key()

    def test_default_kernel_matches_pre_v2_key(self):
        # selecting the python kernel explicitly must not perturb the
        # cache key of runs executed before the kernel axis existed
        assert job().key() == job(config=CFG.with_(kernel="python")).key()

    def test_differs_by_trace_shape(self):
        assert job().key() != job(trace_max_packets=300).key()
        assert job().key() != job(trace_seed=1).key()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            job(protocol="nope")

    def test_differs_by_fault_plan(self):
        assert job().key() != job(faults=CRASH_PLAN).key()
        other = FaultPlan(events=(PacketDuplicate(rate=0.1),))
        assert job(faults=CRASH_PLAN).key() != job(faults=other).key()

    def test_empty_plan_matches_fault_free_key(self):
        # an empty plan must not perturb the cache key of existing runs
        assert job().key() == job(faults=FaultPlan()).key()

    def test_differs_by_workload(self):
        assert job().key() != job(workload="zipf:alpha=1.1").key()
        assert (
            job(workload="zipf:alpha=1.1").key()
            != job(workload="poisson").key()
        )

    def test_empty_workload_matches_legacy_key(self):
        # the default workload must not perturb pre-workload cache keys
        assert job().key() == job(workload="").key()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            job(workload="nope:x=1")

    def test_malformed_workload_rejected(self):
        with pytest.raises(ValueError):
            job(workload="zipf:")


class TestDigest:
    def test_folds_in_fingerprint(self):
        assert job().digest("aaa") != job().digest("bbb")
        assert job().digest("aaa") == job().digest("aaa")

    def test_distinct_from_key(self):
        assert job().digest("aaa") != job().key()


class TestSerialization:
    def test_round_trip(self):
        original = job(config=CFG.with_(lossy_recovery=True, verify_period=0.5))
        restored = RunJob.from_dict(original.to_dict())
        assert restored == original
        assert restored.key() == original.key()

    def test_fault_free_dict_omits_faults(self):
        assert "faults" not in job().to_dict()
        assert "faults" not in job(faults=FaultPlan()).to_dict()

    def test_faulted_round_trip(self):
        original = job(faults=CRASH_PLAN)
        data = original.to_dict()
        assert data["faults"] == CRASH_PLAN.to_dict()
        restored = RunJob.from_dict(data)
        assert restored == original
        assert restored.faults == CRASH_PLAN

    def test_default_dict_omits_workload(self):
        # the wire format of pre-workload jobs is preserved byte for byte
        assert "workload" not in job().to_dict()

    def test_workload_round_trip(self):
        original = job(workload="zipf:alpha=1.1,objects=32")
        data = original.to_dict()
        assert data["workload"] == "zipf:alpha=1.1,objects=32"
        restored = RunJob.from_dict(data)
        assert restored == original
        assert restored.key() == original.key()

    def test_pre_workload_dict_still_decodes(self):
        """Wire-format versioning: entries serialized before the workload
        field existed (no ``workload`` key) decode to the default."""
        data = job().to_dict()
        assert "workload" not in data  # genuinely the old shape
        restored = RunJob.from_dict(data)
        assert restored.workload == ""
        assert restored == job()


class TestSourceFingerprint:
    def test_tracks_file_content(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        first = source_fingerprint(str(tmp_path))
        source_fingerprint.cache_clear()
        (tmp_path / "a.py").write_text("x = 2\n")
        assert source_fingerprint(str(tmp_path)) != first

    def test_tracks_new_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        first = source_fingerprint(str(tmp_path))
        source_fingerprint.cache_clear()
        (tmp_path / "b.py").write_text("y = 1\n")
        assert source_fingerprint(str(tmp_path)) != first

    def test_default_tree_is_stable(self):
        assert source_fingerprint() == source_fingerprint()
