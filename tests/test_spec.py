"""Tests for the runtime invariant monitor (repro.spec)."""

import pytest
from hypothesis import given, settings

from repro.spec.invariants import ALL_INVARIANTS
from repro.spec.monitor import InvariantMonitor, InvariantViolation
from repro.srm.state import RequestState
from repro.sim.timers import Timer

from tests.helpers import make_world, two_subtrees
from tests.test_protocol_properties import scenario, TREE, N_PACKETS


def run_monitored(protocol: str, drop, periods: int = 3, n: int = 6):
    world = make_world(tree=two_subtrees(), protocol=protocol)
    monitor = InvariantMonitor(world.sim, world.agents, period=0.02)
    monitor.start()
    world.run_warmup()
    world.send_packets(n, period=0.2, drop=drop)
    world.run(extra=30.0)
    return world, monitor


class TestCleanRunsHold:
    def test_srm_invariants_hold(self):
        _, monitor = run_monitored("srm", drop={1: {("x0", "x1")}})
        assert monitor.checks_run > 100

    def test_cesrm_invariants_hold(self):
        _, monitor = run_monitored(
            "cesrm", drop={1: {("x0", "x1")}, 3: {("x1", "r1")}}
        )
        assert monitor.checks_run > 100

    def test_router_assist_invariants_hold(self):
        _, monitor = run_monitored("cesrm-router", drop={2: {("x2", "r3")}})
        assert monitor.checks_run > 100

    def test_churned_run_holds(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        monitor = InvariantMonitor(world.sim, world.agents, period=0.02)
        monitor.start()
        world.run_warmup()
        world.sim.schedule(0.5, world.agents["r3"].fail)
        world.send_packets(5, period=0.3, drop={1: {("x0", "x1")}})
        world.run(extra=20.0)
        assert monitor.checks_run > 0


class TestViolationsAreCaught:
    def test_request_state_for_received_packet(self):
        world = make_world(tree=two_subtrees())
        monitor = InvariantMonitor(world.sim, world.agents, period=0.05)
        world.run_warmup()
        agent = world.agents["r1"]
        # corrupt: pretend a received packet is still under recovery
        agent.stream.received.add(9)
        agent.stream.max_seq = 9
        agent.request_states[9] = RequestState(
            timer=Timer(world.sim, lambda: None), detected_at=0.0
        )
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.check_now()
        assert excinfo.value.invariant == "request-iff-missing"

    def test_received_beyond_max(self):
        world = make_world(tree=two_subtrees())
        monitor = InvariantMonitor(world.sim, world.agents, period=0.05)
        agent = world.agents["r1"]
        agent.stream.received.add(50)  # max_seq stays -1
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.check_now()
        assert excinfo.value.invariant == "received-within-max"

    def test_cache_entry_for_never_lost_packet(self):
        from repro.core.cachelab import RecoveryTuple

        world = make_world(tree=two_subtrees(), protocol="cesrm")
        monitor = InvariantMonitor(world.sim, world.agents, period=0.05)
        agent = world.agents["r1"]
        agent.cache.observe(RecoveryTuple(3, "r2", 0.06, "r3", 0.08))
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.check_now()
        assert excinfo.value.invariant == "cache-packets-were-lost"

    def test_failed_host_with_armed_timer(self):
        world = make_world(tree=two_subtrees())
        monitor = InvariantMonitor(world.sim, world.agents, period=0.05)
        world.run_warmup()
        agent = world.agents["r1"]
        agent._detect_loss(2)
        agent.failed = True  # crash without the proper fail() cleanup
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.check_now()
        assert excinfo.value.invariant == "failed-is-silent"

    def test_violation_carries_time(self):
        world = make_world(tree=two_subtrees())
        monitor = InvariantMonitor(world.sim, world.agents, period=0.05)
        world.run_warmup()
        world.agents["r1"].stream.received.add(50)
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.check_now()
        assert excinfo.value.time == world.sim.now


class TestMonitoredFuzz:
    @given(combos=scenario())
    @settings(max_examples=6, deadline=None)
    def test_cesrm_fuzz_under_monitor(self, combos):
        """Random loss scenarios never break an invariant."""
        from repro.harness.config import SimulationConfig
        from repro.harness.runner import build_simulation
        from tests.helpers import make_synthetic

        synthetic = make_synthetic(TREE, n_packets=N_PACKETS, period=0.08, combos=combos)
        simulation = build_simulation(synthetic, "cesrm", SimulationConfig())
        monitor = InvariantMonitor(simulation.sim, simulation.agents, period=0.05)
        monitor.start()
        simulation.sim.run(until=simulation.end_time)
        assert monitor.checks_run > 0


def test_all_invariants_have_unique_names():
    names = [inv.name for inv in ALL_INVARIANTS]
    assert len(names) == len(set(names))
    assert len(names) >= 9
