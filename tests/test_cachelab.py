"""The recovery-cache laboratory: policy semantics, the registry, and
spec-string compilation (`repro.core.cachelab`), plus the fault-plan spec
strings that share the grammar."""

import pytest

from repro.core.cachelab import (
    CacheError,
    CachePolicy,
    CachePolicySpec,
    LfuCache,
    LruCache,
    ProbabilisticCache,
    RecoveryPairCache,
    RecoveryTuple,
    TtlCache,
    UnboundedCache,
    all_cache_policy_specs,
    cache_policy_names,
    compile_cache_policy,
    get_cache_policy_spec,
    make_cache_policy,
    register_cache_policy,
    unregister_cache_policy,
)
from repro.core.policies import MostRecentLossPolicy
from repro.faults import (
    FaultSpecError,
    LinkDown,
    NodeCrash,
    compile_fault_plan,
    is_fault_spec,
    parse_fault_event,
)


def tup(seqno, q="q", d_qs=1.0, r="r", d_rq=0.5):
    return RecoveryTuple(seqno, q, d_qs, r, d_rq)


class TestPaperEquivalence:
    """`paper` must reproduce the legacy RecoveryPairCache decision
    sequence exactly — the lookup/observe template is only bookkeeping."""

    def test_paper_is_the_legacy_class(self):
        cache = make_cache_policy("paper:capacity=4")
        assert isinstance(cache, RecoveryPairCache)
        assert cache.capacity == 4

    def test_decision_sequence_matches_legacy(self):
        lab = make_cache_policy("paper:capacity=2")
        legacy = RecoveryPairCache(capacity=2)
        sequence = [
            tup(3),
            tup(5),
            tup(3, d_rq=0.1),  # improve
            tup(3, d_rq=0.9),  # noop (worse)
            tup(7),  # evict 3
            tup(1),  # reject (older than everything)
            tup(9),  # evict 5
        ]
        for cand in sequence:
            assert lab.observe(cand) == legacy.observe(cand)
        assert [e.seqno for e in lab.entries()] == [
            e.seqno for e in legacy.entries()
        ]
        assert (lab.inserts, lab.improvements, lab.rejects) == (
            legacy.inserts,
            legacy.improvements,
            legacy.rejects,
        )

    def test_lookup_is_select_plus_counters(self):
        cache = make_cache_policy("paper:capacity=4")
        policy = MostRecentLossPolicy()
        assert cache.lookup(policy) is None
        cache.observe(tup(3))
        choice = cache.lookup(policy)
        assert choice is policy.select(cache)
        assert (cache.lookups, cache.hits) == (2, 1)
        assert cache.stats()["hit_rate"] == 0.5

    def test_evictions_counter_is_replier_only(self):
        """Fault stats sum `.evictions` by attribute name: capacity churn
        must not leak into it."""
        cache = make_cache_policy("paper:capacity=1")
        cache.observe(tup(1, r="a"))
        cache.observe(tup(2, r="b"))  # capacity-evicts seqno 1
        assert cache.evictions == 0
        assert cache.capacity_evictions == 1
        assert cache.evict_replier("b") == 1
        assert cache.evictions == 1


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = LruCache(capacity=2)
        cache.observe(tup(1))
        cache.observe(tup(2))
        cache.observe(tup(1, d_rq=0.1))  # touch 1 (improve)
        cache.observe(tup(3))  # 2 is LRU
        assert sorted(s.seqno for s in cache.entries()) == [1, 3]

    def test_selection_counts_as_use(self):
        cache = LruCache(capacity=2)
        cache.observe(tup(1))
        cache.observe(tup(2))
        # most-recent selects seqno 2; 1 stays LRU
        cache.lookup(MostRecentLossPolicy())
        cache.observe(tup(3))
        assert sorted(s.seqno for s in cache.entries()) == [2, 3]

    def test_admits_old_candidates(self):
        """Unlike `paper`, LRU has no reject path for stale seqnos."""
        cache = LruCache(capacity=1)
        cache.observe(tup(5))
        assert cache.observe(tup(1)) is True
        assert [e.seqno for e in cache.entries()] == [1]


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(capacity=2)
        cache.observe(tup(1))
        cache.observe(tup(1, d_rq=0.4))
        cache.observe(tup(1, d_rq=0.3))  # freq(1) = 3
        cache.observe(tup(2))  # freq(2) = 1
        cache.observe(tup(3))  # evicts 2
        assert sorted(s.seqno for s in cache.entries()) == [1, 3]

    def test_ties_break_toward_oldest(self):
        cache = LfuCache(capacity=2)
        cache.observe(tup(4))
        cache.observe(tup(2))  # same freq; 2 is older
        cache.observe(tup(9))
        assert sorted(s.seqno for s in cache.entries()) == [4, 9]


class TestTtl:
    def test_expires_untouched_entries(self):
        cache = TtlCache(capacity=4, ttl=10.0)
        cache.observe(tup(1), now=0.0)
        cache.observe(tup(2), now=5.0)
        cache.observe(tup(3), now=11.0)  # deadline(1) = 10 <= 11
        assert sorted(s.seqno for s in cache.entries()) == [2, 3]
        assert cache.expirations == 1

    def test_touch_extends_the_deadline(self):
        cache = TtlCache(capacity=4, ttl=10.0)
        cache.observe(tup(1), now=0.0)
        cache.observe(tup(1, d_rq=0.1), now=8.0)  # improve touches
        cache.observe(tup(2), now=12.0)
        assert sorted(s.seqno for s in cache.entries()) == [1, 2]

    def test_lookup_expires_too(self):
        cache = TtlCache(capacity=4, ttl=1.0)
        cache.observe(tup(1), now=0.0)
        assert cache.lookup(MostRecentLossPolicy(), now=5.0) is None
        assert len(cache) == 0

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError, match="ttl must be > 0"):
            TtlCache(ttl=0.0)


class TestProb:
    def test_p1_always_admits(self):
        cache = ProbabilisticCache(capacity=4, p=1.0, seed=0)
        for s in range(4):
            assert cache.observe(tup(s)) is True
        assert cache.rejects == 0

    def test_p0_rejects_new_but_improves_existing(self):
        cache = ProbabilisticCache(capacity=4, p=1.0, seed=0)
        cache.observe(tup(1))
        cache.p = 0.0
        assert cache.observe(tup(2)) is False
        assert cache.rejects == 1
        assert cache.observe(tup(1, d_rq=0.1)) is True  # improvement
        assert cache.improvements == 1

    def test_admission_is_seed_deterministic(self):
        def outcomes(seed):
            c = ProbabilisticCache(capacity=64, p=0.5, seed=seed)
            return [c.observe(tup(s)) for s in range(32)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)

    def test_p_range_validated(self):
        with pytest.raises(ValueError, match="p must be in"):
            ProbabilisticCache(p=1.5)


class TestUnbounded:
    def test_never_evicts(self):
        cache = UnboundedCache()
        for s in range(100):
            cache.observe(tup(s))
        assert len(cache) == 100
        assert cache.capacity_evictions == 0
        assert cache.stats()["capacity"] is None


class TestRegistryAndSpecs:
    def test_builtins_registered(self):
        assert cache_policy_names() == (
            "paper",
            "lru",
            "lfu",
            "ttl",
            "prob",
            "unbounded",
        )
        assert {s.name for s in all_cache_policy_specs()} == set(
            cache_policy_names()
        )

    def test_unknown_family(self):
        with pytest.raises(CacheError, match="unknown cache policy 'arc'"):
            compile_cache_policy("arc:capacity=16")

    def test_unknown_parameter(self):
        with pytest.raises(
            CacheError, match=r"unknown parameter\(s\) \['weight'\]"
        ):
            compile_cache_policy("lru:capacity=4,weight=2")

    def test_bad_values(self):
        with pytest.raises(CacheError, match="is not an integer"):
            compile_cache_policy("paper:capacity=big")
        with pytest.raises(CacheError, match="capacity=0 must be >= 1"):
            compile_cache_policy("paper:capacity=0")
        with pytest.raises(CacheError, match="must be <= 1"):
            compile_cache_policy("prob:p=1.5")

    def test_grammar_errors_are_cache_errors(self):
        with pytest.raises(CacheError, match="empty cache policy spec"):
            compile_cache_policy("")
        with pytest.raises(CacheError, match="trailing ':'"):
            compile_cache_policy("lru:")

    def test_canonical_spec(self):
        compiled = compile_cache_policy("ttl:ttl=30s,capacity=8")
        assert compiled.spec == "ttl:capacity=8,ttl=30s"
        assert compile_cache_policy("unbounded").spec == "unbounded"

    def test_make_stamps_the_canonical_spec(self):
        cache = make_cache_policy("lru:capacity=4")
        assert cache.spec == "lru:capacity=4"
        assert cache.stats()["spec"] == "lru:capacity=4"

    def test_ttl_suffix_parses(self):
        cache = make_cache_policy("ttl:capacity=4,ttl=500ms")
        assert isinstance(cache, TtlCache)
        assert cache.ttl == pytest.approx(0.5)

    def test_prob_rng_isolated_per_host_source(self):
        compiled = compile_cache_policy("prob:capacity=8,p=0.5")

        def outcomes(host, source, seed=3):
            c = compiled.make(seed=seed, host=host, source=source)
            return [c.observe(tup(s)) for s in range(32)]

        assert outcomes("r1", "s") == outcomes("r1", "s")
        assert outcomes("r1", "s") != outcomes("r2", "s")
        assert outcomes("r1", "s", seed=3) != outcomes("r1", "s", seed=4)

    def test_register_custom_policy(self):
        class FifoCache(CachePolicy):
            family = "test-fifo"

            def __init__(self, capacity=16):
                super().__init__(capacity)
                self._order = []

            def _touch(self, seqno, now):
                if seqno not in self._order:
                    self._order.append(seqno)

            def _forget(self, seqno):
                if seqno in self._order:
                    self._order.remove(seqno)

            def _victim(self, candidate):
                return self._order[0]

        def factory(params):
            from repro.harness.specstr import int_param, reject_unknown

            capacity = int_param(
                params, "cache policy 'test-fifo'", "capacity", 16,
                error=CacheError,
            )
            reject_unknown(params, "cache policy 'test-fifo'", CacheError)
            return lambda seed=0, host="", source="": FifoCache(capacity)

        register_cache_policy(
            CachePolicySpec(name="test-fifo", factory=factory)
        )
        try:
            cache = make_cache_policy("test-fifo:capacity=2")
            cache.observe(tup(5))
            cache.observe(tup(1))
            cache.observe(tup(3))  # FIFO evicts 5, not min-seqno 1
            assert sorted(s.seqno for s in cache.entries()) == [1, 3]
            with pytest.raises(CacheError, match="already registered"):
                register_cache_policy(
                    CachePolicySpec(name="test-fifo", factory=factory)
                )
        finally:
            unregister_cache_policy("test-fifo")
        with pytest.raises(CacheError, match="unknown cache policy"):
            get_cache_policy_spec("test-fifo")


class TestFaultSpecStrings:
    def test_is_fault_spec(self):
        assert is_fault_spec("node-crash:host=r2,at=5")
        assert is_fault_spec("link-down:u=a,v=b,at=1;node-crash:host=r2,at=5")
        assert not is_fault_spec("plan.json")
        assert not is_fault_spec("zipf:alpha=1.1")

    def test_parse_event(self):
        event = parse_fault_event("node-crash:host=r2,at=5s,restart_after=3s")
        assert isinstance(event, NodeCrash)
        assert (event.host, event.at, event.restart_after) == ("r2", 5.0, 3.0)

    def test_compile_plan(self):
        plan = compile_fault_plan(
            "link-down:u=a,v=b,at=1,duration=2;node-crash:host=r2,at=5"
        )
        assert len(plan.events) == 2
        assert isinstance(plan.events[0], LinkDown)
        assert isinstance(plan.events[1], NodeCrash)
        # the plan round-trips through the existing JSON wire format
        from repro.faults import FaultPlan

        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_errors(self):
        with pytest.raises(FaultSpecError, match="unknown fault 'meteor'"):
            parse_fault_event("meteor:at=1")
        with pytest.raises(
            FaultSpecError, match=r"missing required parameter\(s\) \['host'\]"
        ):
            parse_fault_event("node-crash:at=5")
        with pytest.raises(
            FaultSpecError, match=r"unknown parameter\(s\) \['blast'\]"
        ):
            parse_fault_event("node-crash:host=r2,at=5,blast=1")
        with pytest.raises(FaultSpecError, match="is not a number"):
            parse_fault_event("node-crash:host=r2,at=noon")
        with pytest.raises(FaultSpecError, match="empty fault spec"):
            compile_fault_plan("  ")
