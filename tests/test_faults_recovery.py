"""The tentpole scenario: a crashed expeditious replier must not break
reliability.  CESRM's expedited unicast to the dead host goes unanswered,
SRM's suppression machinery recovers the loss, and the requestor evicts
the stale pair from its cache (relearning a live one from later replies).
Verified through the RecoveryTimeline, per the observability layer."""

from repro.faults import FaultPlan, NodeCrash
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.obs import RingBufferSink, Tracer
from repro.obs.events import EventKind
from repro.obs.timeline import RecoveryTimeline
from repro.traces.synthesize import SynthesisParams, synthesize_trace


def busy_synthetic(n_packets=600, target=250, seed=2):
    params = SynthesisParams(
        name="crashy",
        n_receivers=6,
        tree_depth=3,
        period=0.04,
        n_packets=n_packets,
        target_losses=target,
    )
    return synthesize_trace(params, seed=seed)


def crash_run(victim="r2", at=15.0, seed=1, protocol="cesrm"):
    synthetic = busy_synthetic()
    plan = FaultPlan(events=(NodeCrash(host=victim, at=at),))
    ring = RingBufferSink()
    result = run_trace(
        synthetic,
        protocol,
        SimulationConfig(seed=seed),
        tracer=Tracer(ring),
        faults=plan,
    )
    return result, ring


def pick_victim():
    """The most active expeditious replier of a clean run."""
    from repro.net.packet import PacketKind

    clean = run_trace(busy_synthetic(), "cesrm", SimulationConfig(seed=1))
    return max(
        clean.receivers,
        key=lambda h: clean.metrics.sends_by_host_kind(h, PacketKind.EREPL),
    )


class TestReplierCrashFallback:
    def test_srm_fallback_recovers_everything(self):
        victim = pick_victim()
        result, ring = crash_run(victim=victim)
        timeline = RecoveryTimeline.from_events(ring.events)
        # the crash is a run-level fault marker on the timeline
        assert [e.kind for e in timeline.faults] == [EventKind.FAULT_CRASH]
        assert timeline.faults[0].node == victim
        # SRM fall-back recoveries happened, and no live host is left short
        assert len(timeline.with_outcome("srm")) > 0
        assert result.unrecovered_losses == 0
        assert result.faults["crashes"] == 1

    def test_failed_expedited_attempt_evicts_the_pair(self):
        victim = pick_victim()
        _, ring = crash_run(victim=victim)
        evictions = [e for e in ring.events if e.kind == EventKind.CACHE_EVICT]
        assert evictions, "no cache eviction after the replier crashed"
        assert all(e.detail["replier"] == victim for e in evictions)
        # each evicting host's story for that packet ends recovered via SRM
        timeline = RecoveryTimeline.from_events(ring.events)
        for evt in evictions:
            stories = [
                s
                for s in timeline.for_packet(evt.source, evt.seqno)
                if s.host == evt.node
            ]
            assert stories and stories[0].outcome == "srm"

    def test_eviction_never_fires_without_crash_plan(self):
        synthetic = busy_synthetic()
        ring = RingBufferSink()
        run_trace(
            synthetic, "cesrm", SimulationConfig(seed=1), tracer=Tracer(ring)
        )
        assert not [e for e in ring.events if e.kind == EventKind.CACHE_EVICT]

    def test_crashed_host_is_silent(self):
        victim = pick_victim()
        result, ring = crash_run(victim=victim, at=15.0)
        sends_after = [
            e
            for e in ring.events
            if e.kind == EventKind.NET_SEND
            and e.node == victim
            and e.time > 15.0
        ]
        assert sends_after == []

    def test_srm_is_unaffected_by_eviction_machinery(self):
        victim = pick_victim()
        result, ring = crash_run(victim=victim, protocol="srm")
        assert result.unrecovered_losses == 0
        assert not [e for e in ring.events if e.kind == EventKind.CACHE_EVICT]

    def test_faults_during_window_query(self):
        victim = pick_victim()
        _, ring = crash_run(victim=victim, at=15.0)
        timeline = RecoveryTimeline.from_events(ring.events)
        assert timeline.faults_during(14.0, 16.0)
        assert not timeline.faults_during(0.0, 10.0)
