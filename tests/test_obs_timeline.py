"""Hand-checked recovery timelines reconstructed from trace streams.

Each scenario drops one known packet in a small controlled world, records
the run with a tracer, folds the stream into :class:`RecoveryTimeline`,
and asserts the exact causal chain the loser's story tells — detection,
the cache decision, the recovery path taken, and the completing repair —
against what the protocol must do in that topology.
"""

from tests.helpers import make_world, two_subtrees

from repro.core.cachelab import RecoveryTuple
from repro.obs import (
    EventKind,
    JsonlFileSink,
    RecoveryTimeline,
    RingBufferSink,
    Tracer,
)


def traced_drop_world(protocol: str):
    """A two-subtree world that loses packet 1 on the x1->r1 hop only.

    r1 is the sole loser; r2 (its sibling) and the whole other subtree
    have the packet.  Packet 2 reveals the gap, so detection is exact and
    deterministic.  Returns ``(world, ring)`` after the run completes.
    """
    world = make_world(tree=two_subtrees(), protocol=protocol)
    world.run_warmup()
    if protocol != "srm":
        # Pre-seed r1's cache (§3.1) so the expedited path triggers:
        # r1 itself is the expeditious requestor, sibling r2 the replier.
        world.agent("r1").cache.observe(
            RecoveryTuple(
                seqno=0,
                requestor="r1",
                requestor_to_source=world.network.control_delay("r1", "s"),
                replier="r2",
                replier_to_requestor=world.network.control_delay("r2", "r1"),
            )
        )
    ring = RingBufferSink()
    world.sim.tracer = Tracer(ring)
    world.send_packets(3, drop={1: {("x1", "r1")}})
    world.run()
    return world, ring


class TestExpeditedStory:
    def test_expedited_causal_chain(self):
        world, ring = traced_drop_world("cesrm")
        timeline = RecoveryTimeline.from_events(ring.events)
        stories = timeline.for_host("r1")
        assert len(stories) == 1
        story = stories[0]
        assert (story.source, story.seqno) == ("s", 1)
        assert story.outcome == "expedited"
        assert story.expedited

        # The loser's own steps, in causal order: the gap is detected,
        # the cache proposes <r1, r2>, the expedited request is scheduled
        # (REORDER-DELAY=0) and unicast to r2, and r2's expedited reply
        # completes the recovery — no SRM request round ever fires.
        own = [e.kind for e in story.own_steps()]
        assert own == [
            EventKind.LOSS_DETECTED,
            EventKind.CACHE_HIT,
            EventKind.ERQST_SCHEDULED,
            EventKind.ERQST_SENT,
            EventKind.RECOVERY_COMPLETED,
        ]
        assert story.requests_sent == 0

        hit = next(e for e in story.own_steps() if e.kind == EventKind.CACHE_HIT)
        assert hit.detail == {"requestor": "r1", "replier": "r2"}

        # Group context: r2 (and only r2) answered with an expedited reply.
        erepls = [e for e in story.steps if e.kind == EventKind.EREPL_SENT]
        assert [e.node for e in erepls] == ["r2"]

        done = story.own_steps()[-1]
        assert done.kind == EventKind.RECOVERY_COMPLETED
        assert done.detail["expedited"] is True
        assert story.recovery_time is not None

        # The unicast request crosses r1->x1->r2 and the reply multicasts
        # back, so recovery takes at least two propagation delays but well
        # under an SRM request round (C1 * d_qs backoff + RTT).
        assert story.recovery_time >= 2 * world.network.propagation_delay

    def test_non_losers_have_no_story(self):
        _, ring = traced_drop_world("cesrm")
        timeline = RecoveryTimeline.from_events(ring.events)
        assert timeline.outcome_counts() == {"expedited": 1}
        for host in ("r2", "r3", "r4", "s"):
            assert timeline.for_host(host) == []


class TestSrmFallbackStory:
    def test_srm_causal_chain(self):
        world, ring = traced_drop_world("srm")
        timeline = RecoveryTimeline.from_events(ring.events)
        stories = timeline.for_packet("s", 1)
        assert len(stories) == 1
        story = stories[0]
        assert story.host == "r1"
        assert story.outcome == "srm"
        assert not story.expedited

        # SRM's chain: detection arms the request timer, one multicast
        # request round fires, and a multicast repair completes recovery.
        # No cache/erqst events exist in a pure-SRM world.
        own = [e.kind for e in story.own_steps()]
        assert own == [
            EventKind.LOSS_DETECTED,
            EventKind.REQUEST_SENT,
            EventKind.RECOVERY_COMPLETED,
        ]
        assert story.requests_sent == 1

        done = story.own_steps()[-1]
        assert done.kind == EventKind.RECOVERY_COMPLETED
        assert done.detail["expedited"] is False

        # Context: somebody who had the packet scheduled and sent the
        # repair in response to r1's request.
        replies = [e for e in story.steps if e.kind == EventKind.REPLY_SENT]
        assert replies, "a repair reply must appear in the story"
        assert all(e.node != "r1" for e in replies)
        for event in replies:
            assert event.detail["requestor"] == "r1"

        # Request round 1 fired after SRM's backoff window opened.
        request = next(
            e for e in story.own_steps() if e.kind == EventKind.REQUEST_SENT
        )
        assert request.detail["round"] == 1
        assert request.time > story.detected_at

    def test_describe_renders_chain(self):
        _, ring = traced_drop_world("srm")
        timeline = RecoveryTimeline.from_events(ring.events)
        text = timeline.describe()
        assert "loss s:1 at r1 — srm" in text
        assert "loss.detected" in text
        assert "1 loss stories (srm=1)" in text


class TestTimelineFromJsonl:
    def test_reconstruction_from_jsonl_matches_in_memory(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        sink = JsonlFileSink(path)
        ring = RingBufferSink()
        world.sim.tracer = Tracer(ring, sink)
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        sink.close()

        from_file = RecoveryTimeline.from_events(JsonlFileSink.read(path))
        in_memory = RecoveryTimeline.from_events(ring.events)
        assert from_file.describe() == in_memory.describe()
