"""Sweep spec compilation: grids, cases, defaults, digests, validation."""

import json

import pytest

from repro.faults import FaultPlan, LinkDown
from repro.sweep.spec import (
    DEFAULT_SWEEP_MAX_PACKETS,
    SweepError,
    compile_sweep,
    load_sweep,
)

GRID_TOML = """
name = "t"
description = "d"

[grid]
protocol = ["srm", "cesrm"]
trace = ["WRN950919", "RFV960419"]
seed = [0, 1]
"""

GRID_DATA = {
    "name": "t",
    "description": "d",
    "grid": {
        "protocol": ["srm", "cesrm"],
        "trace": ["WRN950919", "RFV960419"],
        "seed": [0, 1],
    },
}


class TestCompile:
    def test_cartesian_product(self):
        spec = compile_sweep(GRID_DATA)
        assert len(spec) == 8
        assert spec.duplicates == 0
        coords = {(c.protocol, c.trace, c.seed) for c in spec.cases}
        assert ("cesrm", "RFV960419", 1) in coords
        assert len(coords) == 8

    def test_seed_folds_into_config_and_trace(self):
        spec = compile_sweep(GRID_DATA)
        for case in spec.cases:
            assert case.job.config.seed == case.seed
            assert case.job.trace_seed == case.seed

    def test_default_max_packets(self):
        spec = compile_sweep(GRID_DATA)
        for case in spec.cases:
            assert case.max_packets == DEFAULT_SWEEP_MAX_PACKETS
            assert case.job.config.max_packets == DEFAULT_SWEEP_MAX_PACKETS
            assert case.job.trace_max_packets == DEFAULT_SWEEP_MAX_PACKETS

    def test_max_packets_zero_means_full_trace(self):
        spec = compile_sweep(
            {
                "grid": {"protocol": ["srm"], "trace": ["WRN950919"]},
                "defaults": {"max_packets": 0},
            }
        )
        case = spec.cases[0]
        assert case.max_packets is None
        assert case.job.trace_max_packets is None

    def test_grid_params_multiply(self):
        spec = compile_sweep(
            {
                "grid": {
                    "protocol": ["cesrm"],
                    "trace": ["WRN950919"],
                    "params": {"cache_capacity": [1, 4, 16]},
                },
            }
        )
        assert len(spec) == 3
        assert sorted(c.job.config.cache_capacity for c in spec.cases) == [1, 4, 16]
        assert all(json.loads(c.params)["cache_capacity"] in (1, 4, 16) for c in spec.cases)

    def test_fixed_params_apply_everywhere(self):
        spec = compile_sweep(
            {
                "grid": {"protocol": ["srm", "cesrm"], "trace": ["WRN950919"]},
                "params": {"propagation_delay": 0.05},
            }
        )
        assert all(c.job.config.propagation_delay == 0.05 for c in spec.cases)

    def test_cases_append_to_grid(self):
        data = dict(GRID_DATA)
        data["cases"] = [{"protocol": "cesrm-router", "trace": "WRN950919"}]
        spec = compile_sweep(data)
        assert len(spec) == 9
        assert any(c.protocol == "cesrm-router" for c in spec.cases)

    def test_cases_only_spec(self):
        spec = compile_sweep(
            {"cases": [{"protocol": "srm", "trace": "WRN950919", "seed": 7}]}
        )
        assert len(spec) == 1
        assert spec.cases[0].seed == 7

    def test_defaults_fill_missing_axes(self):
        spec = compile_sweep(
            {
                "defaults": {"protocol": "cesrm", "trace": "WRN950919", "seed": 3},
                "cases": [{}, {"seed": 4}],
            }
        )
        assert [c.seed for c in spec.cases] == [3, 4]
        assert all(c.protocol == "cesrm" for c in spec.cases)

    def test_duplicates_pruned_and_counted(self):
        spec = compile_sweep(
            {
                "cases": [
                    {"protocol": "srm", "trace": "WRN950919"},
                    {"protocol": "srm", "trace": "WRN950919"},
                ]
            }
        )
        assert len(spec) == 1
        assert spec.duplicates == 1

    def test_topology_trace_accepted(self):
        spec = compile_sweep(
            {"cases": [{"protocol": "srm", "trace": "tree:depth=2,fanout=2"}]}
        )
        assert spec.cases[0].trace == "tree:depth=2,fanout=2"


class TestDigest:
    def test_toml_json_equivalence(self, tmp_path):
        toml_path = tmp_path / "t.toml"
        toml_path.write_text(GRID_TOML)
        json_path = tmp_path / "t.json"
        json_path.write_text(json.dumps(GRID_DATA))
        assert load_sweep(toml_path).digest() == load_sweep(json_path).digest()

    def test_order_independent(self):
        reordered = dict(GRID_DATA)
        reordered["grid"] = {
            "seed": [1, 0],
            "trace": ["RFV960419", "WRN950919"],
            "protocol": ["cesrm", "srm"],
        }
        assert compile_sweep(GRID_DATA).digest() == compile_sweep(reordered).digest()

    def test_name_does_not_change_digest(self):
        renamed = dict(GRID_DATA, name="other", description="other")
        assert compile_sweep(GRID_DATA).digest() == compile_sweep(renamed).digest()

    def test_axis_value_changes_digest(self):
        changed = dict(GRID_DATA)
        changed["grid"] = dict(GRID_DATA["grid"], seed=[0, 2])
        assert compile_sweep(GRID_DATA).digest() != compile_sweep(changed).digest()


class TestFaults:
    def test_plan_path_resolved_against_spec_dir(self, tmp_path):
        plan = FaultPlan([LinkDown(u="s", v="x1", at=1.0, duration=2.0)])
        plan.save(tmp_path / "plan.json")
        spec_path = tmp_path / "sweep.toml"
        spec_path.write_text(
            'name = "f"\n[[cases]]\nprotocol = "srm"\ntrace = "WRN950919"\n'
            'faults = "plan.json"\n'
        )
        spec = load_sweep(spec_path)
        assert spec.cases[0].faults == "plan.json"
        assert not spec.cases[0].job.faults.empty

    def test_inline_plan(self):
        plan = FaultPlan([LinkDown(u="s", v="x1", at=1.0, duration=2.0)])
        spec = compile_sweep(
            {
                "cases": [
                    {
                        "protocol": "srm",
                        "trace": "WRN950919",
                        "faults": plan.to_dict(),
                    }
                ]
            }
        )
        assert spec.cases[0].faults.startswith("inline:")
        assert not spec.cases[0].job.faults.empty

    def test_missing_plan_file_rejected(self, tmp_path):
        with pytest.raises(SweepError, match="cannot load fault plan"):
            compile_sweep(
                {
                    "cases": [
                        {"protocol": "srm", "trace": "WRN950919", "faults": "nope.json"}
                    ]
                },
                base_dir=tmp_path,
            )


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(SweepError, match="unknown sweep spec keys"):
            compile_sweep({"grids": {}})

    def test_unknown_axis(self):
        with pytest.raises(SweepError, match="unknown grid axis"):
            compile_sweep({"grid": {"proto": ["srm"]}})

    def test_empty_axis_list(self):
        with pytest.raises(SweepError, match="empty list"):
            compile_sweep({"grid": {"protocol": []}})

    def test_unknown_trace(self):
        with pytest.raises(SweepError, match="unknown trace"):
            compile_sweep({"cases": [{"protocol": "srm", "trace": "NOPE"}]})

    def test_unknown_protocol(self):
        with pytest.raises(SweepError):
            compile_sweep({"cases": [{"protocol": "nope", "trace": "WRN950919"}]})

    def test_unknown_param(self):
        with pytest.raises(SweepError, match="unknown config param"):
            compile_sweep(
                {
                    "grid": {"protocol": ["srm"], "trace": ["WRN950919"]},
                    "params": {"nope": 1},
                }
            )

    def test_reserved_param_redirected(self):
        with pytest.raises(SweepError, match="sweep axis, not a param"):
            compile_sweep(
                {
                    "grid": {"protocol": ["srm"], "trace": ["WRN950919"]},
                    "params": {"seed": 1},
                }
            )

    def test_missing_protocol(self):
        with pytest.raises(SweepError, match="no protocol"):
            compile_sweep({"cases": [{"trace": "WRN950919"}]})

    def test_bad_seed_type(self):
        with pytest.raises(SweepError, match="seed must be an integer"):
            compile_sweep(
                {"cases": [{"protocol": "srm", "trace": "WRN950919", "seed": "x"}]}
            )

    def test_negative_max_packets(self):
        with pytest.raises(SweepError, match="max_packets"):
            compile_sweep(
                {
                    "cases": [
                        {"protocol": "srm", "trace": "WRN950919", "max_packets": -1}
                    ]
                }
            )

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(SweepError, match="cannot read"):
            load_sweep(tmp_path / "missing.toml")

    def test_invalid_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(SweepError, match="invalid TOML"):
            load_sweep(path)
