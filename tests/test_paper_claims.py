"""Integration tests pinning the paper's headline claims (§4.4).

These run two protocols over moderately sized replays of real Table 1
rows and assert the *shapes* the paper reports: who wins, in which band.
"""

import pytest

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.stats import mean
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import trace_meta

MAX_PACKETS = 1500


@pytest.fixture(scope="module")
def results():
    out = {}
    config = SimulationConfig(max_packets=MAX_PACKETS)
    for name in ("WRN951113", "RFV960419"):
        synthetic = synthesize_trace(trace_meta(name), seed=0, max_packets=MAX_PACKETS)
        out[name] = {
            protocol: run_trace(synthetic, protocol, config)
            for protocol in ("srm", "cesrm")
        }
    return out


def avg_latency(result) -> float:
    return mean([result.avg_normalized_recovery_time(r) for r in result.receivers])


class TestHeadlineClaims:
    def test_both_protocols_fully_reliable(self, results):
        for runs in results.values():
            for result in runs.values():
                assert result.unrecovered_losses == 0

    def test_srm_first_round_average_in_band(self, results):
        """§4.4: SRM's average recovery sits between 1.5 and 3.25 RTT."""
        for runs in results.values():
            assert 1.2 <= avg_latency(runs["srm"]) <= 3.5

    def test_cesrm_cuts_recovery_time_substantially(self, results):
        """Fig. 1: CESRM's averages are 40–70% below SRM's (we accept a
        slightly wider 25–75% band on truncated replays)."""
        for name, runs in results.items():
            reduction = 1.0 - avg_latency(runs["cesrm"]) / avg_latency(runs["srm"])
            assert 0.25 <= reduction <= 0.75, (name, reduction)

    def test_expedited_gap_in_band(self, results):
        """Fig. 2 / §3.4: expedited recoveries beat non-expedited ones by
        about 1–2.5 RTT."""
        for name, runs in results.items():
            gaps = [
                g
                for g in (
                    runs["cesrm"].expedited_gap(r) for r in runs["cesrm"].receivers
                )
                if g is not None
            ]
            assert gaps, name
            assert 0.7 <= mean(gaps) <= 2.8, (name, mean(gaps))

    def test_cesrm_sends_fewer_retransmissions(self, results):
        """Fig. 4 / §1: CESRM sends 30–80% of SRM's retransmissions."""
        for name, runs in results.items():
            ratio = (
                runs["cesrm"].overhead.retransmissions
                / runs["srm"].overhead.retransmissions
            )
            assert 0.2 <= ratio <= 0.85, (name, ratio)

    def test_cesrm_control_overhead_below_srm(self, results):
        """Fig. 5b: CESRM's recovery-control cost is far below SRM's."""
        for name, runs in results.items():
            ratio = runs["cesrm"].overhead.control / runs["srm"].overhead.control
            assert ratio < 0.8, (name, ratio)

    def test_expedited_success_above_half(self, results):
        """Fig. 5a: expedited recoveries mostly succeed (>70% in the
        paper; >55% asserted on truncated replays)."""
        for name, runs in results.items():
            assert runs["cesrm"].metrics.expedited_success_rate > 0.55, name

    def test_most_recoveries_are_expedited(self, results):
        """CESRM's average sits near the expedited bound only because the
        expedited path carries most recoveries."""
        for name, runs in results.items():
            records = runs["cesrm"].metrics.all_recoveries()
            expedited = sum(1 for r in records if r.expedited)
            assert expedited / len(records) > 0.5, name

    def test_srm_identical_loss_exposure(self, results):
        """Both protocols see the same injected losses (trace-driven)."""
        for runs in results.values():
            undetected_srm = sum(runs["srm"].metrics.undetected_recoveries.values())
            undetected_ces = sum(runs["cesrm"].metrics.undetected_recoveries.values())
            assert (
                runs["srm"].recovered_losses + undetected_srm
                == runs["cesrm"].recovered_losses + undetected_ces
                == runs["srm"].total_losses
            )
