"""Membership-churn robustness (§3.3, §5).

The paper argues CESRM degrades gracefully when members crash: a stale
cached replier merely makes expedited recoveries fail, SRM's scheme keeps
recovering in the interim, and the caches adapt to a live pair.  Router-
assisted protocols like LMS, by contrast, strand replier state in routers.
These tests crash hosts mid-session and verify exactly that story.
"""

from repro.core.cachelab import RecoveryTuple
from repro.net.packet import PacketKind

from tests.helpers import make_world, two_subtrees


def seed_cache(agent, seq, requestor, replier):
    agent.cache.observe(
        RecoveryTuple(
            seqno=seq,
            requestor=requestor,
            requestor_to_source=0.06,
            replier=replier,
            replier_to_requestor=0.08,
        )
    )


class TestFailedHostBehaviour:
    def test_failed_host_is_silent(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        world.agents["r3"].fail()
        before = len(world.metrics.sends_of(PacketKind.SESSION, host="r3"))
        world.run(extra=5.0)
        after = len(world.metrics.sends_of(PacketKind.SESSION, host="r3"))
        assert before == after

    def test_failed_host_does_not_reply(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        world.send_packets(2, period=0.3)
        world.run(extra=1.0)
        world.agents["r3"].fail()
        # r1 now asks for a (fake) retransmission; r3 would normally answer
        from tests.test_srm_agent import rqst

        world.agents["r3"].receive(rqst("r1", 0))
        world.run(extra=2.0)
        assert world.metrics.sends_of(PacketKind.REPL, host="r3") == []

    def test_failed_source_stops_sending(self):
        world = make_world(tree=two_subtrees())
        world.run_warmup()
        world.agents["s"].fail()
        world.send_packets(3)
        world.run()
        assert world.metrics.sends_of(PacketKind.DATA) == []


class TestSrmSurvivesChurn:
    def test_recovery_survives_any_single_receiver_crash(self):
        """With lossless recovery and at least one live holder of the
        packet (the source), SRM always recovers — whoever crashes."""
        for victim in ("r2", "r3", "r4"):
            world = make_world(tree=two_subtrees())
            world.run_warmup()
            world.sim.schedule(0.01, world.agents[victim].fail)
            world.send_packets(4, period=0.3, drop={1: {("x1", "r1")}})
            world.run(extra=30.0)
            assert world.agents["r1"].unrecovered_losses() == [], victim


class TestCesrmAdaptsToChurn:
    def test_stale_replier_falls_back_to_srm(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agents["r1"], 0, requestor="r1", replier="r3")
        world.agents["r3"].fail()
        world.send_packets(4, period=0.3, drop={1: {("x1", "r1")}})
        world.run(extra=30.0)
        # the expedited request went out but died at the crashed replier
        assert len(world.metrics.sends_of(PacketKind.ERQST, host="r1")) == 1
        assert world.metrics.sends_of(PacketKind.EREPL) == []
        # ... and SRM recovered anyway
        records = world.metrics.recoveries["r1"]
        assert [r.seq for r in records] == [1]
        assert not records[0].expedited

    def test_cache_adapts_to_live_pair_after_crash(self):
        """The §5 adaptivity claim: after the cached replier crashes, the
        SRM fall-back recovery installs a live pair, and subsequent losses
        are expedited again."""
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agents["r1"]
        seed_cache(agent, 0, requestor="r1", replier="r3")
        world.agents["r3"].fail()
        drop = {seq: {("x1", "r1")} for seq in (1, 3, 5)}
        world.send_packets(7, period=0.5, drop=drop)
        world.run(extra=30.0)
        records = {rec.seq: rec for rec in world.metrics.recoveries["r1"]}
        assert set(records) == {1, 3, 5}
        assert not records[1].expedited  # stale replier -> SRM fall-back
        # the fall-back reply re-seeded the cache with a live replier...
        cached = agent.cache.most_recent()
        assert cached is not None
        assert cached.replier != "r3"
        assert not world.agents[cached.replier].failed
        # ...so later losses went expedited again
        assert records[5].expedited

    def test_crashed_expeditious_requestor_does_not_stall_recovery(self):
        """If the host every cache points at as requestor crashes, nobody
        expedites — but SRM still recovers everyone, and new (live)
        requestor/replier pairs get cached."""
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        # both subtree receivers believe r1 is the expeditious requestor
        seed_cache(world.agents["r1"], 0, requestor="r1", replier="s")
        seed_cache(world.agents["r2"], 0, requestor="r1", replier="s")
        world.agents["r1"].fail()
        drop = {seq: {("x0", "x1")} for seq in (1, 3)}
        world.send_packets(5, period=0.5, drop=drop)
        world.run(extra=30.0)
        r2 = world.agents["r2"]
        assert r2.unrecovered_losses() == []
        # r2's cache now names a live requestor
        cached = r2.cache.most_recent()
        assert cached is not None
        assert cached.requestor != "r1"

    def test_full_reliability_with_two_crashes(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        world.sim.schedule(0.6, world.agents["r3"].fail)
        world.sim.schedule(1.2, world.agents["r2"].fail)
        drop = {}
        for seq in (1, 2, 4, 6):
            drop[seq] = {("x1", "r1")} if seq % 2 == 0 else {("x0", "x1")}
        world.send_packets(8, period=0.4, drop=drop)
        world.run(extra=30.0)
        # every *live* receiver recovered everything
        for receiver in ("r1", "r4"):
            agent = world.agents[receiver]
            assert agent.unrecovered_losses() == [], receiver
            for seq in range(8):
                assert agent.stream.has(seq), (receiver, seq)
