"""Tests for session messages and distance estimation."""

import pytest

from repro.net.packet import PacketKind
from repro.srm.session import DistanceEstimator, SessionReport

from tests.helpers import deep_tree, line_tree, make_world, two_subtrees


class TestDistanceEstimatorUnit:
    def test_no_estimate_before_echo(self):
        est = DistanceEstimator("a")
        report = SessionReport(sender="b", sent_at=1.0, max_seqs={}, echoes={})
        est.on_session(report, now=1.5)
        assert est.get("b") is None
        assert est.get_or("b", 0.123) == 0.123

    def test_echo_produces_estimate(self):
        # a sent a session at t1=1.0; b received it at 1.2, echoed at 2.0
        # with delta=0.8; a receives the echo at t4=2.2.
        est = DistanceEstimator("a")
        report = SessionReport(
            sender="b", sent_at=2.0, max_seqs={}, echoes={"a": (1.0, 0.8)}
        )
        est.on_session(report, now=2.2)
        # rtt = (2.2 - 1.0) - 0.8 = 0.4 -> one-way 0.2
        assert est.get("b") == pytest.approx(0.2)
        assert est.rtt_to("b") == pytest.approx(0.4)

    def test_negative_rtt_discarded(self):
        est = DistanceEstimator("a")
        report = SessionReport(
            sender="b", sent_at=2.0, max_seqs={}, echoes={"a": (1.0, 5.0)}
        )
        est.on_session(report, now=2.2)
        assert est.get("b") is None

    def test_build_echoes_reflects_heard_sessions(self):
        est = DistanceEstimator("a")
        report = SessionReport(sender="b", sent_at=3.0, max_seqs={}, echoes={})
        est.on_session(report, now=3.4)
        echoes = est.build_echoes(now=5.0)
        assert echoes == {"b": (3.0, pytest.approx(1.6))}

    def test_estimate_updates_on_new_echo(self):
        est = DistanceEstimator("a")
        est.on_session(
            SessionReport("b", 2.0, {}, {"a": (1.0, 0.8)}), now=2.2
        )  # 0.2
        est.on_session(
            SessionReport("b", 5.0, {}, {"a": (4.0, 0.4)}), now=5.2
        )  # rtt = 0.8 -> 0.4
        assert est.get("b") == pytest.approx(0.4)
        assert est.updates == 2

    def test_known_peers(self):
        est = DistanceEstimator("a")
        est.on_session(SessionReport("b", 2.0, {}, {"a": (1.0, 0.8)}), now=2.2)
        assert est.known_peers() == {"b"}


class TestSessionExchangeIntegration:
    def test_distances_converge_to_true_propagation(self):
        """After warmup every host's estimate equals hop-count × delay
        exactly (control packets have no serialization delay)."""
        world = make_world(tree=two_subtrees(), propagation_delay=0.020)
        world.run_warmup(periods=3.0)
        tree = world.tree
        for host in tree.hosts:
            agent = world.agents[host]
            for peer in tree.hosts:
                if peer == host:
                    continue
                expected = tree.hop_distance(host, peer) * 0.020
                assert agent.distances.get(peer) == pytest.approx(expected), (
                    host,
                    peer,
                )

    def test_deep_tree_distances(self):
        world = make_world(tree=deep_tree(), propagation_delay=0.010)
        world.run_warmup(periods=3.0)
        agent = world.agents["r1"]
        assert agent.distances.get("s") == pytest.approx(4 * 0.010)
        assert agent.distances.get("r4") == pytest.approx(4 * 0.010)
        assert agent.rtt_to_source() == pytest.approx(0.080)

    def test_session_messages_are_multicast_control(self):
        world = make_world(tree=line_tree())
        world.run_warmup(periods=2.0)
        sessions = world.metrics.sends_of(PacketKind.SESSION)
        # 3 hosts × 2 periods = 6 session messages
        assert len(sessions) == 6

    def test_session_carries_max_seq_for_loss_detection(self):
        world = make_world(tree=line_tree())
        world.run_warmup()
        # drop the only packet on the link into r1: r1 can't gap-detect,
        # only the session channel reveals the loss
        world.send_packets(1, drop={0: {("x1", "r1")}})
        world.run(extra=10.0)
        assert world.metrics.losses_detected["r1"] == 1
        assert world.agents["r1"].stream.has(0)  # recovered via SRM
