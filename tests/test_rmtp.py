"""Tests for the simplified RMTP comparator."""

import random

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import PacketKind
from repro.rmtp.agent import RmtpAgent
from repro.rmtp.fabric import RmtpFabric
from repro.sim.engine import Simulator
from repro.srm.constants import SrmParams
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from tests.helpers import deep_tree, two_subtrees


class TestFabric:
    def test_regions_at_first_branching_point(self):
        tree = two_subtrees()  # s -> x0 -> {x1, x2}: regions rooted at x1, x2
        fabric = RmtpFabric(tree)
        assert set(fabric.designated) == {"x1", "x2"}
        assert fabric.designated["x1"] in ("r1", "r2")
        assert fabric.designated["x2"] in ("r3", "r4")

    def test_members_report_to_their_dr(self):
        tree = two_subtrees()
        fabric = RmtpFabric(tree)
        dr1 = fabric.designated["x1"]
        other = "r2" if dr1 == "r1" else "r1"
        assert fabric.status_parent(other) == dr1

    def test_dr_reports_to_sender(self):
        tree = two_subtrees()
        fabric = RmtpFabric(tree)
        for dr in fabric.designated_receivers():
            assert fabric.status_parent(dr) == tree.source

    def test_region_members(self):
        tree = two_subtrees()
        fabric = RmtpFabric(tree)
        dr1 = fabric.designated["x1"]
        member = "r2" if dr1 == "r1" else "r1"
        assert fabric.region_members(dr1) == [member]

    def test_chain_head_skipped(self):
        # deep_tree: s -> x1 -> {x2, r4}: first branching at x1
        tree = deep_tree()
        fabric = RmtpFabric(tree)
        assert set(fabric.designated) == {"x2", "r4"}

    def test_receiver_region_root(self):
        # a region root that IS a receiver designates itself
        tree = deep_tree()
        fabric = RmtpFabric(tree)
        assert fabric.designated["r4"] == "r4"
        assert fabric.status_parent("r4") == tree.source


def rmtp_world():
    tree = two_subtrees()
    sim = Simulator()
    network = Network(sim, tree)
    metrics = MetricsCollector()
    fabric = RmtpFabric(tree)
    agents = {
        host: RmtpAgent(
            sim=sim,
            network=network,
            host_id=host,
            source=tree.source,
            params=SrmParams(),
            rng=random.Random(5),
            metrics=metrics,
            fabric=fabric,
            status_period=0.2,
        )
        for host in tree.hosts
    }
    for index, host in enumerate(tree.hosts):
        agents[host].start(session_offset=(index + 0.5) / (len(tree.hosts) + 1))
    return sim, network, tree, agents, metrics, fabric


class TestRecovery:
    def run_with_drop(self, drop, n=5):
        sim, network, tree, agents, metrics, fabric = rmtp_world()
        sim.run(until=3.0)

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            return (u, v) in drop.get(packet.seqno, ())

        network.drop_fn = drop_fn
        for seq in range(n):
            sim.schedule_at(3.0 + seq * 0.3, agents["s"].send_data, seq)
        sim.run(until=40.0)
        return agents, metrics, network, fabric

    def test_member_loss_repaired_by_dr(self):
        agents, metrics, network, fabric = self.run_with_drop(
            {1: {("x1", "r2")}}
        )
        assert agents["r2"].stream.has(1)
        dr = fabric.status_parent("r2")
        assert metrics.sends_by_host_kind(dr, PacketKind.REPL) == 1

    def test_repairs_are_unicast(self):
        agents, metrics, network, fabric = self.run_with_drop({1: {("x1", "r2")}})
        snapshot = network.crossings.snapshot()
        assert snapshot.get(("repl", "unicast"), 0) > 0
        assert snapshot.get(("repl", "multicast"), 0) == 0
        assert snapshot.get(("rqst", "multicast"), 0) == 0

    def test_dr_shared_loss_escalates_to_sender(self):
        # the whole x1 region loses the packet, DR included
        agents, metrics, network, fabric = self.run_with_drop({1: {("x0", "x1")}})
        for receiver in ("r1", "r2"):
            assert agents[receiver].stream.has(1), receiver
        # the sender repaired the DR
        assert metrics.sends_by_host_kind("s", PacketKind.REPL) >= 1

    def test_whole_group_loss_recovers(self):
        agents, metrics, network, fabric = self.run_with_drop({2: {("s", "x0")}})
        for receiver in ("r1", "r2", "r3", "r4"):
            assert agents[receiver].stream.has(2), receiver

    def test_no_duplicate_repairs_per_loss(self):
        agents, metrics, network, fabric = self.run_with_drop(
            {1: {("x1", "r2")}, 3: {("x1", "r2")}}
        )
        dr = fabric.status_parent("r2")
        # exactly one repair per lost packet, never more
        assert metrics.sends_by_host_kind(dr, PacketKind.REPL) == 2

    def test_latency_bounded_by_status_cycle(self):
        agents, metrics, network, fabric = self.run_with_drop({1: {("x1", "r2")}})
        records = metrics.recoveries["r2"]
        assert len(records) == 1
        # at most ~2 status periods end-to-end (detection to repair),
        # and at least the unicast round trip to the DR
        assert 0.02 <= records[0].latency <= 0.5


class TestRunnerIntegration:
    def synthetic(self):
        params = SynthesisParams(
            name="rmtp",
            n_receivers=6,
            tree_depth=4,
            period=0.05,
            n_packets=500,
            target_losses=300,
        )
        return synthesize_trace(params, seed=4)

    def test_full_reliability(self):
        result = run_trace(self.synthetic(), "rmtp")
        assert result.unrecovered_losses == 0

    def test_control_is_all_unicast(self):
        result = run_trace(self.synthetic(), "rmtp")
        assert result.overhead.multicast_control == 0
        assert result.overhead.unicast_control > 0
        assert result.metrics.total_sends(PacketKind.ACK) > 0

    def test_passes_invariant_verification(self):
        result = run_trace(
            self.synthetic(), "rmtp", SimulationConfig(verify_period=0.1)
        )
        assert result.unrecovered_losses == 0

    def test_rmtp_trades_latency_for_overhead(self):
        """The architecture contrast: RMTP is slower than CESRM (status-
        cycle bound) but strictly cheaper in repair traffic than SRM."""
        from repro.metrics.stats import mean

        synthetic = self.synthetic()
        srm = run_trace(synthetic, "srm")
        cesrm = run_trace(synthetic, "cesrm")
        rmtp = run_trace(synthetic, "rmtp")

        def latency(result):
            return mean(
                [result.avg_normalized_recovery_time(r) for r in result.receivers]
            )

        assert latency(rmtp) > latency(cesrm)
        assert rmtp.overhead.retransmissions < srm.overhead.retransmissions


class TestRmtpChurnFragility:
    def test_dr_crash_stalls_region(self):
        """RMTP shares LMS's fragility family: the DR designation is
        static, so a crashed DR stalls its region's recovery (members keep
        sending status to a dead host) — unlike CESRM's self-adapting
        fall-back."""
        sim, network, tree, agents, metrics, fabric = rmtp_world()
        sim.run(until=3.0)
        dr = fabric.designated["x1"]
        member = [m for m in fabric.region_members(dr)][0]
        agents[dr].fail()

        def drop_fn(u, v, packet):
            if packet.kind is not PacketKind.DATA:
                return False
            return packet.seqno == 1 and (u, v) == ("x1", member)

        network.drop_fn = drop_fn
        for seq in range(3):
            sim.schedule_at(3.0 + seq * 0.3, agents["s"].send_data, seq)
        sim.run(until=20.0)
        assert not agents[member].stream.has(1)
        assert agents[member].unrecovered_losses() == [1]
        # the member kept reporting into the void
        assert agents[member].statuses_sent >= 2
