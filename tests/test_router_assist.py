"""Behavioural tests for router-assisted CESRM (§3.3)."""

from repro.core.cachelab import RecoveryTuple
from repro.net.packet import PAYLOAD_BYTES, Cast, Packet, PacketKind

from tests.helpers import make_world, two_subtrees

D = 0.020


def seed_cache(agent, seq, requestor, replier, turning_point):
    agent.cache.observe(
        RecoveryTuple(
            seqno=seq,
            requestor=requestor,
            requestor_to_source=0.06,
            replier=replier,
            replier_to_requestor=0.08,
            turning_point=turning_point,
        )
    )


class TestSubcastDelivery:
    def test_erepl_subcast_stays_in_loss_subtree(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm-router")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, "r1", "r2", turning_point="x1")
        # only r1 loses; the expedited repair (r2, subcast from x1) beats
        # r1's own SRM request, so no multicast recovery traffic leaves x1
        world.send_packets(3, period=0.3, drop={1: {("x1", "r1")}})
        world.run()
        assert world.agent("r1").stream.has(1)
        # hosts outside the subtree saw neither request nor reply for it
        assert 1 not in world.agent("r4").reply_states
        assert 1 not in world.agent("r3").reply_states
        assert 1 not in world.agent("s").reply_states

    def test_plain_cesrm_exposes_whole_group(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, "r1", "r3", turning_point=None)
        world.send_packets(3, period=0.3, drop={1: {("x0", "x1")}})
        world.run()
        # multicast expedited reply reaches the unaffected r4 too
        assert 1 in world.agent("r4").reply_states

    def test_subcast_costs_less_than_multicast(self):
        def erepl_crossings(protocol, turning_point):
            world = make_world(tree=two_subtrees(), protocol=protocol)
            world.run_warmup()
            seed_cache(world.agent("r1"), 0, "r1", "r3", turning_point)
            world.send_packets(3, period=0.3, drop={1: {("x0", "x1")}})
            world.run()
            return sum(
                n
                for (kind, _), n in world.network.crossings.snapshot().items()
                if kind == "erepl"
            )

        subcast_cost = erepl_crossings("cesrm-router", "x1")
        multicast_cost = erepl_crossings("cesrm", None)
        assert subcast_cost < multicast_cost

    def test_missing_turning_point_falls_back_to_multicast(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm-router")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, "r1", "r3", turning_point=None)
        world.send_packets(3, period=0.3, drop={1: {("x0", "x1")}})
        world.run()
        assert world.agent("r1").stream.has(1)
        snapshot = world.network.crossings.snapshot()
        assert snapshot.get(("erepl", "multicast"), 0) > 0
        assert snapshot.get(("erepl", "subcast"), 0) == 0

    def test_stale_turning_point_recomputed(self):
        """An annotation pointing at a subtree that does not contain the
        requestor is recomputed, so the requestor still gets the repair."""
        world = make_world(tree=two_subtrees(), protocol="cesrm-router")
        world.run_warmup()
        # claim the turning point is x2 although r1 lives under x1
        seed_cache(world.agent("r1"), 0, "r1", "r3", turning_point="x2")
        world.send_packets(3, period=0.3, drop={1: {("x1", "r1")}})
        world.run()
        assert world.agent("r1").stream.has(1)
        records = world.metrics.recoveries["r1"]
        assert records and records[0].expedited


class TestTurningPointCaching:
    def test_cache_derives_turning_point_from_multicast_reply(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm-router")
        world.run_warmup()
        agent = world.agent("r1")
        agent._detect_loss(4)
        reply = Packet(
            kind=PacketKind.REPL,
            origin="r3",
            source="s",
            seqno=4,
            size_bytes=PAYLOAD_BYTES,
            requestor="r2",
            requestor_dist=0.06,
            replier="r3",
            replier_dist=0.08,
        )
        agent.receive(reply)
        cached = agent.cache.get(4)
        assert cached is not None
        # lca(r3, r2) in two_subtrees is x0
        assert cached.turning_point == "x0"

    def test_cache_keeps_annotated_turning_point_from_subcast(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm-router")
        world.run_warmup()
        agent = world.agent("r1")
        agent._detect_loss(4)
        reply = Packet(
            kind=PacketKind.EREPL,
            origin="r3",
            source="s",
            seqno=4,
            size_bytes=PAYLOAD_BYTES,
            cast=Cast.SUBCAST,
            requestor="r2",
            requestor_dist=0.06,
            replier="r3",
            replier_dist=0.08,
            turning_point="x1",
        )
        agent.receive(reply)
        assert agent.cache.get(4).turning_point == "x1"

    def test_erqst_carries_turning_point(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm-router")
        world.run_warmup()
        agent = world.agent("r3")

        captured = []
        original = agent.receive

        def spy(packet):
            if packet.kind is PacketKind.ERQST:
                captured.append(packet)
            original(packet)

        world.network._agents["r3"].receive = spy
        seed_cache(world.agent("r1"), 0, "r1", "r3", turning_point="x1")
        world.send_packets(3, period=0.3, drop={1: {("x1", "r1")}})
        world.run()
        assert captured
        assert captured[0].turning_point == "x1"


class TestReliabilityParity:
    def test_router_assist_recovers_everything_plain_cesrm_does(self):
        drop = {
            1: {("x0", "x1")},
            2: {("x1", "r1")},
            4: {("x2", "r3"), ("x1", "r2")},
            5: {("s", "x0")},
        }

        def run(protocol):
            world = make_world(tree=two_subtrees(), protocol=protocol)
            world.run_warmup()
            world.send_packets(8, drop=drop)
            world.run(extra=30.0)
            return {
                r: world.agents[r].unrecovered_losses()
                for r in world.tree.receivers
            }

        assert run("cesrm-router") == run("cesrm") == {
            "r1": [],
            "r2": [],
            "r3": [],
            "r4": [],
        }
