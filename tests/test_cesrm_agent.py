"""Behavioural tests for the CESRM agent (§3.2)."""

import pytest

from repro.core.agent import CesrmAgent
from repro.core.cachelab import RecoveryTuple
from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Packet, PacketKind

from tests.helpers import make_world, two_subtrees

TX = PAYLOAD_BYTES * 8 / 1.5e6
D = 0.020


def seed_cache(agent: CesrmAgent, seq: int, requestor: str, replier: str) -> None:
    agent.cache.observe(
        RecoveryTuple(
            seqno=seq,
            requestor=requestor,
            requestor_to_source=0.06,
            replier=replier,
            replier_to_requestor=0.08,
        )
    )


def repl(origin: str, seq: int, requestor="r1", d_qs=0.06, d_rq=0.04) -> Packet:
    return Packet(
        kind=PacketKind.REPL,
        origin=origin,
        source="s",
        seqno=seq,
        size_bytes=PAYLOAD_BYTES,
        requestor=requestor,
        requestor_dist=d_qs,
        replier=origin,
        replier_dist=d_rq,
    )


class TestExpeditedRequest:
    def test_expeditious_requestor_unicasts_erqst(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r3")
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        erqsts = world.metrics.sends_of(PacketKind.ERQST, host="r1")
        assert len(erqsts) == 1
        assert erqsts[0][3] == 1  # for the lost packet

    def test_non_requestor_does_not_expedite(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        # r2's cache says r1 is the expeditious requestor
        seed_cache(world.agent("r2"), 0, requestor="r1", replier="r3")
        world.send_packets(3, drop={1: {("x1", "r2")}})
        world.run()
        assert world.metrics.sends_of(PacketKind.ERQST) == []

    def test_empty_cache_means_pure_srm(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        assert world.metrics.sends_of(PacketKind.ERQST) == []
        assert world.metrics.sends_of(PacketKind.EREPL) == []
        # SRM fall-back still recovers
        assert world.agent("r1").stream.has(1)

    def test_degenerate_self_replier_ignored(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r1")
        world.send_packets(3, drop={1: {("x1", "r1")}})
        world.run()
        assert world.metrics.sends_of(PacketKind.ERQST) == []
        assert world.agent("r1").stream.has(1)

    def test_srm_request_still_scheduled_alongside(self):
        """§3.2: the SRM request is scheduled in parallel; a successful
        expedited recovery then suppresses it (the replier here is two
        hops away, so the expedited repair always beats the C1·d-delayed
        SRM request)."""
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agent("r1")
        seed_cache(agent, 0, requestor="r1", replier="r2")
        world.send_packets(3, period=0.3, drop={1: {("x1", "r1")}})
        world.run()
        # the expedited recovery finished before the SRM request fired
        assert world.metrics.sends_of(PacketKind.RQST, host="r1") == []
        assert agent.stream.has(1)


class TestExpeditedReply:
    def test_replier_immediately_multicasts_erepl(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r2")
        world.send_packets(3, period=0.3, drop={1: {("x1", "r1")}})
        world.run()
        erepls = world.metrics.sends_of(PacketKind.EREPL, host="r2")
        assert len(erepls) == 1
        erqsts = world.metrics.sends_of(PacketKind.ERQST, host="r1")
        # immediate: reply sent exactly when the unicast request arrived
        # (2 hops of pure propagation, control packet)
        assert erepls[0][0] == pytest.approx(erqsts[0][0] + 2 * D, abs=1e-9)

    def test_expedited_recovery_is_fast_and_flagged(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r2")
        world.send_packets(3, period=0.3, drop={1: {("x1", "r1")}})
        world.run()
        records = world.metrics.recoveries["r1"]
        assert len(records) == 1
        assert records[0].expedited
        # REORDER-DELAY(0) + 2 hops request + 2 hops reply (payload)
        expected = 2 * D + 2 * (D + TX)
        assert records[0].latency == pytest.approx(expected, abs=1e-6)

    def test_erepl_repairs_colosers(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r3")
        # both r1 and r2 lose the packet; only r1 expedites
        world.send_packets(3, drop={1: {("x0", "x1")}})
        world.run()
        assert world.agent("r2").stream.has(1)
        records = world.metrics.recoveries["r2"]
        assert records and records[0].expedited

    def test_replier_missing_packet_stays_silent(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r2")
        # r2 shares the loss -> expedited recovery fails
        world.send_packets(3, drop={1: {("x0", "x1")}})
        world.run()
        assert len(world.metrics.sends_of(PacketKind.ERQST, host="r1")) == 1
        assert world.metrics.sends_of(PacketKind.EREPL) == []
        # SRM fall-back still recovers, non-expedited
        records = world.metrics.recoveries["r1"]
        assert records and not records[0].expedited
        assert world.agent("r2").erqst_shared_loss == 1

    def test_scheduled_reply_suppresses_erepl(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        replier = world.agent("r3")
        world.agents["s"].send_data(0)
        world.run(extra=0.5)
        # a normal request schedules a reply at r3...
        request = Packet(
            kind=PacketKind.RQST,
            origin="r1",
            source="s",
            seqno=0,
            size_bytes=CONTROL_BYTES,
            requestor="r1",
            requestor_dist=0.06,
        )
        replier.receive(request)
        assert replier.reply_states[0].scheduled()
        # ...so the expedited request is refused (§3.2's proviso)
        erqst = Packet(
            kind=PacketKind.ERQST,
            origin="r1",
            source="s",
            seqno=0,
            size_bytes=CONTROL_BYTES,
            requestor="r1",
            requestor_dist=0.06,
            replier="r3",
        )
        replier.receive(erqst)
        assert replier.erqst_suppressed == 1
        assert world.metrics.sends_of(PacketKind.EREPL, host="r3") == []

    def test_pending_reply_suppresses_erepl(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        replier = world.agent("r3")
        world.agents["s"].send_data(0)
        world.run(extra=0.5)
        replier.receive(repl("r4", 0, requestor="r1"))  # hold_until set
        erqst = Packet(
            kind=PacketKind.ERQST,
            origin="r1",
            source="s",
            seqno=0,
            size_bytes=CONTROL_BYTES,
            requestor="r1",
            requestor_dist=0.06,
            replier="r3",
        )
        replier.receive(erqst)
        assert replier.erqst_suppressed == 1


class TestReorderDelay:
    def test_packet_arrival_cancels_expedited_request(self):
        world = make_world(
            tree=two_subtrees(), protocol="cesrm", reorder_delay=0.5
        )
        world.run_warmup()
        agent = world.agent("r1")
        seed_cache(agent, 0, requestor="r1", replier="r3")
        agent._detect_loss(3)
        assert ("s", 3) in agent._expedited
        packet = Packet(
            kind=PacketKind.DATA,
            origin="s",
            source="s",
            seqno=3,
            size_bytes=PAYLOAD_BYTES,
        )
        agent.receive(packet)  # the "reordered" packet shows up
        world.run(extra=1.0)
        # no expedited request went out for packet 3 (cascades from the
        # surgical gap 0..2 are filtered by seq)
        erqsts = [e for e in world.metrics.sends_of(PacketKind.ERQST) if e[3] == 3]
        assert erqsts == []
        assert agent.expedited_cancelled == 1

    def test_erqst_delayed_by_reorder_delay(self):
        world = make_world(
            tree=two_subtrees(), protocol="cesrm", reorder_delay=0.3
        )
        world.run_warmup()
        agent = world.agent("r1")
        seed_cache(agent, 0, requestor="r1", replier="r3")
        t_detect = world.sim.now
        agent._detect_loss(3)
        world.run(extra=1.0)
        erqsts = [
            e
            for e in world.metrics.sends_of(PacketKind.ERQST, host="r1")
            if e[3] == 3
        ]
        assert len(erqsts) == 1
        assert erqsts[0][0] == pytest.approx(t_detect + 0.3, abs=1e-9)

    def test_negative_reorder_delay_rejected(self):
        with pytest.raises(ValueError):
            make_world(protocol="cesrm", reorder_delay=-0.1)


class TestCacheUpdates:
    def test_reply_for_suffered_loss_cached(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agent("r1")
        agent._detect_loss(4)
        agent.receive(repl("r3", 4, requestor="r2"))
        cached = agent.cache.get(4)
        assert cached is not None
        assert cached.pair == ("r2", "r3")

    def test_reply_for_unsuffered_loss_discarded(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agent("r1")
        world.agents["s"].send_data(0)
        world.run(extra=0.5)
        assert agent.stream.has(0)
        agent.receive(repl("r3", 0, requestor="r2"))
        assert agent.cache.get(0) is None

    def test_unannotated_reply_ignored(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agent("r1")
        agent._detect_loss(4)
        bare = Packet(
            kind=PacketKind.REPL,
            origin="r3",
            source="s",
            seqno=4,
            size_bytes=PAYLOAD_BYTES,
        )
        agent.receive(bare)
        assert agent.cache.get(4) is None
        assert agent.stream.has(4)  # still repaired

    def test_optimal_pair_wins_across_duplicate_replies(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        agent = world.agent("r1")
        agent._detect_loss(4)
        agent.receive(repl("r3", 4, requestor="r2", d_qs=0.06, d_rq=0.20))
        agent.receive(repl("r4", 4, requestor="r2", d_qs=0.06, d_rq=0.01))
        assert agent.cache.get(4).replier == "r4"

    def test_expedited_reply_also_updates_cache(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        seed_cache(world.agent("r1"), 0, requestor="r1", replier="r3")
        world.send_packets(3, drop={1: {("x0", "x1")}})
        world.run()
        # r2 lost packet 1 and recovered via r3's EREPL: its cache now
        # holds the (r1, r3) pair
        cached = world.agent("r2").cache.get(1)
        assert cached is not None
        assert cached.pair == ("r1", "r3")


class TestErqstLossDetection:
    def test_erqst_reveals_loss_to_sharing_replier(self):
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        replier = world.agent("r2")
        erqst = Packet(
            kind=PacketKind.ERQST,
            origin="r1",
            source="s",
            seqno=0,
            size_bytes=CONTROL_BYTES,
            requestor="r1",
            requestor_dist=0.06,
            replier="r2",
        )
        replier.receive(erqst)
        assert 0 in replier.request_states
        assert replier.request_states[0].backoff == 1

    def test_erqst_detection_respects_flag(self):
        world = make_world(
            tree=two_subtrees(), protocol="cesrm", detect_on_request=False
        )
        world.run_warmup()
        replier = world.agent("r2")
        erqst = Packet(
            kind=PacketKind.ERQST,
            origin="r1",
            source="s",
            seqno=0,
            size_bytes=CONTROL_BYTES,
            requestor="r1",
            requestor_dist=0.06,
            replier="r2",
        )
        replier.receive(erqst)
        assert 0 not in replier.request_states


class TestEndToEndLocality:
    def test_repeated_losses_on_same_link_become_expedited(self):
        """After the first (SRM) recovery, subsequent losses on the same
        link recover through the expedited path — the CESRM premise."""
        world = make_world(tree=two_subtrees(), protocol="cesrm")
        world.run_warmup()
        drop = {seq: {("x0", "x1")} for seq in (1, 3, 5, 7)}
        world.send_packets(9, period=0.3, drop=drop)
        world.run(extra=30.0)
        for receiver in ("r1", "r2"):
            records = {rec.seq: rec for rec in world.metrics.recoveries[receiver]}
            assert set(records) == {1, 3, 5, 7}
            assert not records[1].expedited  # cold cache
            # once warm, every subsequent loss is repaired expeditiously
            assert records[5].expedited and records[7].expedited

    def test_determinism(self):
        def run_once():
            world = make_world(tree=two_subtrees(), protocol="cesrm", seed=3)
            world.run_warmup()
            drop = {seq: {("x0", "x1")} for seq in (1, 3)}
            world.send_packets(5, drop=drop)
            world.run()
            return world.metrics.send_log

        assert run_once() == run_once()

    def test_stop_cancels_expedited_timers(self):
        world = make_world(
            tree=two_subtrees(), protocol="cesrm", reorder_delay=5.0
        )
        world.run_warmup()
        agent = world.agent("r1")
        seed_cache(agent, 0, requestor="r1", replier="r3")
        agent._detect_loss(3)
        agent.stop()
        world.run(extra=10.0)
        assert world.metrics.sends_of(PacketKind.ERQST) == []
