"""Unit tests for trace data structures."""

import pytest

from repro.traces.model import LossTrace, TraceError

from tests.helpers import line_tree, make_synthetic, two_subtrees


def simple_trace() -> LossTrace:
    tree = line_tree()
    return LossTrace(
        "t",
        tree,
        0.08,
        {"r1": bytes([0, 1, 1, 0, 0]), "r2": bytes([0, 0, 1, 0, 1])},
    )


class TestLossTrace:
    def test_basic_queries(self):
        trace = simple_trace()
        assert trace.n_packets == 5
        assert trace.lost("r1", 1)
        assert not trace.lost("r1", 0)
        assert trace.loss_pattern(2) == {"r1", "r2"}
        assert trace.loss_pattern(0) == frozenset()
        assert trace.lossy_packets() == [1, 2, 4]

    def test_counts_and_rates(self):
        trace = simple_trace()
        assert trace.receiver_losses("r1") == 2
        assert trace.total_losses == 4
        assert trace.loss_rate("r1") == pytest.approx(0.4)
        assert trace.mean_loss_rate == pytest.approx(4 / 10)

    def test_duration(self):
        assert simple_trace().duration == pytest.approx(0.4)

    def test_truncated(self):
        trace = simple_trace().truncated(2)
        assert trace.n_packets == 2
        assert trace.total_losses == 1

    def test_truncated_no_op_when_longer(self):
        trace = simple_trace()
        assert trace.truncated(100) is trace

    def test_missing_receiver_rejected(self):
        with pytest.raises(TraceError):
            LossTrace("t", line_tree(), 0.08, {"r1": bytes(5)})

    def test_unknown_receiver_rejected(self):
        with pytest.raises(TraceError):
            LossTrace(
                "t",
                line_tree(),
                0.08,
                {"r1": bytes(5), "r2": bytes(5), "r9": bytes(5)},
            )

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(TraceError):
            LossTrace("t", line_tree(), 0.08, {"r1": bytes(5), "r2": bytes(4)})

    def test_non_binary_rejected(self):
        with pytest.raises(TraceError):
            LossTrace("t", line_tree(), 0.08, {"r1": bytes([2] * 5), "r2": bytes(5)})

    def test_nonpositive_period_rejected(self):
        with pytest.raises(TraceError):
            LossTrace("t", line_tree(), 0.0, {"r1": bytes(5), "r2": bytes(5)})


class TestSyntheticTrace:
    def test_responsible_link(self):
        tree = two_subtrees()
        synthetic = make_synthetic(
            tree,
            n_packets=4,
            period=0.08,
            combos={
                1: frozenset({("x0", "x1")}),
                2: frozenset({("x1", "r1"), ("x2", "r3")}),
            },
        )
        assert synthetic.responsible_link("r1", 1) == ("x0", "x1")
        assert synthetic.responsible_link("r2", 1) == ("x0", "x1")
        assert synthetic.responsible_link("r1", 2) == ("x1", "r1")
        assert synthetic.responsible_link("r3", 2) == ("x2", "r3")
        assert synthetic.responsible_link("r4", 2) is None
        assert synthetic.responsible_link("r1", 0) is None

    def test_combo_must_cover_loss(self):
        tree = two_subtrees()
        synthetic = make_synthetic(
            tree, n_packets=2, period=0.08, combos={1: frozenset({("x0", "x1")})}
        )
        # corrupt: claim r3 lost packet 1 though no combo link covers it
        seqs = dict(synthetic.trace.loss_seqs)
        seqs["r3"] = bytes([0, 1])
        from repro.traces.model import LossTrace

        synthetic.trace = LossTrace("t", tree, 0.08, seqs)
        with pytest.raises(TraceError):
            synthetic.responsible_link("r3", 1)

    def test_truncated_filters_combos(self):
        tree = two_subtrees()
        synthetic = make_synthetic(
            tree,
            n_packets=10,
            period=0.08,
            combos={2: frozenset({("x0", "x1")}), 8: frozenset({("x0", "x2")})},
        )
        cut = synthetic.truncated(5)
        assert set(cut.link_combos) == {2}
        assert cut.trace.n_packets == 5

    def test_truncated_no_op(self):
        tree = two_subtrees()
        synthetic = make_synthetic(tree, n_packets=3, period=0.08, combos={})
        assert synthetic.truncated(10) is synthetic


class TestMakeSyntheticHelper:
    def test_patterns_match_combos(self):
        tree = two_subtrees()
        synthetic = make_synthetic(
            tree,
            n_packets=3,
            period=0.08,
            combos={0: frozenset({("x0", "x1")}), 2: frozenset({("x2", "r4")})},
        )
        trace = synthetic.trace
        assert trace.loss_pattern(0) == {"r1", "r2"}
        assert trace.loss_pattern(1) == frozenset()
        assert trace.loss_pattern(2) == {"r4"}
