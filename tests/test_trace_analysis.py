"""Tests for the loss-locality analysis module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces.analysis import (
    analyze_trace,
    burst_stats,
    link_concentration,
    policy_predictiveness,
)
from repro.traces.synthesize import SynthesisParams, synthesize_trace
from repro.traces.yajnik import trace_meta

from tests.helpers import make_synthetic, two_subtrees


class TestBurstStats:
    def test_empty_sequence(self):
        stats = burst_stats(b"")
        assert stats.n_losses == 0
        assert stats.loss_rate == 0.0
        assert stats.locality_gain == 0.0

    def test_lossless_sequence(self):
        stats = burst_stats(bytes(10))
        assert stats.n_losses == 0
        assert stats.n_bursts == 0

    def test_single_burst(self):
        stats = burst_stats(bytes([0, 1, 1, 1, 0]))
        assert stats.n_losses == 3
        assert stats.n_bursts == 1
        assert stats.mean_burst_length == 3.0
        assert stats.max_burst_length == 3
        assert stats.conditional_loss_rate == pytest.approx(2 / 3)

    def test_two_bursts(self):
        stats = burst_stats(bytes([1, 1, 0, 0, 1, 0]))
        assert stats.n_bursts == 2
        assert stats.mean_burst_length == 1.5
        assert stats.max_burst_length == 2

    def test_all_lost(self):
        stats = burst_stats(bytes([1] * 5))
        assert stats.n_bursts == 1
        assert stats.loss_rate == 1.0
        assert stats.conditional_loss_rate == pytest.approx(4 / 5)

    @given(st.binary(max_size=400).map(lambda b: bytes(x & 1 for x in b)))
    def test_invariants(self, seq):
        stats = burst_stats(seq)
        assert stats.n_losses == sum(seq)
        assert 0 <= stats.conditional_loss_rate <= 1
        assert stats.max_burst_length <= max(stats.n_losses, 0)
        if stats.n_bursts:
            assert stats.mean_burst_length * stats.n_bursts == pytest.approx(
                stats.n_losses
            )


class TestLinkConcentration:
    def test_counts_combo_links(self):
        tree = two_subtrees()
        synthetic = make_synthetic(
            tree,
            n_packets=4,
            period=0.08,
            combos={
                0: frozenset({("x0", "x1")}),
                1: frozenset({("x0", "x1")}),
                2: frozenset({("x1", "r1"), ("x2", "r3")}),
            },
        )
        conc = link_concentration(synthetic)
        assert conc.per_link_losses[("x0", "x1")] == 2
        assert conc.total == 4
        assert conc.top_fraction(1) == pytest.approx(0.5)
        assert conc.top_fraction(10) == 1.0

    def test_empty(self):
        tree = two_subtrees()
        synthetic = make_synthetic(tree, n_packets=2, period=0.08, combos={})
        assert link_concentration(synthetic).top_fraction() == 0.0


class TestPolicyPredictiveness:
    def test_steady_link_perfect_recent_accuracy(self):
        tree = two_subtrees()
        combos = {i: frozenset({("x1", "r1")}) for i in range(6)}
        synthetic = make_synthetic(tree, n_packets=6, period=0.08, combos=combos)
        result = policy_predictiveness(synthetic)
        assert result.most_recent_accuracy == 1.0
        assert result.most_frequent_accuracy == 1.0
        assert result.samples == 5  # r1's 6 losses minus the first

    def test_alternating_links_defeat_most_recent(self):
        tree = two_subtrees()
        combos = {
            i: frozenset({("x1", "r1") if i % 2 == 0 else ("x0", "x1")})
            for i in range(10)
        }
        synthetic = make_synthetic(tree, n_packets=10, period=0.08, combos=combos)
        result = policy_predictiveness(synthetic)
        # r1's responsible link alternates every loss (accuracy 0 for it);
        # r2 only loses on the steady (x0, x1) link (accuracy 1), so the
        # aggregate sits clearly below the steady-link case
        assert result.most_recent_accuracy < 0.5

    def test_no_losses(self):
        tree = two_subtrees()
        synthetic = make_synthetic(tree, n_packets=3, period=0.08, combos={})
        result = policy_predictiveness(synthetic)
        assert result.samples == 0

    def test_synthetic_traces_have_predictive_locality(self):
        """The premise of CESRM: on realistic traces, the most-recent
        prediction is right far more often than chance."""
        synthetic = synthesize_trace(trace_meta("WRN951113"), seed=0, max_packets=2500)
        result = policy_predictiveness(synthetic)
        assert result.samples > 100
        assert result.most_recent_accuracy > 0.5


class TestAnalyzeTrace:
    def test_full_report(self):
        params = SynthesisParams(
            name="analysis",
            n_receivers=6,
            tree_depth=4,
            period=0.08,
            n_packets=2000,
            target_losses=900,
        )
        synthetic = synthesize_trace(params, seed=1)
        report = analyze_trace(synthetic)
        assert report.trace_name == "analysis"
        assert set(report.per_receiver) == set(synthetic.trace.tree.receivers)
        # temporal locality: conditional loss rate well above marginal
        assert report.mean_locality_gain > 3.0
        # bursty: mean run length comfortably above 1
        assert report.mean_burst_length > 1.5
        # spatial concentration: a handful of links dominates
        assert report.concentration.top_fraction(3) > 0.5
        assert report.policies.samples > 0
