"""Property-based end-to-end protocol invariants.

Hypothesis generates arbitrary per-packet link-drop combinations over a
fixed tree; whatever the losses, the protocols must satisfy:

* **reliability** — with lossless recovery, every receiver ends holding
  every packet, under SRM, CESRM, and router-assisted CESRM;
* **exactness** — the set of (receiver, packet) losses experienced equals
  exactly what the trace prescribed (injection neither adds nor drops);
* **conservation** — recoveries + undetected repairs = prescribed losses;
* **no spurious traffic** — a lossless trace produces zero recovery
  packets of any kind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.net.packet import PacketKind

from tests.helpers import make_synthetic, two_subtrees

TREE = two_subtrees()
LINKS = sorted(TREE.links)
N_PACKETS = 12


def combo_strategy():
    """A random antichain of tree links (possibly empty)."""

    def to_antichain(selected: list[bool]) -> frozenset:
        chosen = [link for link, keep in zip(LINKS, selected) if keep]
        # drop links that sit below an already-chosen link
        out = []
        for link in chosen:
            _, child = link
            if not any(
                child == other_child or TREE.is_descendant(child, other_child)
                for _, other_child in out
            ):
                out.append(link)
        return frozenset(out)

    return st.lists(
        st.booleans(), min_size=len(LINKS), max_size=len(LINKS)
    ).map(to_antichain)


def combos_strategy():
    return st.dictionaries(
        keys=st.integers(min_value=0, max_value=N_PACKETS - 1),
        values=combo_strategy(),
        max_size=6,
    ).map(lambda d: {k: v for k, v in d.items() if v})


@st.composite
def scenario(draw):
    return draw(combos_strategy())


class TestRecoveryInvariants:
    @given(combos=scenario())
    @settings(max_examples=12, deadline=None)
    def test_srm_full_reliability(self, combos):
        self._check_protocol("srm", combos)

    @given(combos=scenario())
    @settings(max_examples=12, deadline=None)
    def test_cesrm_full_reliability(self, combos):
        self._check_protocol("cesrm", combos)

    @given(combos=scenario())
    @settings(max_examples=8, deadline=None)
    def test_router_assist_full_reliability(self, combos):
        self._check_protocol("cesrm-router", combos)

    def _check_protocol(self, protocol, combos):
        synthetic = make_synthetic(
            TREE, n_packets=N_PACKETS, period=0.08, combos=combos
        )
        result = run_trace(synthetic, protocol, SimulationConfig(drain_time=40.0))

        # reliability: every receiver got everything
        assert result.unrecovered_losses == 0

        # conservation: experienced losses == prescribed losses
        undetected = sum(result.metrics.undetected_recoveries.values())
        assert (
            result.recovered_losses + undetected == synthetic.trace.total_losses
        )

        # exactness: the right receivers lost the right packets
        prescribed = {
            (receiver, packet)
            for packet, combo in combos.items()
            for _, child in combo
            for receiver in TREE.subtree_receivers(child)
        }
        experienced = {
            (rec.host, rec.seq) for rec in result.metrics.all_recoveries()
        }
        assert experienced <= prescribed

    @given(combos=scenario())
    @settings(max_examples=8, deadline=None)
    def test_lossless_trace_is_silent(self, combos):
        """Whatever combos say, a trace with them removed produces zero
        recovery traffic."""
        synthetic = make_synthetic(TREE, n_packets=N_PACKETS, period=0.08, combos={})
        result = run_trace(synthetic, "cesrm")
        for kind in (
            PacketKind.RQST,
            PacketKind.REPL,
            PacketKind.ERQST,
            PacketKind.EREPL,
        ):
            assert result.metrics.total_sends(kind) == 0
        assert result.metrics.total_sends(PacketKind.DATA) == N_PACKETS

    @given(combos=scenario(), seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=8, deadline=None)
    def test_determinism_across_protocol_runs(self, combos, seed):
        synthetic = make_synthetic(
            TREE, n_packets=N_PACKETS, period=0.08, combos=combos
        )
        config = SimulationConfig(seed=seed)
        a = run_trace(synthetic, "cesrm", config)
        b = run_trace(synthetic, "cesrm", config)
        assert a.metrics.sends == b.metrics.sends
        assert a.crossings_snapshot == b.crossings_snapshot
