"""Determinism of the execution engine: parallel == serial, warm == cold,
and cache entries invalidate on config or source change."""

import pytest

from repro.exec import pool as pool_mod
from repro.exec.cache import RunCache
from repro.exec.jobs import RunJob
from repro.exec.pool import ExecutionEngine
from repro.harness import report
from repro.harness.config import SimulationConfig
from repro.harness.experiments import ExperimentContext, figure1

#: Tiny replay and two traces keep the fan-out fast on a laptop/CI box.
TINY = 400
TRACES = ("WRN951113", "WRN951216")


def render(ctx) -> str:
    return report.render_figure1(figure1(ctx, traces=TRACES))


@pytest.fixture(scope="module")
def serial_render() -> str:
    return render(ExperimentContext(max_packets=TINY))


class TestParallelDeterminism:
    def test_figure1_jobs4_identical_to_serial(self, serial_render):
        parallel = render(ExperimentContext(max_packets=TINY, jobs=4))
        assert parallel == serial_render

    def test_pool_fallback_when_workers_unavailable(
        self, monkeypatch, serial_render
    ):
        def boom(*args, **kwargs):
            raise OSError("no forking allowed")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", boom)
        degraded = render(ExperimentContext(max_packets=TINY, jobs=4))
        assert degraded == serial_render


class TestCacheDeterminism:
    def test_warm_rerun_identical_and_fully_cached(
        self, tmp_path, serial_render
    ):
        cache_dir = tmp_path / "cache"
        cold_ctx = ExperimentContext(max_packets=TINY, cache=RunCache(cache_dir))
        cold = render(cold_ctx)
        assert cold == serial_render
        assert cold_ctx.engine.stats.executed == 4  # 2 traces x 2 protocols

        warm_ctx = ExperimentContext(max_packets=TINY, cache=RunCache(cache_dir))
        warm = render(warm_ctx)
        assert warm == cold
        assert warm_ctx.engine.stats.executed == 0
        assert warm_ctx.engine.cache.stats.hits == 4
        assert warm_ctx.engine.cache.stats.misses == 0

    def test_config_change_misses_cache(self, tmp_path, serial_render):
        cache_dir = tmp_path / "cache"
        ExperimentContext(max_packets=TINY, cache=RunCache(cache_dir)).run(
            TRACES[0], "srm"
        )
        changed = ExperimentContext(
            config=SimulationConfig(reorder_delay=0.05),
            max_packets=TINY,
            cache=RunCache(cache_dir),
        )
        changed.run(TRACES[0], "srm")
        assert changed.engine.stats.executed == 1
        assert changed.engine.cache.stats.hits == 0

    def test_source_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        first = ExperimentContext(max_packets=TINY, cache=RunCache(cache_dir))
        first.run(TRACES[0], "srm")
        assert first.engine.stats.executed == 1

        monkeypatch.setattr(
            pool_mod, "source_fingerprint", lambda root=None: "0" * 64
        )
        stale = ExperimentContext(max_packets=TINY, cache=RunCache(cache_dir))
        stale.run(TRACES[0], "srm")
        assert stale.engine.stats.executed == 1  # recomputed, not served stale
        assert stale.engine.cache.stats.invalidations == 1


class TestEngineBatching:
    def test_duplicate_specs_execute_once(self, tmp_path):
        ctx = ExperimentContext(
            max_packets=TINY, cache=RunCache(tmp_path / "cache")
        )
        ctx.prefetch([(TRACES[0], "srm"), (TRACES[0], "srm")])
        assert ctx.engine.stats.executed == 1

    def test_results_keep_input_order(self):
        config = SimulationConfig(seed=0, max_packets=TINY)
        jobs = [
            RunJob(trace, protocol, config, 0, TINY)
            for trace in TRACES
            for protocol in ("srm", "cesrm")
        ]
        results = ExecutionEngine().execute(jobs)
        assert [(r.trace_name, r.protocol) for r in results] == [
            (j.trace, j.protocol) for j in jobs
        ]

    def test_memoization_preserved(self):
        ctx = ExperimentContext(max_packets=TINY)
        assert ctx.run(TRACES[0], "srm") is ctx.run(TRACES[0], "srm")
