"""The generative topology registry (:mod:`repro.net.families`)."""

import pytest

from repro.net.families import (
    TopologyError,
    all_topology_specs,
    build_topology,
    canonical_topology_spec,
    get_topology_spec,
    parse_topology_spec,
    synthesize_topology_trace,
    topology_names,
)
from repro.net.topology import NodeKind


class TestRegistry:
    def test_builtin_families_listed(self):
        for name in ("tree", "transit_stub", "random_tree", "fat_tree"):
            assert name in topology_names()

    def test_specs_carry_docs_and_tags(self):
        for spec in all_topology_specs():
            assert spec.description
            assert set(spec.params_doc) == set(spec.defaults)
        assert get_topology_spec("tree").calibrated
        assert not get_topology_spec("transit_stub").calibrated

    def test_unknown_family_rejected(self):
        with pytest.raises(TopologyError):
            get_topology_spec("mesh")
        with pytest.raises(TopologyError):
            build_topology("mesh:size=4")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TopologyError, match="unknown parameter"):
            parse_topology_spec("transit_stub:transits=2,depth=3")

    def test_canonical_spec_sorts_user_params_only(self):
        assert canonical_topology_spec(
            "transit_stub:stubs=2,transits=4"
        ) == canonical_topology_spec("transit_stub:transits=4,stubs=2")
        # defaults stay implicit
        assert "hosts" not in canonical_topology_spec("transit_stub:transits=4")


class TestShapes:
    def test_transit_stub_counts(self):
        tree = build_topology("transit_stub:transits=3,stubs=4,hosts=5")
        assert len(tree.receivers) == 3 * 4 * 5
        # three-tier: source -> transit chain -> stubs -> hosts
        assert tree.kind("t1") is NodeKind.ROUTER
        assert tree.parent("t2") == "t1"
        assert tree.parent("u2_1") == "t2"

    def test_fat_tree_counts(self):
        tree = build_topology("fat_tree:k=4")
        assert len(tree.receivers) == 4**3 // 4

    def test_random_tree_is_seed_deterministic(self):
        a = build_topology("random_tree:receivers=32", seed=5)
        b = build_topology("random_tree:receivers=32", seed=5)
        c = build_topology("random_tree:receivers=32", seed=6)
        assert a.receivers == b.receivers
        assert {r: a.parent(r) for r in a.receivers} == {
            r: b.parent(r) for r in b.receivers
        }
        assert {r: a.parent(r) for r in a.receivers} != {
            r: c.parent(r) for r in c.receivers
        }

    def test_receiver_caps_enforced(self):
        with pytest.raises(TopologyError, match="unreasonably large"):
            build_topology("tree:depth=7,fanout=8")
        with pytest.raises(TopologyError, match="cap"):
            build_topology("transit_stub:transits=200,stubs=200,hosts=200")
        with pytest.raises(TopologyError, match="cap"):
            build_topology("random_tree:receivers=100000")


class TestSynthesis:
    def test_trace_named_canonically(self):
        trace = synthesize_topology_trace("transit_stub:stubs=2,transits=2")
        assert trace.trace.name == canonical_topology_spec(
            "transit_stub:transits=2,stubs=2"
        )

    def test_scale_family_trace_deterministic(self):
        spec = "transit_stub:transits=2,stubs=2,hosts=3,packets=50"
        a = synthesize_topology_trace(spec, seed=3, max_packets=50)
        b = synthesize_topology_trace(spec, seed=3, max_packets=50)
        assert a.trace.loss_seqs == b.trace.loss_seqs

    def test_shared_parameter_validation(self):
        with pytest.raises(TopologyError, match="loss"):
            synthesize_topology_trace("transit_stub:loss=1.5")
        with pytest.raises(TopologyError, match="positive"):
            synthesize_topology_trace("fat_tree:k=4,packets=0")
