#!/usr/bin/env python
"""Quickstart: SRM vs CESRM on a small bursty-loss multicast session.

Builds a balanced 8-receiver multicast tree, synthesizes a short bursty
transmission over it, runs both protocols on identical losses, and prints
the headline comparison: recovery latency (in receiver RTTs to the source)
and recovery traffic.

Run:  python examples/quickstart.py
"""

from repro.api import (
    PacketKind,
    SimulationConfig,
    SynthesisParams,
    mean,
    run_trace,
    synthesize_trace,
)


def main() -> None:
    # A made-up session: 10 receivers behind a 4-deep tree, 2500 packets at
    # 25 pps, with ~8% of receiver-packets lost in bursts.
    params = SynthesisParams(
        name="quickstart",
        n_receivers=10,
        tree_depth=4,
        period=0.040,
        n_packets=2500,
        target_losses=2000,
    )
    synthetic = synthesize_trace(params, seed=7)
    trace = synthetic.trace
    print(f"trace: {trace.n_packets} packets, {trace.total_losses} losses "
          f"across {len(trace.tree.receivers)} receivers\n")

    config = SimulationConfig(seed=7)
    results = {p: run_trace(synthetic, p, config) for p in ("srm", "cesrm")}

    print(f"{'':14s}{'avg recovery':>14s}{'repair traffic':>16s}{'requests':>10s}")
    print(f"{'':14s}{'(RTTs)':>14s}{'(link units)':>16s}{'(pkts)':>10s}")
    for protocol, res in results.items():
        latency = mean([res.avg_normalized_recovery_time(r) for r in res.receivers])
        requests = res.metrics.total_sends(PacketKind.RQST) + res.metrics.total_sends(
            PacketKind.ERQST
        )
        print(
            f"{protocol:14s}{latency:14.2f}{res.overhead.retransmissions:16d}"
            f"{requests:10d}"
        )

    srm, cesrm = results["srm"], results["cesrm"]
    lat_srm = mean([srm.avg_normalized_recovery_time(r) for r in srm.receivers])
    lat_ces = mean([cesrm.avg_normalized_recovery_time(r) for r in cesrm.receivers])
    print(
        f"\nCESRM recovers {100 * (1 - lat_ces / lat_srm):.0f}% faster, "
        f"with {100 * cesrm.metrics.expedited_success_rate:.0f}% of expedited "
        f"recoveries succeeding."
    )
    assert srm.unrecovered_losses == 0 and cesrm.unrecovered_losses == 0, (
        "both protocols are fully reliable"
    )


if __name__ == "__main__":
    main()
