#!/usr/bin/env python
"""The paper's §4 methodology end-to-end on one trace.

This walks the complete trace-driven pipeline exactly as §4.1–4.3 describe:

1. obtain a transmission trace (here: synthesized to the WRN951113 row of
   Table 1 — receivers, depth, period, loss volume);
2. estimate per-link loss rates from the observed per-receiver sequences,
   with both estimators the paper cites (Yajnik et al. subtree method and
   the Cáceres et al. MLE) and compare them;
3. attribute every observed loss pattern to its most probable link
   combination, reporting the §4.2 accuracy statistic (fraction of
   selected combinations with posterior > 95%);
4. replay the transmission, injecting losses on the attributed links, and
   compare SRM vs CESRM recovery.

Run:  python examples/trace_study.py
"""

from repro.api import (
    Attributor,
    SimulationConfig,
    SyntheticTrace,
    estimate_link_rates_mle,
    estimate_link_rates_subtree,
    mean,
    run_trace,
    synthesize_trace,
    trace_meta,
)

MAX_PACKETS = 4000


def main() -> None:
    # -- 1. the trace -----------------------------------------------------
    meta = trace_meta("WRN951113")
    synthetic = synthesize_trace(meta, seed=0, max_packets=MAX_PACKETS)
    trace = synthetic.trace
    print(f"trace {trace.name}: {trace.n_packets} packets, "
          f"{trace.total_losses} losses, tree depth {trace.tree.depth}, "
          f"{len(trace.tree.receivers)} receivers")

    # -- 2. link-loss inference (§4.2) ------------------------------------
    subtree_rates = estimate_link_rates_subtree(trace)
    mle_rates = estimate_link_rates_mle(trace)
    agreement = max(
        abs(subtree_rates[link] - mle_rates[link]) for link in subtree_rates
    )
    truth_error = max(
        abs(subtree_rates[link] - synthetic.link_rates[link])
        for link in subtree_rates
    )
    print(f"\nlink-rate estimators: max |subtree - MLE| = {agreement:.4f} "
          f"(the paper found the two 'very similar')")
    print(f"max |subtree - ground truth| = {truth_error:.4f}")
    hottest = sorted(subtree_rates.items(), key=lambda kv: -kv[1])[:3]
    print("hottest links:", ", ".join(f"{u}->{v}: {p:.3f}" for (u, v), p in hottest))

    # -- 3. loss-pattern attribution (§4.2) --------------------------------
    attributor = Attributor(trace.tree, subtree_rates)
    attribution = attributor.attribute_trace(trace)
    print(f"\nattribution: {len(attribution.combos)} lossy packets, "
          f"{attribution.distinct_patterns} distinct patterns")
    print(f"selected combinations with posterior > 95%: "
          f"{100 * attribution.posterior_fraction_above(0.95):.0f}% "
          f"(paper: >90% on 13 of 14 traces)")

    # every selected combination must reproduce its observed pattern
    for packet, combo in attribution.combos.items():
        assert attributor.pattern_of_combo(combo) == trace.loss_pattern(packet)

    # -- 4. trace-driven replay (§4.3) -------------------------------------
    inferred = SyntheticTrace(
        trace=trace, link_rates=subtree_rates, link_combos=dict(attribution.combos)
    )
    config = SimulationConfig(max_packets=MAX_PACKETS)
    print("\nreplay (losses injected on the *inferred* links):")
    for protocol in ("srm", "cesrm"):
        res = run_trace(inferred, protocol, config)
        lat = mean([res.avg_normalized_recovery_time(r) for r in res.receivers])
        print(f"  {protocol:6s} avg recovery {lat:5.2f} RTT, "
              f"retx units {res.overhead.retransmissions}, "
              f"unrecovered {res.unrecovered_losses}")


if __name__ == "__main__":
    main()
