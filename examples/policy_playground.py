#!/usr/bin/env python
"""Selection policies and cache sizing (§3.2), including a custom policy.

CESRM leaves the expeditious-pair selection policy open.  This example:

1. compares the paper's two built-in policies (most-recent-loss vs
   most-frequent-loss) over several traces;
2. sweeps the cache capacity (most-recent needs just one entry);
3. implements a *custom* policy through the public
   :class:`repro.SelectionPolicy` interface and registers it with
   :func:`repro.register_policy` — picking the cached pair with the
   smallest recovery delay — to show how downstream users experiment.

Run:  python examples/policy_playground.py
"""

from repro.api import (
    RecoveryPairCache,
    RecoveryTuple,
    SelectionPolicy,
    SimulationConfig,
    mean,
    register_policy,
    run_trace,
    synthesize_trace,
    trace_meta,
)

TRACES = ("RFV960419", "WRN951128", "WRN951216")
MAX_PACKETS = 3000


@register_policy
class FastestPairPolicy(SelectionPolicy):
    """Pick the cached tuple with the minimum §3.1 recovery delay."""

    name = "fastest-pair"

    def select(self, cache: RecoveryPairCache) -> RecoveryTuple | None:
        entries = cache.entries()
        if not entries:
            return None
        return min(entries, key=lambda t: t.recovery_delay)


def summarize(res) -> tuple[float, float]:
    lat = mean([res.avg_normalized_recovery_time(r) for r in res.receivers])
    return lat, 100.0 * res.metrics.expedited_success_rate


def main() -> None:
    print("— policy comparison (cache capacity 16) —")
    print(f"{'trace':12s}{'policy':16s}{'avg lat (RTT)':>14s}{'exp succ':>10s}")
    for name in TRACES:
        synthetic = synthesize_trace(trace_meta(name), seed=0, max_packets=MAX_PACKETS)
        for policy in ("most-recent", "most-frequent", "fastest-pair"):
            cfg = SimulationConfig(max_packets=MAX_PACKETS, policy=policy)
            lat, succ = summarize(run_trace(synthetic, "cesrm", cfg))
            print(f"{name:12s}{policy:16s}{lat:14.2f}{succ:9.0f}%")

    print("\n— cache capacity sweep (most-recent policy, WRN951128) —")
    synthetic = synthesize_trace(
        trace_meta("WRN951128"), seed=0, max_packets=MAX_PACKETS
    )
    for capacity in (1, 4, 16, 64):
        cfg = SimulationConfig(max_packets=MAX_PACKETS, cache_capacity=capacity)
        lat, succ = summarize(run_trace(synthetic, "cesrm", cfg))
        print(f"  capacity {capacity:3d}: avg lat {lat:5.2f} RTT, "
              f"expedited success {succ:.0f}%")
    print("\nThe most-recent policy is insensitive to capacity — exactly why "
          "the paper calls out its single-entry implementation (§4.3).")


if __name__ == "__main__":
    main()
