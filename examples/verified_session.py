#!/usr/bin/env python
"""A CESRM session under runtime verification, with a recovery timeline.

CESRM grew out of a formal-verification effort (the paper's [10]/[11]
model the protocols as timed I/O automata).  This example runs a bursty
session with the :class:`repro.InvariantMonitor` checking the executable
protocol invariants every 20 simulated milliseconds — any state-machine
bug would abort the run at the exact simulated instant it appears — and
then prints a per-packet recovery timeline for the worst-hit receiver.

Run:  python examples/verified_session.py
"""

from repro.api import (
    InvariantMonitor,
    RunResult,
    SimulationConfig,
    SynthesisParams,
    build_simulation,
    overhead_breakdown,
    render_recovery_timeline,
    synthesize_trace,
)

MAX_PACKETS = 1500


def main() -> None:
    params = SynthesisParams(
        name="verified",
        n_receivers=8,
        tree_depth=4,
        period=0.08,
        n_packets=MAX_PACKETS,
        target_losses=900,
    )
    synthetic = synthesize_trace(params, seed=21)
    config = SimulationConfig()
    simulation = build_simulation(synthetic, "cesrm", config)

    monitor = InvariantMonitor(simulation.sim, simulation.agents, period=0.02)
    monitor.start()
    simulation.sim.run(until=simulation.end_time)
    monitor.stop()

    trace = synthetic.trace
    print(f"session verified: {monitor.checks_run} invariant sweeps x "
          f"{len(monitor.invariants)} invariants x {len(simulation.agents)} "
          f"agents — no violations\n")

    # Build a RunResult-shaped view for the renderer.
    result = RunResult(
        protocol="cesrm",
        trace_name=trace.name,
        config=config,
        receivers=trace.tree.receivers,
        source=trace.tree.source,
        metrics=simulation.metrics,
        overhead=overhead_breakdown(simulation.network.crossings),
        crossings_snapshot=simulation.network.crossings.snapshot(),
        rtt_to_source={
            r: simulation.agents[r].rtt_to_source() for r in trace.tree.receivers
        },
    )
    worst = max(
        trace.tree.receivers,
        key=lambda r: len(simulation.metrics.recoveries.get(r, [])),
    )
    print(render_recovery_timeline(result, worst, max_rows=18))
    total = len(simulation.metrics.recoveries.get(worst, []))
    expedited = sum(
        1 for rec in simulation.metrics.recoveries.get(worst, []) if rec.expedited
    )
    print(f"\n{worst}: {total} recoveries, {expedited} expedited "
          f"({100 * expedited / max(total, 1):.0f}%)")


if __name__ == "__main__":
    main()
