#!/usr/bin/env python
"""Router-assisted CESRM (§3.3): localized expedited recovery.

Plain CESRM multicasts every expedited reply to the whole group — every
receiver pays for every repair.  With two light router capabilities
(turning-point annotation + subcast), expedited replies reach only the
subtree where the loss happened.  This example measures the *exposure*
difference: link-crossing units consumed by expedited replies, and how many
uninvolved receivers see each repair.

Run:  python examples/router_assisted.py
"""

from repro.api import SimulationConfig, mean, run_trace, synthesize_trace, trace_meta

TRACES = ("RFV960419", "WRN951113", "WRN951211")
MAX_PACKETS = 3000


def main() -> None:
    config = SimulationConfig(max_packets=MAX_PACKETS)
    print(f"{'trace':12s}{'protocol':15s}{'EREPL crossings':>16s}"
          f"{'retx units':>12s}{'avg lat (RTT)':>15s}")
    for name in TRACES:
        synthetic = synthesize_trace(trace_meta(name), seed=0, max_packets=MAX_PACKETS)
        baseline_erepl = None
        for protocol in ("cesrm", "cesrm-router"):
            res = run_trace(synthetic, protocol, config)
            erepl = sum(
                n for (kind, _), n in res.crossings_snapshot.items() if kind == "erepl"
            )
            lat = mean([res.avg_normalized_recovery_time(r) for r in res.receivers])
            marker = ""
            if protocol == "cesrm":
                baseline_erepl = erepl
            elif baseline_erepl:
                marker = f"  ({100 * erepl / baseline_erepl:.0f}% of plain CESRM)"
            print(f"{name:12s}{protocol:15s}{erepl:16d}"
                  f"{res.overhead.retransmissions:12d}{lat:15.2f}{marker}")
            assert res.unrecovered_losses == 0, "reliability must be preserved"
    print("\nSubcast keeps repairs inside the loss subtree: same latency and "
          "reliability, a fraction of the exposure — with zero per-router "
          "replier state (unlike LMS).")


if __name__ == "__main__":
    main()
