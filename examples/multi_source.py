#!/usr/bin/env python
"""Multi-source session: the shared-whiteboard scenario that motivated SRM.

SRM (and therefore CESRM) is an *any-source* reliable multicast protocol:
every participant can publish its own stream into the group, and every
host keeps per-source reception state — and, in CESRM, per-source
requestor/replier caches (§3.1).  This example runs a 10-receiver session
where the root plus two receivers all publish streams under correlated
bursty loss, and shows CESRM recovering all three streams with per-source
expedited recovery.

Run:  python examples/multi_source.py
"""

from repro.api import (
    CesrmAgent,
    GilbertModel,
    MetricsCollector,
    Network,
    PacketKind,
    RngRegistry,
    SimulationConfig,
    Simulator,
    SrmParams,
    build_random_tree,
    make_policy,
)

N_PACKETS = 600
PERIOD = 0.1
SENDERS_EXTRA = ("r2", "r7")  # receivers that also publish streams


def main() -> None:
    registry = RngRegistry(11)
    tree = build_random_tree(10, 4, registry.stream("topology"))
    sim = Simulator()
    network = Network(sim, tree)
    metrics = MetricsCollector()
    config = SimulationConfig()

    agents = {
        host: CesrmAgent(
            sim=sim,
            network=network,
            host_id=host,
            source=tree.source,
            params=SrmParams(),
            rng=registry.stream(f"agent:{host}"),
            metrics=metrics,
            policy=make_policy("most-recent"),
        )
        for host in tree.hosts
    }
    for index, host in enumerate(tree.hosts):
        agents[host].start(session_offset=(index + 0.5) / (len(tree.hosts) + 1))

    # Bursty losses on two tail links, applied to every stream crossing them.
    lossy_links = [link for link in tree.links if link[1] in tree.receivers][:2]
    processes = {
        link: GilbertModel.from_rate_and_burst(0.08, 6.0) for link in lossy_links
    }
    drop_rng = registry.stream("drops")
    drop_state: dict[tuple, bytes] = {
        link: model.sample(3 * N_PACKETS, drop_rng)
        for link, model in processes.items()
    }
    counters: dict[tuple, int] = {link: 0 for link in lossy_links}

    def drop_fn(u, v, packet) -> bool:
        if packet.kind is not PacketKind.DATA or (u, v) not in drop_state:
            return False
        index = counters[(u, v)]
        counters[(u, v)] += 1
        return bool(drop_state[(u, v)][index % (3 * N_PACKETS)])

    network.drop_fn = drop_fn

    senders = [tree.source, *SENDERS_EXTRA]
    t0 = config.transmission_start
    for offset, sender in enumerate(senders):
        for seq in range(N_PACKETS):
            sim.schedule_at(
                t0 + seq * PERIOD + offset * PERIOD / len(senders),
                agents[sender].send_data,
                seq,
            )

    sim.run(until=t0 + N_PACKETS * PERIOD + 30.0)

    print(f"session: {len(tree.receivers)} receivers, "
          f"{len(senders)} concurrent senders x {N_PACKETS} packets\n")
    print(f"{'stream':>8s} {'losses':>8s} {'recovered':>10s} {'warm caches':>12s}")
    for sender in senders:
        losses = 0
        for host, agent in agents.items():
            if host == sender:
                continue
            losses += len(agent.source_state(sender).stream.ever_lost)
            assert agent.unrecovered_losses(sender) == [], (host, sender)
        warm_caches = sum(
            1 for agent in agents.values() if len(agent.cache_for(sender))
        )
        print(f"{sender:>8s} {losses:8d} {'all':>10s} {warm_caches:12d}")

    total_erqst = metrics.total_sends(PacketKind.ERQST)
    total_erepl = metrics.total_sends(PacketKind.EREPL)
    print(f"\nexpedited requests {total_erqst}, replies {total_erepl} "
          f"(success {100 * total_erepl / max(total_erqst, 1):.0f}%)")
    print("every stream fully recovered at every host — per-source caches "
          "let CESRM expedite all three streams independently.")


if __name__ == "__main__":
    main()
