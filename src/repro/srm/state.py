"""Per-packet recovery state kept by an SRM host.

A host missing a packet holds a :class:`RequestState` (request timer,
back-off count, abstinence deadline); a host asked to retransmit holds a
:class:`ReplyState` (reply timer, requestor bookkeeping, abstinence
deadline).  The states are plain mutable records — the scheduling logic
lives in :class:`repro.srm.agent.SrmAgent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.timers import Timer


@dataclass
class RequestState:
    """Recovery bookkeeping for one packet a host is missing.

    Attributes
    ----------
    timer:
        The pending request timer.
    backoff:
        The exponent ``k`` used for the *currently scheduled* request: 0
        for the first schedule, incremented on every transmission or
        suppression-triggered reschedule.
    abstain_until:
        End of the back-off abstinence period; foreign requests arriving
        earlier belong to the current round and are discarded (§2.1).
    detected_at:
        When the loss was detected — the recovery-latency clock origin.
    requests_sent:
        Number of repair requests this host multicast for the packet.
    """

    timer: Timer
    detected_at: float
    backoff: int = 0
    abstain_until: float = -1.0
    requests_sent: int = 0


@dataclass
class ReplyState:
    """Reply bookkeeping for one packet at a host able to retransmit it.

    Attributes
    ----------
    timer:
        The pending reply timer (None when not scheduled).
    requestor:
        The host whose request instigated the scheduled reply.
    requestor_dist_to_source:
        The requestor's advertised distance to the source (annotation
        copied from request to reply, feeding CESRM's caches).
    hold_until:
        End of the reply abstinence period: while ``now < hold_until`` a
        reply is *pending* and further requests are discarded (§2.2).
    """

    timer: Timer | None = None
    requestor: str | None = None
    requestor_dist_to_source: float = 0.0
    hold_until: float = -1.0
    replies_sent: int = 0

    def scheduled(self) -> bool:
        """True while a reply transmission is scheduled."""
        return self.timer is not None and self.timer.armed

    def pending(self, now: float) -> bool:
        """True while a reply is considered pending (abstinence, §2.2)."""
        return now < self.hold_until


@dataclass
class StreamState:
    """Reception state for one source's data stream at one host."""

    max_seq: int = -1
    received: set[int] = field(default_factory=set)
    ever_lost: set[int] = field(default_factory=set)
    duplicates: int = 0

    def has(self, seq: int) -> bool:
        return seq in self.received

    def missing(self) -> list[int]:
        """Sequence numbers at or below ``max_seq`` not yet received."""
        return [s for s in range(self.max_seq + 1) if s not in self.received]
