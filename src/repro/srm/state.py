"""Per-packet recovery state kept by an SRM host.

A host missing a packet holds a :class:`RequestState` (request timer,
back-off count, abstinence deadline); a host asked to retransmit holds a
:class:`ReplyState` (reply timer, requestor bookkeeping, abstinence
deadline).  The states are plain mutable records — the scheduling logic
lives in :class:`repro.srm.agent.SrmAgent`.

Scale: these records exist per host (times per missing packet for the
recovery states), so at 10^5 receivers their footprint dominates the
run's RSS.  All of them are ``__slots__`` dataclasses, and the per-stream
reception sets are :class:`SeqSet` bitmaps — sequence numbers are dense
(``0..max_seq``), so a bytearray bit per seqno replaces ~32 bytes per
hash-table entry while keeping the exact ``set`` operations the kernel
uses (``add``/``in``/``len``/truthiness/iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.sim.timers import Timer


class SeqSet:
    """A set of non-negative sequence numbers backed by a bitmap.

    Supports the operations the recovery kernel, the invariant monitor,
    and the tests perform on reception state: ``add``, ``in``, ``len``,
    truthiness, ascending iteration (``max()``/``sorted()`` work), and
    being the right operand of ``set - seqset``.  Removal is deliberately
    absent — reception state only grows.
    """

    __slots__ = ("_bits", "_len")

    def __init__(self, seqs: Iterable[int] = ()) -> None:
        self._bits = bytearray()
        self._len = 0
        for seq in seqs:
            self.add(seq)

    def add(self, seq: int) -> None:
        if seq < 0:
            raise ValueError(f"SeqSet holds non-negative seqnos, got {seq}")
        byte = seq >> 3
        bits = self._bits
        if byte >= len(bits):
            bits.extend(b"\0" * (byte + 1 - len(bits)))
        mask = 1 << (seq & 7)
        if not bits[byte] & mask:
            bits[byte] |= mask
            self._len += 1

    def __contains__(self, seq: int) -> bool:
        byte = seq >> 3
        bits = self._bits
        return 0 <= byte < len(bits) and bits[byte] >> (seq & 7) & 1 == 1

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[int]:
        for byte_index, byte in enumerate(self._bits):
            if byte:
                base = byte_index << 3
                for bit in range(8):
                    if byte >> bit & 1:
                        yield base + bit

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SeqSet):
            return self._len == other._len and set(self) == set(other)
        if isinstance(other, (set, frozenset)):
            return self._len == len(other) and set(self) == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] — mutable, like set

    def __rsub__(self, other: set) -> set:
        """``set - seqset`` (the invariant monitor's difference check)."""
        return {seq for seq in other if seq not in self}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeqSet({sorted(self)!r})"


@dataclass(slots=True)
class RequestState:
    """Recovery bookkeeping for one packet a host is missing.

    Attributes
    ----------
    timer:
        The pending request timer.
    backoff:
        The exponent ``k`` used for the *currently scheduled* request: 0
        for the first schedule, incremented on every transmission or
        suppression-triggered reschedule.
    abstain_until:
        End of the back-off abstinence period; foreign requests arriving
        earlier belong to the current round and are discarded (§2.1).
    detected_at:
        When the loss was detected — the recovery-latency clock origin.
    requests_sent:
        Number of repair requests this host multicast for the packet.
    """

    timer: Timer
    detected_at: float
    backoff: int = 0
    abstain_until: float = -1.0
    requests_sent: int = 0


@dataclass(slots=True)
class ReplyState:
    """Reply bookkeeping for one packet at a host able to retransmit it.

    Attributes
    ----------
    timer:
        The pending reply timer (None when not scheduled).
    requestor:
        The host whose request instigated the scheduled reply.
    requestor_dist_to_source:
        The requestor's advertised distance to the source (annotation
        copied from request to reply, feeding CESRM's caches).
    hold_until:
        End of the reply abstinence period: while ``now < hold_until`` a
        reply is *pending* and further requests are discarded (§2.2).
    """

    timer: Timer | None = None
    requestor: str | None = None
    requestor_dist_to_source: float = 0.0
    hold_until: float = -1.0
    replies_sent: int = 0

    def scheduled(self) -> bool:
        """True while a reply transmission is scheduled."""
        return self.timer is not None and self.timer.armed

    def pending(self, now: float) -> bool:
        """True while a reply is considered pending (abstinence, §2.2)."""
        return now < self.hold_until


@dataclass(slots=True)
class StreamState:
    """Reception state for one source's data stream at one host."""

    max_seq: int = -1
    received: SeqSet = field(default_factory=SeqSet)
    ever_lost: SeqSet = field(default_factory=SeqSet)
    duplicates: int = 0

    def has(self, seq: int) -> bool:
        return seq in self.received

    def missing(self) -> list[int]:
        """Sequence numbers at or below ``max_seq`` not yet received."""
        return [s for s in range(self.max_seq + 1) if s not in self.received]
