"""The SRM protocol agent (§2).

One :class:`SrmAgent` runs at every host (senders and receivers alike —
SRM is an *any-source* protocol, and every piece of per-stream state is
kept **per source**, exactly as the paper's "collection of per-source
requestor/replier caches" prescribes for CESRM).  The agent implements:

* data transmission (any host may source a stream) and in-order gap-based
  loss detection per source;
* secondary loss detection from session-message sequence reports and —
  matching the classic ns-2 implementation — from repair requests seen for
  packets the host does not have;
* request scheduling with deterministic + probabilistic suppression,
  exponential back-off, and the back-off abstinence period (§2.1);
* reply scheduling with suppression and the reply abstinence period (§2.2);
* periodic session-message exchange and distance estimation.

Subclass hooks (all no-ops here) let CESRM attach its expedited recovery
scheme without duplicating any of the SRM machinery:
``_after_loss_detected``, ``_on_reply_observed``, ``_on_packet_obtained``,
and ``_on_expedited_request``.

Single-source convenience: the ``source`` constructor argument names the
*primary* source (the root sender in the paper's trace replays); the
``stream`` / ``request_states`` / ``reply_states`` properties expose that
source's state directly, and per-source variants take an explicit source
id.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Packet, PacketKind
from repro.obs.events import EventKind
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.srm.constants import SrmParams
from repro.srm.session import DistanceEstimator, SessionReport
from repro.srm.state import ReplyState, RequestState, StreamState

# Members bound once at import: :meth:`SrmAgent.receive` compares by
# identity against these on every delivery, and a module global is
# cheaper than an enum attribute lookup (or the ``is_retransmission``
# property, which is a Python-level call) on that path.
_DATA = PacketKind.DATA
_SESSION = PacketKind.SESSION
_RQST = PacketKind.RQST
_ERQST = PacketKind.ERQST
_REPL = PacketKind.REPL
_EREPL = PacketKind.EREPL


@dataclass(slots=True)
class SourceState:
    """Everything a host tracks about one source's stream."""

    stream: StreamState = field(default_factory=StreamState)
    request_states: dict[int, RequestState] = field(default_factory=dict)
    reply_states: dict[int, ReplyState] = field(default_factory=dict)


class SrmAgent:
    """An SRM endpoint attached at one host of the multicast tree.

    Parameters
    ----------
    sim, network:
        The simulation engine and the network this host is attached to.
    host_id:
        This host's node id in the tree.
    source:
        The primary transmission source (used for the single-source
        convenience accessors and RTT normalization).
    params:
        SRM scheduling constants.
    rng:
        The random stream used for all timer jitter at this host.
    metrics:
        Shared per-run metrics collector.
    session_period:
        Session message period in seconds (paper: 1 s).
    detect_on_request:
        When True (default, matching ns-2 SRM), seeing a repair request for
        a packet this host does not have counts as detecting the loss; the
        fresh request is scheduled already backed off (suppressed by the
        request just heard).
    """

    protocol_name = "srm"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_id: str,
        source: str,
        params: SrmParams,
        rng: random.Random,
        metrics: MetricsCollector,
        session_period: float = 1.0,
        detect_on_request: bool = True,
    ) -> None:
        self.sim = sim
        self.net = network
        self.host_id = host_id
        self.primary_source = source
        self.params = params
        self.rng = rng
        self.metrics = metrics
        self.session_period = session_period
        self.detect_on_request = detect_on_request

        self.is_source = host_id == source
        self.failed = False
        #: Fault injection (repro.faults): while True, periodic session
        #: reports are swallowed before they reach the wire.
        self.session_muted = False
        self.sessions_suppressed = 0
        self.distances = DistanceEstimator(host_id)
        self._sources: dict[str, SourceState] = {}
        self._session_timer = PeriodicTimer(sim, session_period, self._send_session)

        network.attach(host_id, self)

    # ------------------------------------------------------------------
    # Per-source state
    # ------------------------------------------------------------------
    def source_state(self, source: str) -> SourceState:
        """This host's state for ``source``'s stream (created on demand)."""
        state = self._sources.get(source)
        if state is None:
            state = SourceState()
            self._sources[source] = state
        return state

    def known_sources(self) -> list[str]:
        """Sources this host has seen traffic (or reports) for."""
        return list(self._sources)

    # -- single-source convenience accessors ---------------------------
    @property
    def stream(self) -> StreamState:
        """The primary source's reception state."""
        return self.source_state(self.primary_source).stream

    @property
    def request_states(self) -> dict[int, RequestState]:
        """The primary source's per-packet request states."""
        return self.source_state(self.primary_source).request_states

    @property
    def reply_states(self) -> dict[int, ReplyState]:
        """The primary source's per-packet reply states."""
        return self.source_state(self.primary_source).reply_states

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, session_offset: float = 0.0) -> None:
        """Begin session-message exchange; first message at ``offset``."""
        self._session_timer.start(first_delay=session_offset)

    def fail(self) -> None:
        """Crash this host: it stops sending, replying, and recovering.

        Models the membership churn of §3.3/§5 — a crashed member neither
        answers (expedited) requests nor continues its own recoveries.
        Packets delivered to a failed host are silently dropped.
        """
        self.failed = True
        self.stop()

    def restart(self) -> None:
        """Recover from :meth:`fail`: the host rejoins the group with its
        pre-crash reception state (a warm process restart) and resumes
        session exchange.  Pending recoveries were abandoned by the crash;
        later traffic or session reports re-detect anything still missing.
        """
        if not self.failed:
            return
        self.failed = False
        self._session_timer.start()

    def stop(self) -> None:
        """Stop periodic activity (end of run)."""
        self._session_timer.stop()
        for state in self._sources.values():
            for request in state.request_states.values():
                request.timer.cancel()
            for reply in state.reply_states.values():
                if reply.timer is not None:
                    reply.timer.cancel()

    def unrecovered_losses(self, source: str | None = None) -> list[int]:
        """Packets still under recovery (detected but never repaired)."""
        source = source or self.primary_source
        return sorted(self.source_state(source).request_states)

    # ------------------------------------------------------------------
    # Sending data (any host may source its own stream)
    # ------------------------------------------------------------------
    def send_data(self, seqno: int) -> None:
        """Multicast an original data packet of this host's own stream."""
        if self.failed:
            return
        state = self.source_state(self.host_id)
        state.stream.received.add(seqno)
        state.stream.max_seq = max(state.stream.max_seq, seqno)
        packet = Packet(
            kind=PacketKind.DATA,
            origin=self.host_id,
            source=self.host_id,
            seqno=seqno,
            size_bytes=PAYLOAD_BYTES,
        )
        self.metrics.on_send(self.host_id, packet)
        self.net.multicast(packet)

    # ------------------------------------------------------------------
    # Packet dispatch
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if self.failed:
            return
        kind = packet.kind
        if kind is _DATA:
            self._on_data(packet)
        elif kind is _SESSION:
            self._on_session(packet)
        elif kind is _RQST:
            self._on_request(packet)
        elif kind is _ERQST:
            self._on_expedited_request(packet)
        elif kind is _REPL or kind is _EREPL:
            self._on_reply(packet)
        else:  # pragma: no cover - exhaustive over PacketKind
            raise ValueError(f"unhandled packet kind {kind!r}")

    # ------------------------------------------------------------------
    # Data path and loss detection
    # ------------------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        src = packet.source
        seq = packet.seqno
        # Inline of source_state / StreamState.has / max(): this handler
        # runs once per delivered data packet at every host.
        state = self._sources.get(src)
        if state is None:
            state = self._sources[src] = SourceState()
        stream = state.stream
        if seq in stream.received:
            stream.duplicates += 1
            return
        if seq - 1 > stream.max_seq:
            # Guarded call: _advance_stream is a no-op otherwise (the
            # common in-order case), and the check is one comparison.
            self._advance_stream(src, seq - 1)
        stream.received.add(seq)
        if seq > stream.max_seq:
            stream.max_seq = seq
        request = state.request_states.pop(seq, None)
        if request is not None:
            # The packet was presumed lost but showed up on the data path
            # (possible only with reordering); treat as a zero-cost repair.
            request.timer.cancel()
            self.metrics.on_late_arrival(self.host_id, seq)
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    self.sim.now,
                    EventKind.RECOVERY_LATE_DATA,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                )
        self._on_packet_obtained(src, seq)

    def _advance_stream(self, src: str, new_max: int) -> None:
        """Learn that ``src`` has sent every packet up to ``new_max``; any
        never-received gap at or below it is a detected loss."""
        if src == self.host_id:
            return  # own stream: nothing to detect
        stream = self.source_state(src).stream
        if new_max <= stream.max_seq:
            return
        for seq in range(stream.max_seq + 1, new_max + 1):
            if not stream.has(seq):
                self._detect_loss(seq, src=src)
        stream.max_seq = new_max

    def _detect_loss(
        self, seq: int, initial_backoff: int = 0, src: str | None = None
    ) -> None:
        src = src or self.primary_source
        state = self.source_state(src)
        if seq in state.request_states or state.stream.has(seq):
            return
        now = self.sim.now
        state.stream.ever_lost.add(seq)
        distance = self._distance_to(src)
        request = RequestState(
            timer=Timer(self.sim, self._request_timer_fired, src, seq),
            detected_at=now,
            backoff=initial_backoff,
        )
        state.request_states[seq] = request
        lo, hi = self.params.request_interval(distance, request.backoff)
        request.timer.start(self.rng.uniform(lo, hi))
        if initial_backoff > 0:
            # Detected via a foreign request: that request already opened
            # the round, so observe abstinence as if suppressed by it.
            request.abstain_until = now + self.params.backoff_abstinence(
                distance, request.backoff
            )
        self.metrics.on_loss_detected(self.host_id, seq, now)
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                now,
                EventKind.LOSS_DETECTED,
                node=self.host_id,
                source=src,
                seqno=seq,
                backoff=initial_backoff,
                first_timer=request.timer.expiry,
            )
        self._after_loss_detected(src, seq, request)

    # ------------------------------------------------------------------
    # Request scheduling (§2.1)
    # ------------------------------------------------------------------
    def _request_timer_fired(self, src: str, seq: int) -> None:
        state = self.source_state(src)
        request = state.request_states.get(seq)
        if request is None:  # pragma: no cover - timers cancelled on removal
            return
        distance = self._distance_to(src)
        packet = Packet(
            kind=PacketKind.RQST,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=CONTROL_BYTES,
            requestor=self.host_id,
            requestor_dist=distance,
        )
        self.metrics.on_send(self.host_id, packet)
        self.net.multicast(packet)
        request.requests_sent += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.REQUEST_SENT,
                node=self.host_id,
                source=src,
                seqno=seq,
                round=request.requests_sent,
            )
        # Schedule the next round and enter back-off abstinence.
        request.backoff += 1
        lo, hi = self.params.request_interval(distance, request.backoff)
        request.timer.start(self.rng.uniform(lo, hi))
        request.abstain_until = self.sim.now + self.params.backoff_abstinence(
            distance, request.backoff
        )

    def _on_request(self, packet: Packet) -> None:
        src = packet.source
        seq = packet.seqno
        state = self._sources.get(src)
        if state is None:
            state = self._sources[src] = SourceState()
        if seq - 1 > state.stream.max_seq:
            self._advance_stream(src, seq - 1)
        if seq in state.stream.received:
            self._consider_reply(packet)
            return
        if src == self.host_id:
            return  # request for a packet of our own stream we never sent
        request = state.request_states.get(seq)
        if request is not None:
            if self.sim.now < request.abstain_until:
                return  # same recovery round — do not back off again
            distance = self._distance_to(src)
            request.backoff += 1
            lo, hi = self.params.request_interval(distance, request.backoff)
            request.timer.start(self.rng.uniform(lo, hi))
            request.abstain_until = self.sim.now + self.params.backoff_abstinence(
                distance, request.backoff
            )
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    self.sim.now,
                    EventKind.REQUEST_BACKOFF,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                    suppressed_by=packet.origin,
                    backoff=request.backoff,
                )
            return
        if self.detect_on_request:
            # First news of this packet comes from someone else's request:
            # detect the loss, already suppressed by that request.
            self._detect_loss(seq, initial_backoff=1, src=src)

    # ------------------------------------------------------------------
    # Reply scheduling (§2.2)
    # ------------------------------------------------------------------
    def _consider_reply(self, request: Packet) -> None:
        src = request.source
        seq = request.seqno
        states = self.source_state(src).reply_states
        state = states.get(seq)
        if state is not None and (state.scheduled() or state.pending(self.sim.now)):
            return  # a reply is already scheduled or pending — discard
        requestor = request.requestor or request.origin
        if requestor == self.host_id:
            return
        distance = self.distances.get_or(requestor, self.params.default_distance)
        if state is None:
            state = ReplyState()
            states[seq] = state
        state.requestor = requestor
        state.requestor_dist_to_source = request.requestor_dist
        if state.timer is None:
            state.timer = Timer(self.sim, self._reply_timer_fired, src, seq)
        lo, hi = self.params.reply_interval(distance)
        state.timer.start(self.rng.uniform(lo, hi))
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.REPLY_SCHEDULED,
                node=self.host_id,
                source=src,
                seqno=seq,
                requestor=requestor,
            )

    def _reply_timer_fired(self, src: str, seq: int) -> None:
        state = self.source_state(src).reply_states.get(seq)
        if state is None:  # pragma: no cover - timers are cancelled on removal
            return
        requestor = state.requestor or src
        distance = self.distances.get_or(requestor, self.params.default_distance)
        packet = Packet(
            kind=PacketKind.REPL,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=PAYLOAD_BYTES,
            requestor=requestor,
            requestor_dist=state.requestor_dist_to_source,
            replier=self.host_id,
            replier_dist=distance,
        )
        self.metrics.on_send(self.host_id, packet)
        self.net.multicast(packet)
        state.replies_sent += 1
        state.hold_until = self.sim.now + self.params.reply_abstinence(distance)
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.REPLY_SENT,
                node=self.host_id,
                source=src,
                seqno=seq,
                requestor=requestor,
            )

    def _on_reply(self, packet: Packet) -> None:
        src = packet.source
        seq = packet.seqno
        state = self._sources.get(src)
        if state is None:
            state = self._sources[src] = SourceState()
        stream = state.stream
        if seq - 1 > stream.max_seq:
            self._advance_stream(src, seq - 1)
        sim = self.sim
        now = sim._now
        tracer = sim.tracer
        if seq not in stream.received:
            stream.received.add(seq)
            if seq > stream.max_seq:
                stream.max_seq = seq
            request = state.request_states.pop(seq, None)
            if request is not None:
                request.timer.cancel()
                expedited = packet.kind is _EREPL
                self.metrics.on_recovery(
                    host=self.host_id,
                    seq=seq,
                    latency=now - request.detected_at,
                    expedited=expedited,
                    requests_sent=request.requests_sent,
                )
                if tracer is not None:
                    tracer.emit(
                        now,
                        EventKind.RECOVERY_COMPLETED,
                        node=self.host_id,
                        source=src,
                        seqno=seq,
                        expedited=expedited,
                        latency=now - request.detected_at,
                        replier=packet.replier or packet.origin,
                        requests_sent=request.requests_sent,
                    )
                    tracer.observe("recovery.latency", now - request.detected_at)
            else:
                # Repaired before the gap was even noticed.
                stream.ever_lost.add(seq)
                self.metrics.on_undetected_recovery(self.host_id, seq)
                if tracer is not None:
                    tracer.emit(
                        now,
                        EventKind.RECOVERY_UNDETECTED,
                        node=self.host_id,
                        source=src,
                        seqno=seq,
                    )
            self._on_packet_obtained(src, seq)
        else:
            self.metrics.on_duplicate_reply(self.host_id, seq)
            if tracer is not None:
                tracer.emit(
                    now,
                    EventKind.REPLY_DUPLICATE,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                    replier=packet.replier or packet.origin,
                )
        # Anyone who hears a reply observes reply abstinence (§2.2) and
        # suppresses any reply of their own.
        reply_state = state.reply_states.get(seq)
        if reply_state is None:
            reply_state = ReplyState()
            state.reply_states[seq] = reply_state
        if reply_state.timer is not None:
            if tracer is not None and reply_state.scheduled():
                tracer.emit(
                    now,
                    EventKind.REPLY_SUPPRESSED,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                    suppressed_by=packet.origin,
                )
            reply_state.timer.cancel()
        requestor = packet.requestor or packet.origin
        distance = self.distances.get_or(requestor, self.params.default_distance)
        # reply_abstinence and max() inlined (identical float-op order).
        hold = now + self.params.d3 * distance
        if hold > reply_state.hold_until:
            reply_state.hold_until = hold
        self._on_reply_observed(packet)

    # ------------------------------------------------------------------
    # Session messages (§2, §4.3)
    # ------------------------------------------------------------------
    def _send_session(self) -> None:
        if self.session_muted:
            self.sessions_suppressed += 1
            return
        now = self.sim.now
        max_seqs = {
            src: state.stream.max_seq
            for src, state in self._sources.items()
            if state.stream.max_seq >= 0
        }
        report = SessionReport(
            sender=self.host_id,
            sent_at=now,
            max_seqs=max_seqs,
            echoes=self.distances.build_echoes(now),
        )
        packet = Packet(
            kind=PacketKind.SESSION,
            origin=self.host_id,
            source=self.host_id,
            seqno=-1,
            size_bytes=CONTROL_BYTES,
            payload=report,
        )
        self.metrics.on_send(self.host_id, packet)
        self.net.multicast(packet)

    def _on_session(self, packet: Packet) -> None:
        report: SessionReport = packet.payload
        self.distances.on_session(report, self.sim._now)
        host_id = self.host_id
        sources = self._sources
        for src, reported in report.max_seqs.items():
            if src == host_id:
                continue
            state = sources.get(src)
            if state is None:
                state = sources[src] = SourceState()
            if reported > state.stream.max_seq:
                self._advance_stream(src, reported)

    # ------------------------------------------------------------------
    # Expedited recovery interface (CESRM overrides these)
    # ------------------------------------------------------------------
    def _on_expedited_request(self, packet: Packet) -> None:
        """Plain SRM ignores expedited requests (it never receives any)."""

    def _after_loss_detected(self, src: str, seq: int, state: RequestState) -> None:
        """Hook: called once per newly detected loss."""

    def _on_reply_observed(self, packet: Packet) -> None:
        """Hook: called for every repair reply this host receives."""

    def _on_packet_obtained(self, src: str, seq: int) -> None:
        """Hook: called whenever a previously missing packet arrives."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _distance_to(self, peer: str) -> float:
        return self.distances.get_or(peer, self.params.default_distance)

    def _distance_to_source(self) -> float:
        return self._distance_to(self.primary_source)

    def rtt_to_source(self) -> float:
        """This host's RTT estimate to the primary source."""
        return 2.0 * self._distance_to_source()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.host_id!r})"
