"""SRM scheduling parameters.

Request timers are drawn uniformly from ``2^k [C1·d, (C1+C2)·d]`` where
``d`` is the requestor's distance estimate to the source and ``k`` the
back-off count; C1 weights *deterministic* suppression (closer hosts fire
first), C2 *probabilistic* suppression (equidistant hosts spread out).
Reply timers are drawn from ``[D1·d', (D1+D2)·d']`` with ``d'`` the
replier's distance to the requestor.  C3 and D3 scale the back-off- and
reply-abstinence periods (§2.1–2.2; the C3 knob is this paper's
generalization of SRM's fixed "half the next request interval").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SrmParams:
    """The SRM scheduling constants, with the paper's simulation defaults
    (C1=C2=2, C3=1.5, D1=D2=1, D3=1.5 — §4.3)."""

    c1: float = 2.0
    c2: float = 2.0
    c3: float = 1.5
    d1: float = 1.0
    d2: float = 1.0
    d3: float = 1.5
    #: Distance fallback used if a timer must be set before any session
    #: exchange produced an estimate (the harness avoids this by delaying
    #: the transmission start, §4.3).
    default_distance: float = 0.1
    #: Cap on the back-off exponent so timer intervals stay finite.
    max_backoff: int = 16

    def __post_init__(self) -> None:
        for name in ("c1", "c2", "c3", "d1", "d2", "d3"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")
        if self.default_distance <= 0:
            raise ValueError("default_distance must be positive")
        if self.max_backoff < 1:
            raise ValueError("max_backoff must be >= 1")

    def request_interval(self, distance: float, backoff: int) -> tuple[float, float]:
        """The request-timer interval ``2^k [C1·d, (C1+C2)·d]``."""
        scale = 2.0 ** min(backoff, self.max_backoff)
        return (scale * self.c1 * distance, scale * (self.c1 + self.c2) * distance)

    def reply_interval(self, distance: float) -> tuple[float, float]:
        """The reply-timer interval ``[D1·d', (D1+D2)·d']``."""
        return (self.d1 * distance, (self.d1 + self.d2) * distance)

    def backoff_abstinence(self, distance: float, backoff: int) -> float:
        """Back-off abstinence duration ``2^k · C3 · d`` (§2.1)."""
        return (2.0 ** min(backoff, self.max_backoff)) * self.c3 * distance

    def reply_abstinence(self, distance: float) -> float:
        """Reply abstinence duration ``D3 · d'`` (§2.2)."""
        return self.d3 * distance
