"""Scalable Reliable Multicast (SRM) — the baseline protocol (§2).

SRM (Floyd et al., SIGCOMM '95 / ToN '97) is an application-layer reliable
multicast protocol over best-effort IP multicast, built from two components:

* **session message exchange** — periodic multicast session messages carry
  timestamp echoes for inter-host one-way distance estimation and
  highest-sequence reports that double as a loss-detection channel
  (:mod:`repro.srm.session`);
* **receiver-based packet loss recovery** — multicast repair requests and
  replies, delayed for deterministic + probabilistic duplicate suppression
  with exponential back-off (:mod:`repro.srm.agent`).

The scheduling parameters (C1, C2, C3, D1, D2, D3) live in
:class:`repro.srm.constants.SrmParams`; defaults match the values the paper
simulates (C1=C2=2, C3=1.5, D1=D2=1, D3=1.5).
"""

from repro.srm.constants import SrmParams
from repro.srm.state import RequestState, ReplyState
from repro.srm.session import SessionReport, DistanceEstimator
from repro.srm.agent import SrmAgent
from repro.srm.adaptive import AdaptiveSrmAgent, AdaptiveParams

__all__ = [
    "SrmParams",
    "RequestState",
    "ReplyState",
    "SessionReport",
    "DistanceEstimator",
    "SrmAgent",
    "AdaptiveSrmAgent",
    "AdaptiveParams",
]
