"""Session message exchange and inter-host distance estimation (§2).

Group members periodically multicast *session messages*.  Each message
carries (a) the sender's highest observed sequence number per source — a
secondary loss-detection channel — and (b) timestamp echoes enabling every
pair of hosts to estimate their one-way distance without synchronized
clocks, exactly as in SRM/NTP:

* host ``g`` remembers, for each peer ``h``, the send timestamp ``t1`` of
  the last session message it received from ``h`` and when it arrived;
* when ``g`` sends its own session message at ``t2`` it echoes
  ``(t1, Δ)`` with ``Δ = t2 - arrival``;
* on receiving that echo at ``t4``, host ``h`` computes
  ``rtt = (t4 - t1) - Δ`` and estimates the one-way distance ``rtt / 2``.

The paper's simulations make session exchange lossless and start the data
transmission only after distances have converged (§4.3); the harness does
the same.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SessionReport:
    """The payload of a session message."""

    sender: str
    sent_at: float
    #: source -> highest sequence number observed from that source.
    max_seqs: dict[str, int]
    #: peer -> (peer's last session send-timestamp, delay held at sender).
    echoes: dict[str, tuple[float, float]]


@dataclass(slots=True)
class _PeerRecord:
    last_sent_at: float = -1.0
    received_at: float = -1.0


class TreeDistanceOracle:
    """Analytic pairwise distances computed from the topology on demand.

    At 10^5 receivers the session exchange is infeasible to simulate —
    every member multicasting to every other member is O(n²) deliveries
    per period — and so is materializing the pairwise distance matrix the
    exchange would converge to.  The oracle is the scale-mode shortcut
    (``SimulationConfig.prime_distances``): one shared object per run
    answering ``distance(a, b)`` by an O(1) LCA hop count times the
    propagation delay, memoized per queried pair.  That is exactly the
    value a lossless session exchange converges to (§4.3), so primed runs
    recover with the same timer math — they just skip simulating the
    convergence.
    """

    __slots__ = ("_index", "_ids", "_delay", "_cache")

    def __init__(self, tree, propagation_delay: float) -> None:
        self._index = tree.index
        self._ids = tree.index.ids
        self._delay = propagation_delay
        self._cache: dict[tuple[str, str], float] = {}

    def distance(self, a: str, b: str) -> float:
        key = (a, b)
        found = self._cache.get(key)
        if found is None:
            found = (
                self._index.hop_distance_int(self._ids[a], self._ids[b])
                * self._delay
            )
            self._cache[key] = found
        return found


class DistanceEstimator:
    """Tracks one-way distance estimates to every peer via session echoes."""

    def __init__(self, host_id: str) -> None:
        self.host_id = host_id
        self._estimates: dict[str, float] = {}
        self._peers: dict[str, _PeerRecord] = {}
        self.updates = 0
        self._oracle: TreeDistanceOracle | None = None
        # Shadow the get_or method with the estimate dict's own bound
        # ``get`` (same signature): agents call it once per observed reply
        # and per scheduled timer, where the extra Python frame shows up.
        self.get_or = self._estimates.get

    # -- priming (scale mode) ------------------------------------------
    def prime(self, oracle: TreeDistanceOracle) -> None:
        """Back this estimator with an analytic oracle: session-learned
        estimates still win, and any peer never heard from resolves to
        its true tree distance instead of the default.  Swaps the
        ``get_or`` fast path; unprimed estimators keep the bound
        ``dict.get`` byte for byte."""
        self._oracle = oracle
        host_id = self.host_id
        estimates_get = self._estimates.get
        oracle_distance = oracle.distance

        def get_or(peer: str, default: float) -> float:
            found = estimates_get(peer)
            if found is not None:
                return found
            return oracle_distance(host_id, peer)

        self.get_or = get_or

    # -- incoming ------------------------------------------------------
    def on_session(self, report: SessionReport, now: float) -> None:
        """Digest a peer's session message received at time ``now``."""
        record = self._peers.get(report.sender)
        if record is None:
            record = self._peers[report.sender] = _PeerRecord()
        record.last_sent_at = report.sent_at
        record.received_at = now
        echo = report.echoes.get(self.host_id)
        if echo is not None:
            t1, delta = echo
            rtt = (now - t1) - delta
            if rtt >= 0:
                self._estimates[report.sender] = rtt / 2.0
                self.updates += 1

    # -- outgoing ------------------------------------------------------
    def build_echoes(self, now: float) -> dict[str, tuple[float, float]]:
        """The echo block for this host's next session message."""
        return {
            peer: (rec.last_sent_at, now - rec.received_at)
            for peer, rec in self._peers.items()
            if rec.last_sent_at >= 0
        }

    # -- queries -------------------------------------------------------
    def get(self, peer: str) -> float | None:
        """Current one-way distance estimate to ``peer``, if any."""
        return self._estimates.get(peer)

    def get_or(self, peer: str, default: float) -> float:
        return self._estimates.get(peer, default)

    def known_peers(self) -> set[str]:
        return set(self._estimates)

    def rtt_to(self, peer: str) -> float | None:
        est = self._estimates.get(peer)
        return None if est is None else 2.0 * est
