"""Adaptive request-timer adjustment (Floyd et al., ToN '97 §V).

The SRM papers the protocol substrate reproduces ([4, 5] in the CESRM
paper) also describe an *adaptive* variant of the random-timer algorithm:
instead of fixed C1/C2 request constants, each member steers its own
constants from two observed signals, trading duplicate suppression against
recovery delay:

* ``ave_dup`` — moving average of the number of *duplicate* requests seen
  per loss (beyond the first);
* ``ave_delay`` — moving average of the first-round request delay, in
  units of the member's distance to the source.

After each completed recovery round the constants move:

* too many duplicates (``ave_dup ≥ dup_target``) → grow both constants
  (``C1 += 0.1``, ``C2 += 0.5``): spread timers out;
* few duplicates and high delay → shrink (``C2 -= 0.5``; ``C1 -= 0.05``
  when duplicates are very rare, else ``C1 += 0.05``): respond faster.

Constants are clamped (``C1 ∈ [0.5, 2.0]``, ``C2 ∈ [1.0, 4.0]`` by
default) so the protocol never collapses into an unsuppressed request
storm nor freezes.  CESRM itself runs fixed constants (the paper's §4.3
setting); the adaptive agent is provided as the ``srm-adaptive`` protocol
for the corresponding ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import Packet, PacketKind
from repro.srm.agent import SrmAgent


@dataclass(frozen=True)
class AdaptiveParams:
    """Tuning constants of the adaptive algorithm (ToN '97 defaults)."""

    dup_target: float = 1.0
    delay_target: float = 1.5
    ewma_weight: float = 0.25
    c1_step_up: float = 0.1
    c1_step_down: float = 0.05
    c2_step: float = 0.5
    c1_min: float = 0.5
    c1_max: float = 2.0
    c2_min: float = 1.0
    c2_max: float = 4.0


@dataclass
class _AdaptiveState:
    """Per-source adaptive timer state at one member."""

    c1: float
    c2: float
    ave_dup: float = 0.0
    ave_delay: float = 1.0
    #: seq -> requests seen (own + foreign) for the current recovery.
    request_counts: dict[int, int] = field(default_factory=dict)
    adjustments: int = 0


class AdaptiveSrmAgent(SrmAgent):
    """SRM with the ToN '97 adaptive request-timer adjustment."""

    protocol_name = "srm-adaptive"

    def __init__(self, *args, adaptive: AdaptiveParams | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.adaptive = adaptive or AdaptiveParams()
        self._adaptive_states: dict[str, _AdaptiveState] = {}

    # ------------------------------------------------------------------
    # Adaptive constants
    # ------------------------------------------------------------------
    def adaptive_state(self, src: str) -> _AdaptiveState:
        state = self._adaptive_states.get(src)
        if state is None:
            state = _AdaptiveState(c1=self.params.c1, c2=self.params.c2)
            self._adaptive_states[src] = state
        return state

    def request_constants(self, src: str) -> tuple[float, float]:
        """The member's current (C1, C2) for ``src``'s stream."""
        state = self.adaptive_state(src)
        return state.c1, state.c2

    def _request_interval(self, src: str, backoff: int) -> tuple[float, float]:
        distance = self._distance_to(src)
        c1, c2 = self.request_constants(src)
        scale = 2.0 ** min(backoff, self.params.max_backoff)
        return (scale * c1 * distance, scale * (c1 + c2) * distance)

    # ------------------------------------------------------------------
    # Signal collection
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if not self.failed and packet.kind is PacketKind.RQST:
            self._count_request(packet.source, packet.seqno)
        super().receive(packet)

    def _count_request(self, src: str, seq: int) -> None:
        counts = self.adaptive_state(src).request_counts
        counts[seq] = counts.get(seq, 0) + 1

    def _request_timer_fired(self, src: str, seq: int) -> None:
        state = self.source_state(src).request_states.get(seq)
        first_round = state is not None and state.backoff == 0
        if first_round and state is not None:
            distance = max(self._distance_to(src), 1e-9)
            delay_ratio = (self.sim.now - state.detected_at) / distance
            adaptive = self.adaptive_state(src)
            w = self.adaptive.ewma_weight
            adaptive.ave_delay = (1 - w) * adaptive.ave_delay + w * delay_ratio
        self._count_request(src, seq)
        super()._request_timer_fired(src, seq)
        # Re-draw the (already scheduled) next round from the adaptive
        # interval rather than the fixed one.
        if state is not None and state.timer.armed:
            lo, hi = self._request_interval(src, state.backoff)
            state.timer.start(self.rng.uniform(lo, hi))

    def _detect_loss(self, seq, initial_backoff=0, src=None):
        src = src or self.primary_source
        super()._detect_loss(seq, initial_backoff, src)
        # Re-draw the initial request timer from the adaptive interval.
        state = self.source_state(src).request_states.get(seq)
        if state is not None and state.timer.armed:
            lo, hi = self._request_interval(src, state.backoff)
            state.timer.start(self.rng.uniform(lo, hi))

    # ------------------------------------------------------------------
    # Adjustment on recovery completion
    # ------------------------------------------------------------------
    def _on_packet_obtained(self, src: str, seq: int) -> None:
        super()._on_packet_obtained(src, seq)
        adaptive = self.adaptive_state(src)
        requests = adaptive.request_counts.pop(seq, None)
        if requests is None:
            return  # no request round observed for this packet
        duplicates = max(requests - 1, 0)
        w = self.adaptive.ewma_weight
        adaptive.ave_dup = (1 - w) * adaptive.ave_dup + w * duplicates
        self._adjust(adaptive)

    def _adjust(self, state: _AdaptiveState) -> None:
        p = self.adaptive
        if state.ave_dup >= p.dup_target:
            state.c1 += p.c1_step_up
            state.c2 += p.c2_step
        elif state.ave_delay > p.delay_target:
            state.c2 -= p.c2_step
            if state.ave_dup < 0.25:
                state.c1 -= p.c1_step_down
            else:
                state.c1 += p.c1_step_down
        else:
            return
        state.c1 = min(max(state.c1, p.c1_min), p.c1_max)
        state.c2 = min(max(state.c2, p.c2_min), p.c2_max)
        state.adjustments += 1
