"""CESRM — the Caching-Enhanced Scalable Reliable Multicast protocol (§3).

CESRM augments SRM with a *caching-based expedited recovery scheme* that
runs in parallel with SRM's scheme.  Each receiver caches the optimal
requestor/replier pair that carried out the recovery of its recent losses
(:mod:`repro.core.cachelab` — a pluggable policy laboratory whose default
``paper`` policy is §3.1's cache); on a new loss a selection policy
(:mod:`repro.core.policies`) picks the *expeditious* pair, and if the host
itself is the expeditious requestor it unicasts an undelayed expedited
request to the expeditious replier, which immediately multicasts the repair
(:mod:`repro.core.agent`).  When routers offer turning-point annotation and
subcast, expedited replies become localized (:mod:`repro.core.router_assist`,
§3.3).
"""

from repro.core.cachelab import (
    CacheError,
    CachePolicy,
    CachePolicySpec,
    CompiledCachePolicy,
    RecoveryTuple,
    RecoveryPairCache,
    cache_policy_names,
    compile_cache_policy,
    make_cache_policy,
    register_cache_policy,
)
from repro.core.policies import (
    SelectionPolicy,
    MostRecentLossPolicy,
    MostFrequentLossPolicy,
    make_policy,
    register_policy,
    policy_names,
    POLICY_NAMES,
)
from repro.core.agent import CesrmAgent
from repro.core.router_assist import RouterAssistedCesrmAgent

__all__ = [
    "CacheError",
    "CachePolicy",
    "CachePolicySpec",
    "CompiledCachePolicy",
    "RecoveryTuple",
    "RecoveryPairCache",
    "cache_policy_names",
    "compile_cache_policy",
    "make_cache_policy",
    "register_cache_policy",
    "SelectionPolicy",
    "MostRecentLossPolicy",
    "MostFrequentLossPolicy",
    "make_policy",
    "register_policy",
    "policy_names",
    "POLICY_NAMES",
    "CesrmAgent",
    "RouterAssistedCesrmAgent",
]
