"""The recovery-cache laboratory: pluggable per-source tuple caches.

CESRM's contribution *is* a cache: each receiver keeps, per source, the
requestor/replier pairs that carried out the recovery of its recent
losses, as §3.1 tuples ``⟨i, q, d_qs, r, d_rq⟩`` (packet sequence
number, requestor, requestor's distance to the source, replier, and
replier's distance to the requestor), retaining per packet only the
*optimal* pair — the one minimizing the **recovery delay**
``d_qs + 2·d_rq``.

The paper fixes one replacement scheme (seqno-recency eviction at a
fixed capacity, §3.1's update rules).  This module generalizes it — the
ROADMAP's §4.3-extension item — behind a narrow policy protocol
(``observe / lookup / evict_replier / entries / stats``) with a
:class:`CachePolicySpec` registry mirroring ``ProtocolSpec`` /
``WorkloadSpec``.  Spec strings use the shared
:mod:`repro.harness.specstr` grammar:

``paper:capacity=16``
    Today's behavior and the default: evict the least recent packet's
    tuple when full; reject candidates older than everything cached.
``lru:capacity=16``
    Evict the least recently *used* entry (inserts, improvements, and
    selections all count as use) — Jain's address-locality comparison
    shows LRU tracking temporal locality that FIFO-by-seqno misses.
``lfu:capacity=16``
    Evict the least frequently used entry (ties break toward the oldest
    packet).
``ttl:capacity=16,ttl=30s``
    Paper eviction plus time-to-live decay: entries untouched for
    ``ttl`` seconds expire — cached state goes stale when the tree
    reconfigures (Jain's out-of-order caching analysis).
``prob:capacity=16,p=0.5``
    Paper eviction with probabilistic insertion à la ProbCache: a new
    tuple is admitted with probability ``p`` (improvements to already
    cached packets always apply).  Draws come from a dedicated RNG
    derived from ``(run seed, host, source, spec)`` so admission noise
    never perturbs the protocol's own jitter streams.
``unbounded``
    No capacity, no eviction — the frontier's upper bound.

The update rules shared by every policy (§3.1): a candidate for an
already cached packet replaces it only if strictly better; a candidate
for a new packet is admitted, evicting a policy-chosen victim when full.
Counters keep their legacy names (``inserts`` / ``improvements`` /
``rejects`` / ``evictions``) — ``evictions`` counts *replier* evictions
(crash relearning, what fault stats always reported) while capacity and
TTL churn get their own ``capacity_evictions`` / ``expirations``.

The old ``repro.core.cache`` module remains as a deprecated shim
re-exporting :class:`RecoveryTuple` and :class:`RecoveryPairCache` from
here.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, TYPE_CHECKING

from repro.harness.registries import Registry
from repro.harness.specstr import (
    canonical_spec,
    float_param,
    int_param,
    parse_spec,
    reject_unknown,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.policies import SelectionPolicy


class CacheError(ValueError):
    """Raised for malformed cache-policy spec strings, unknown families
    or parameters, and invalid policy configurations."""


# ----------------------------------------------------------------------
# The cached tuple (§3.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryTuple:
    """One cached recovery: ``⟨i, q, d_qs, r, d_rq⟩`` (§3.1), optionally
    extended with the §3.3 turning-point router annotation."""

    seqno: int
    requestor: str
    requestor_to_source: float
    replier: str
    replier_to_requestor: float
    turning_point: str | None = None

    @property
    def recovery_delay(self) -> float:
        """The §3.1 optimality metric ``d_qs + 2·d_rq``."""
        return self.requestor_to_source + 2.0 * self.replier_to_requestor

    @property
    def pair(self) -> tuple[str, str]:
        """The requestor/replier pair."""
        return (self.requestor, self.replier)


# ----------------------------------------------------------------------
# The policy protocol
# ----------------------------------------------------------------------
class CachePolicy:
    """Base class for per-source recovery-tuple caches.

    The narrow protocol the agent and harness rely on is
    ``observe / lookup / evict_replier / entries / stats``; the query
    helpers (``most_recent`` / ``pair_frequencies`` / ``get``) keep the
    §3.2 :class:`~repro.core.policies.SelectionPolicy` implementations
    working unchanged against any policy.

    Subclasses customize replacement through three hooks:
    :meth:`_admit` (may refuse a brand-new candidate), :meth:`_victim`
    (chooses the entry to evict when full, or refuses the candidate),
    and :meth:`_touch` / :meth:`_forget` / :meth:`_expire` (recency /
    frequency / decay bookkeeping).

    "Recency" in the default policy is packet sequence order: the least
    recent packet is the one with the smallest sequence number (the
    transmission is in sequence order, so sequence order is loss order).
    """

    #: Registry family name (the spec string's ``family`` part).
    family: str = "abstract"

    def __init__(self, capacity: int | None = 16) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: dict[int, RecoveryTuple] = {}
        self.inserts = 0
        self.improvements = 0
        self.rejects = 0
        #: Replier evictions (crash relearning) — the legacy meaning of
        #: ``evictions``; fault stats sum this attribute by name.
        self.evictions = 0
        #: Entries displaced to make room (never counted in ``evictions``).
        self.capacity_evictions = 0
        #: Entries dropped by TTL decay.
        self.expirations = 0
        self.lookups = 0
        self.hits = 0
        #: What the last ``observe`` did ("insert" / "improve" /
        #: "reject" / "noop") and which seqno it displaced, if any —
        #: read by the agent to emit ``cache.insert`` / ``cache.evict``
        #: events without widening ``observe``'s bool return.
        self.last_outcome: str = ""
        self.last_evicted: int | None = None
        self.spec: str = self.family

    # -- queries (shared by every policy; selection policies use these) --
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seqno: int) -> bool:
        return seqno in self._entries

    def get(self, seqno: int) -> RecoveryTuple | None:
        return self._entries.get(seqno)

    def entries(self) -> list[RecoveryTuple]:
        """Cached tuples, most recent packet first."""
        return [self._entries[s] for s in sorted(self._entries, reverse=True)]

    def most_recent(self) -> RecoveryTuple | None:
        """The tuple of the most recent recovered loss, if any."""
        if not self._entries:
            return None
        return self._entries[max(self._entries)]

    def pair_frequencies(self) -> dict[tuple[str, str], int]:
        """How often each requestor/replier pair appears in the cache."""
        freq: dict[tuple[str, str], int] = {}
        for entry in self._entries.values():
            freq[entry.pair] = freq.get(entry.pair, 0) + 1
        return freq

    def clear(self) -> None:
        for seqno in list(self._entries):
            self._forget(seqno)
        self._entries.clear()

    # -- the update rules (§3.1 skeleton, policy-specific replacement) --
    def observe(self, candidate: RecoveryTuple, now: float = 0.0) -> bool:
        """Apply the §3.1 update rules for a reply's recovery tuple.

        The caller is responsible for the "host suffered this loss"
        check.  Returns True if the cache changed.
        """
        self._expire(now)
        self.last_evicted = None
        seqno = candidate.seqno
        existing = self._entries.get(seqno)
        if existing is not None:
            if candidate.recovery_delay < existing.recovery_delay:
                self._entries[seqno] = candidate
                self.improvements += 1
                self._touch(seqno, now)
                self.last_outcome = "improve"
                return True
            self.last_outcome = "noop"
            return False
        if not self._admit(candidate, now):
            self.rejects += 1
            self.last_outcome = "reject"
            return False
        if self.capacity is not None and len(self._entries) >= self.capacity:
            victim = self._victim(candidate)
            if victim is None:
                self.rejects += 1
                self.last_outcome = "reject"
                return False
            del self._entries[victim]
            self._forget(victim)
            self.capacity_evictions += 1
            self.last_evicted = victim
        self._entries[seqno] = candidate
        self.inserts += 1
        self._touch(seqno, now)
        self.last_outcome = "insert"
        return True

    def lookup(
        self, policy: "SelectionPolicy", now: float = 0.0
    ) -> RecoveryTuple | None:
        """Run a §3.2 selection policy over the live entries, counting
        hit rate and touching the chosen entry's recency/frequency."""
        self._expire(now)
        self.lookups += 1
        choice = policy.select(self)
        if choice is not None:
            self.hits += 1
            self._touch(choice.seqno, now)
        return choice

    def evict_replier(self, host: str) -> int:
        """Drop every cached tuple whose replier is ``host`` (observed
        failing to serve an expedited request).  Returns how many entries
        were evicted; the pair must then be relearned from live replies.
        """
        stale = [
            seqno
            for seqno, entry in self._entries.items()
            if entry.replier == host
        ]
        for seqno in stale:
            del self._entries[seqno]
            self._forget(seqno)
        self.evictions += len(stale)
        return len(stale)

    def stats(self) -> dict:
        """The per-policy counters summaries and sweep rows record."""
        return {
            "policy": self.family,
            "spec": self.spec,
            "capacity": self.capacity,
            "entries": len(self._entries),
            "inserts": self.inserts,
            "improvements": self.improvements,
            "rejects": self.rejects,
            "capacity_evictions": self.capacity_evictions,
            "replier_evictions": self.evictions,
            "expirations": self.expirations,
            "lookups": self.lookups,
            "hits": self.hits,
            "hit_rate": round(self.hits / self.lookups, 6) if self.lookups else 0.0,
        }

    # -- replacement hooks ------------------------------------------------
    def _admit(self, candidate: RecoveryTuple, now: float) -> bool:
        """May refuse a brand-new candidate before capacity is checked."""
        return True

    def _victim(self, candidate: RecoveryTuple) -> int | None:
        """The seqno to evict to make room, or None to refuse the
        candidate instead.  Only called when the cache is full."""
        raise NotImplementedError

    def _touch(self, seqno: int, now: float) -> None:
        """Recency/frequency bookkeeping on insert/improve/selection."""

    def _forget(self, seqno: int) -> None:
        """Drop bookkeeping for an entry leaving the cache."""

    def _expire(self, now: float) -> None:
        """Drop decayed entries (TTL policies)."""


class RecoveryPairCache(CachePolicy):
    """The paper's policy (§3.1): recency is packet sequence order; when
    full, the least recent packet's tuple is evicted — unless the
    candidate itself is older than everything cached, in which case it
    is rejected."""

    family = "paper"

    def __init__(self, capacity: int = 16) -> None:
        super().__init__(capacity)
        self.spec = f"paper:capacity={capacity}"

    def _victim(self, candidate: RecoveryTuple) -> int | None:
        oldest = min(self._entries)
        if candidate.seqno < oldest:
            return None  # less recent than everything cached
        return oldest


class LruCache(CachePolicy):
    """Evict the least recently *used* entry.  Use = insert, improve, or
    being chosen by the selection policy; candidates are always
    admitted (no reject path)."""

    family = "lru"

    def __init__(self, capacity: int = 16) -> None:
        super().__init__(capacity)
        self.spec = f"lru:capacity={capacity}"
        self._tick = 0
        self._stamp: dict[int, int] = {}

    def _touch(self, seqno: int, now: float) -> None:
        self._tick += 1
        self._stamp[seqno] = self._tick

    def _forget(self, seqno: int) -> None:
        self._stamp.pop(seqno, None)

    def _victim(self, candidate: RecoveryTuple) -> int | None:
        return min(self._entries, key=lambda s: self._stamp.get(s, 0))


class LfuCache(CachePolicy):
    """Evict the least frequently used entry (ties break toward the
    oldest packet).  Use = insert, improve, or selection."""

    family = "lfu"

    def __init__(self, capacity: int = 16) -> None:
        super().__init__(capacity)
        self.spec = f"lfu:capacity={capacity}"
        self._freq: dict[int, int] = {}

    def _touch(self, seqno: int, now: float) -> None:
        self._freq[seqno] = self._freq.get(seqno, 0) + 1

    def _forget(self, seqno: int) -> None:
        self._freq.pop(seqno, None)

    def _victim(self, candidate: RecoveryTuple) -> int | None:
        return min(self._entries, key=lambda s: (self._freq.get(s, 0), s))


class TtlCache(RecoveryPairCache):
    """Paper eviction plus TTL decay: an entry untouched for ``ttl``
    seconds of simulated time expires at the next observe/lookup."""

    family = "ttl"

    def __init__(self, capacity: int = 16, ttl: float = 30.0) -> None:
        if not ttl > 0.0:
            raise ValueError(f"ttl must be > 0, got {ttl!r}")
        super().__init__(capacity)
        self.ttl = ttl
        self.spec = f"ttl:capacity={capacity},ttl={ttl:g}s"
        self._deadline: dict[int, float] = {}

    def _touch(self, seqno: int, now: float) -> None:
        self._deadline[seqno] = now + self.ttl

    def _forget(self, seqno: int) -> None:
        self._deadline.pop(seqno, None)

    def _expire(self, now: float) -> None:
        stale = [
            seqno
            for seqno, deadline in self._deadline.items()
            if deadline <= now
        ]
        for seqno in stale:
            del self._entries[seqno]
            del self._deadline[seqno]
        self.expirations += len(stale)


class ProbabilisticCache(RecoveryPairCache):
    """Paper eviction with probabilistic insertion (ProbCache's idea
    applied to recovery pairs): a brand-new tuple is admitted with
    probability ``p``; improvements always apply.

    Admission draws come from a dedicated :class:`random.Random` seeded
    from ``(run seed, host, source, spec)`` — never from the agent's
    protocol streams, so enabling ``prob`` cannot perturb SRM timer
    jitter.
    """

    family = "prob"

    def __init__(self, capacity: int = 16, p: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p!r}")
        super().__init__(capacity)
        self.p = p
        self.spec = f"prob:capacity={capacity},p={p:g}"
        self._rng = random.Random(seed)

    def _admit(self, candidate: RecoveryTuple, now: float) -> bool:
        return self._rng.random() < self.p if self.p < 1.0 else True


class UnboundedCache(CachePolicy):
    """No capacity, no eviction — the frontier's upper bound (and the
    memory cost the paper's fixed capacity exists to avoid)."""

    family = "unbounded"

    def __init__(self) -> None:
        super().__init__(capacity=None)
        self.spec = "unbounded"

    def _victim(self, candidate: RecoveryTuple) -> int | None:  # pragma: no cover
        raise AssertionError("unbounded cache never evicts")


# ----------------------------------------------------------------------
# The CachePolicySpec registry
# ----------------------------------------------------------------------
#: ``make(seed=..., host=..., source=...)`` — builds one per-(host,
#: source) cache instance.
PolicyMaker = Callable[..., CachePolicy]

#: ``factory(params)`` — validates raw spec parameters once, returns a
#: :data:`PolicyMaker`; must raise :class:`CacheError` on bad values.
PolicyFactory = Callable[[dict], PolicyMaker]


@dataclass(frozen=True)
class CachePolicySpec:
    """Everything the harness needs to run one cache-policy family."""

    #: Registry name (the spec string's ``family`` part).
    name: str
    #: Builds a maker from the raw ``key=value`` parameter mapping.
    factory: PolicyFactory
    #: One-line description for ``cesrm caches`` listings.
    description: str = ""
    #: Documented parameters: ``name -> "default — meaning"``.
    params_doc: Mapping[str, str] = field(default_factory=dict)
    #: Extra metadata for listings and experiments.
    tags: tuple[str, ...] = field(default=())


_REGISTRY: Registry[CachePolicySpec] = Registry("cache policy", error=CacheError)


def register_cache_policy(
    spec: CachePolicySpec, replace: bool = False
) -> CachePolicySpec:
    """Add ``spec`` to the registry.  Re-registering an existing name is
    an error unless ``replace=True`` (tests swapping in doubles)."""
    return _REGISTRY.register(spec, replace=replace)


def unregister_cache_policy(name: str) -> None:
    """Remove a cache-policy family (tests cleaning up doubles)."""
    _REGISTRY.unregister(name)


def get_cache_policy_spec(name: str) -> CachePolicySpec:
    """The spec registered under ``name``; raises :class:`CacheError`
    (with the known names) otherwise."""
    return _REGISTRY.get(name)


def cache_policy_names() -> tuple[str, ...]:
    """Registered cache-policy family names, in registration order."""
    return _REGISTRY.names()


def all_cache_policy_specs() -> tuple[CachePolicySpec, ...]:
    return _REGISTRY.specs()


class CompiledCachePolicy:
    """A validated family + parameters pair that can build the
    per-(host, source) cache instances of one run."""

    def __init__(self, family: str, params: Mapping[str, str], maker: PolicyMaker):
        self.family = family
        self.params = dict(params)
        self._maker = maker

    @property
    def spec(self) -> str:
        """The canonical spec string (what digests and summaries record)."""
        return canonical_spec(self.family, self.params)

    def make(self, seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        """One cache instance for ``host``'s view of ``source``."""
        cache = self._maker(seed=seed, host=host, source=source)
        cache.spec = self.spec
        return cache

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledCachePolicy({self.spec!r})"


def compile_cache_policy(spec: str) -> CompiledCachePolicy:
    """Parse and validate ``spec`` into a :class:`CompiledCachePolicy`
    (the single validation point — ``SimulationConfig``, the sweep
    compiler, and the CLI all call this, so a typo fails before any
    simulation starts)."""
    family, params = parse_spec(spec, label="cache policy", error=CacheError)
    cs = get_cache_policy_spec(family)
    maker = cs.factory(dict(params))
    return CompiledCachePolicy(family, params, maker)


def make_cache_policy(
    spec: str, seed: int = 0, host: str = "", source: str = ""
) -> CachePolicy:
    """Compile ``spec`` and build one cache instance from it."""
    return compile_cache_policy(spec).make(seed=seed, host=host, source=source)


def _derive_seed(seed: int, host: str, source: str, spec: str) -> int:
    """A per-(run, host, source, spec) admission-RNG seed, isolated from
    every protocol stream by construction."""
    text = f"cachelab|{seed}|{host}|{source}|{spec}"
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
def _capacity(params: dict, where: str) -> int:
    return int_param(params, where, "capacity", 16, error=CacheError)


def _paper_factory(params: dict) -> PolicyMaker:
    where = "cache policy 'paper'"
    capacity = _capacity(params, where)
    reject_unknown(params, where, CacheError)

    def make(seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        return RecoveryPairCache(capacity)

    return make


def _lru_factory(params: dict) -> PolicyMaker:
    where = "cache policy 'lru'"
    capacity = _capacity(params, where)
    reject_unknown(params, where, CacheError)

    def make(seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        return LruCache(capacity)

    return make


def _lfu_factory(params: dict) -> PolicyMaker:
    where = "cache policy 'lfu'"
    capacity = _capacity(params, where)
    reject_unknown(params, where, CacheError)

    def make(seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        return LfuCache(capacity)

    return make


def _ttl_factory(params: dict) -> PolicyMaker:
    where = "cache policy 'ttl'"
    capacity = _capacity(params, where)
    ttl = float_param(params, where, "ttl", 30.0, minimum=1e-9, error=CacheError)
    reject_unknown(params, where, CacheError)

    def make(seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        return TtlCache(capacity, ttl)

    return make


def _prob_factory(params: dict) -> PolicyMaker:
    where = "cache policy 'prob'"
    canonical = canonical_spec("prob", params)
    capacity = _capacity(params, where)
    p = float_param(params, where, "p", 0.5, minimum=0.0, error=CacheError)
    if p > 1.0:
        raise CacheError(f"{where}: p={p!r} must be <= 1")
    reject_unknown(params, where, CacheError)

    def make(seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        return ProbabilisticCache(
            capacity, p, seed=_derive_seed(seed, host, source, canonical)
        )

    return make


def _unbounded_factory(params: dict) -> PolicyMaker:
    reject_unknown(params, "cache policy 'unbounded'", CacheError)

    def make(seed: int = 0, host: str = "", source: str = "") -> CachePolicy:
        return UnboundedCache()

    return make


register_cache_policy(
    CachePolicySpec(
        name="paper",
        factory=_paper_factory,
        description="§3.1 seqno-recency eviction (the default; byte-identical "
        "to the pre-cachelab cache)",
        params_doc={"capacity": "16 — max cached tuples per source"},
        tags=("paper", "default"),
    )
)
register_cache_policy(
    CachePolicySpec(
        name="lru",
        factory=_lru_factory,
        description="evict the least recently used entry (use = insert / "
        "improve / selection)",
        params_doc={"capacity": "16 — max cached tuples per source"},
        tags=("locality",),
    )
)
register_cache_policy(
    CachePolicySpec(
        name="lfu",
        factory=_lfu_factory,
        description="evict the least frequently used entry (ties toward the "
        "oldest packet)",
        params_doc={"capacity": "16 — max cached tuples per source"},
        tags=("locality",),
    )
)
register_cache_policy(
    CachePolicySpec(
        name="ttl",
        factory=_ttl_factory,
        description="paper eviction plus time-to-live decay of untouched "
        "entries",
        params_doc={
            "capacity": "16 — max cached tuples per source",
            "ttl": "30s — seconds of simulated time before an untouched "
            "entry expires",
        },
        tags=("decay",),
    )
)
register_cache_policy(
    CachePolicySpec(
        name="prob",
        factory=_prob_factory,
        description="paper eviction with probabilistic insertion "
        "(ProbCache-style admission)",
        params_doc={
            "capacity": "16 — max cached tuples per source",
            "p": "0.5 — admission probability for brand-new tuples",
        },
        tags=("admission",),
    )
)
register_cache_policy(
    CachePolicySpec(
        name="unbounded",
        factory=_unbounded_factory,
        description="no capacity, no eviction — the frontier's upper bound",
        tags=("bound",),
    )
)


__all__ = [
    "CacheError",
    "CachePolicy",
    "CachePolicySpec",
    "CompiledCachePolicy",
    "LfuCache",
    "LruCache",
    "PolicyFactory",
    "PolicyMaker",
    "ProbabilisticCache",
    "RecoveryPairCache",
    "RecoveryTuple",
    "TtlCache",
    "UnboundedCache",
    "all_cache_policy_specs",
    "cache_policy_names",
    "compile_cache_policy",
    "get_cache_policy_spec",
    "make_cache_policy",
    "register_cache_policy",
    "unregister_cache_policy",
]
