"""Router-assisted CESRM: localized expedited recovery (§3.3).

With two small router capabilities — (i) annotating reply packets with
their *turning point* (the router where a reply stops travelling upstream
and is forwarded downstream with respect to the source-rooted tree) and
(ii) *subcasting* a packet down the subtree below a router — CESRM's
expedited replies stop being exposed to the whole group:

* recovery tuples are augmented with the turning-point router observed in
  the recovery they describe;
* expedited requests carry that turning point;
* the expeditious replier unicasts its expedited reply to the turning
  point, which subcasts it downstream — reaching exactly the loss
  neighbourhood.

Because the tree is static, a reply's turning point is a pure function of
topology: the lowest common ancestor of replier and requestor.  The network
computes it as :meth:`repro.net.topology.MulticastTree.lca`, standing in
for the per-hop router annotation (byte-for-byte the same value a real
annotating router would stamp).

Unlike LMS, routers keep **no replier state** — the turning point is
recomputed from each recovery — so membership churn can never strand stale
router state; and SRM's scheme still runs underneath as the fall-back.
"""

from __future__ import annotations

from repro.core.agent import CesrmAgent
from repro.core.cachelab import RecoveryTuple
from repro.net.packet import Packet


class RouterAssistedCesrmAgent(CesrmAgent):
    """CESRM with §3.3 router assistance for expedited replies."""

    protocol_name = "cesrm-router"

    def _tuple_from_reply(self, packet: Packet) -> RecoveryTuple:
        """Augment cached tuples with the reply's turning point.

        Subcast replies carry the turning point they were injected at;
        multicast replies (SRM fall-back traffic) get the topology-derived
        annotation the §3.3 routers would add.
        """
        turning_point = packet.turning_point
        if turning_point is None and packet.replier and packet.requestor:
            turning_point = self.net.tree.lca(packet.replier, packet.requestor)
        return RecoveryTuple(
            seqno=packet.seqno,
            requestor=packet.requestor,  # type: ignore[arg-type]
            requestor_to_source=packet.requestor_dist,
            replier=packet.replier,  # type: ignore[arg-type]
            replier_to_requestor=packet.replier_dist,
            turning_point=turning_point,
        )

    def _send_expedited_reply(self, reply: Packet, request: Packet) -> None:
        """Unicast the reply to the turning point; the router subcasts it
        downstream (§3.3).  Falls back to plain multicast when no turning
        point is known."""
        turning_point = request.turning_point
        if turning_point is None or not self.net.tree.has_node(turning_point):
            self.net.multicast(reply)
            return
        requestor = request.requestor or request.origin
        if not self._covers(turning_point, requestor):
            # Stale annotation (the requestor moved outside the subtree):
            # recompute the true turning point for this pair.
            turning_point = self.net.tree.lca(self.host_id, requestor)
        self.net.unicast_then_subcast(turning_point, reply)

    def _covers(self, router: str, host: str) -> bool:
        return host == router or self.net.tree.is_descendant(host, router)
