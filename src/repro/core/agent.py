"""The CESRM protocol agent (§3).

:class:`CesrmAgent` extends :class:`repro.srm.agent.SrmAgent` — SRM's whole
recovery scheme keeps running — and adds the caching-based expedited
recovery scheme:

* every repair reply for a packet this host lost updates the **per-source**
  optimal requestor/replier cache (§3.1: "each host maintains a collection
  of per-source requestor/replier caches, one for each source");
* on detecting a loss, the selection policy proposes an expeditious pair
  ``⟨q, r⟩`` from the lost packet's source's cache; if this host *is* ``q``,
  it schedules an expedited request ``REORDER-DELAY`` in the future
  (cancelled if the packet shows up meanwhile) and then unicasts it
  straight to ``r`` (§3.2);
* a host receiving an expedited request immediately multicasts an
  expedited reply, provided it has the packet and no reply for it is
  scheduled or pending (§3.2);
* expedited replies travel the multicast tree like ordinary replies, so
  they repair co-losers and suppress SRM's scheduled requests/replies —
  and when the expedited path fails (replier shares the loss), SRM's
  scheme is already running as the fall-back.
"""

from __future__ import annotations

import random

from repro.core.cachelab import (
    CachePolicy,
    CompiledCachePolicy,
    RecoveryPairCache,
    RecoveryTuple,
)
from repro.core.policies import SelectionPolicy
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Packet, PacketKind
from repro.obs.events import EventKind
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.srm.agent import SrmAgent
from repro.srm.constants import SrmParams
from repro.srm.state import ReplyState, RequestState


class CesrmAgent(SrmAgent):
    """A CESRM endpoint: SRM plus caching-based expedited recovery.

    Parameters (beyond :class:`~repro.srm.agent.SrmAgent`'s)
    ----------------------------------------------------------
    policy:
        The expeditious-pair selection policy (§3.2).
    cache_capacity:
        Number of recovery tuples kept per source (§3.1); the paper's
        most-recent-loss policy needs only 1, larger caches feed the
        most-frequent-loss policy and the ablations.
    reorder_delay:
        The REORDER-DELAY guard between detecting a loss and unicasting
        the expedited request (§3.2).  The paper's simulations use 0 since
        the replayed traces are reorder-free.
    cache_policy:
        A compiled :mod:`repro.core.cachelab` policy; per-source caches
        are built from it (seeded by ``cache_seed`` + host + source).
        ``None`` — the default — means the paper's policy at
        ``cache_capacity``, byte-identical to the pre-cachelab agent.
    cache_seed:
        The run seed, forwarded to policy construction so stochastic
        policies (``prob``) draw from a dedicated deterministic stream.
    """

    protocol_name = "cesrm"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_id: str,
        source: str,
        params: SrmParams,
        rng: random.Random,
        metrics: MetricsCollector,
        policy: SelectionPolicy,
        cache_capacity: int = 16,
        reorder_delay: float = 0.0,
        session_period: float = 1.0,
        detect_on_request: bool = True,
        cache_policy: CompiledCachePolicy | None = None,
        cache_seed: int = 0,
    ) -> None:
        super().__init__(
            sim=sim,
            network=network,
            host_id=host_id,
            source=source,
            params=params,
            rng=rng,
            metrics=metrics,
            session_period=session_period,
            detect_on_request=detect_on_request,
        )
        if reorder_delay < 0:
            raise ValueError(f"reorder_delay must be >= 0, got {reorder_delay!r}")
        self.policy = policy
        self.cache_capacity = cache_capacity
        self.reorder_delay = reorder_delay
        self.cache_policy = cache_policy
        self.cache_seed = cache_seed
        #: per-source optimal requestor/replier caches (§3.1) — any
        #: :mod:`repro.core.cachelab` policy; ``paper`` by default.
        self.caches: dict[str, CachePolicy] = {}
        #: (source, seq) -> (timer, chosen tuple) for pending expedited requests.
        self._expedited: dict[tuple[str, int], tuple[Timer, RecoveryTuple]] = {}
        #: (source, seq) -> chosen tuple for expedited requests already on
        #: the wire, kept until the packet is obtained so a failed attempt
        #: can be attributed to its replier.
        self._erqst_inflight: dict[tuple[str, int], RecoveryTuple] = {}
        #: Fault injection (repro.faults): when armed, a loss that an
        #: expedited request failed to recover (SRM repaired it instead)
        #: evicts the chosen replier's tuples from the cache, forcing the
        #: pair to be relearned.  Off by default — fault-free runs never
        #: evict, preserving the paper's cache dynamics bit-for-bit.
        self.evict_on_failure = False
        self.expedited_scheduled = 0
        self.expedited_cancelled = 0
        self.repliers_evicted = 0
        # Expedited-replier diagnostics: why expedited requests to this
        # host did or did not produce an expedited reply.
        self.erqst_received = 0
        self.erqst_answered = 0
        self.erqst_shared_loss = 0
        self.erqst_suppressed = 0

    # ------------------------------------------------------------------
    # Per-source caches
    # ------------------------------------------------------------------
    def cache_for(self, source: str) -> CachePolicy:
        """The recovery-tuple cache for ``source`` (created on demand)."""
        cache = self.caches.get(source)
        if cache is None:
            if self.cache_policy is None:
                cache = RecoveryPairCache(self.cache_capacity)
            else:
                cache = self.cache_policy.make(
                    seed=self.cache_seed, host=self.host_id, source=source
                )
            self.caches[source] = cache
        return cache

    @property
    def cache(self) -> CachePolicy:
        """The primary source's cache (single-source convenience)."""
        return self.cache_for(self.primary_source)

    # ------------------------------------------------------------------
    # Hook: loss detected -> maybe act as expeditious requestor (§3.2)
    # ------------------------------------------------------------------
    def _after_loss_detected(self, src: str, seq: int, state: RequestState) -> None:
        choice = self.cache_for(src).lookup(self.policy, now=self.sim.now)
        tracer = self.sim.tracer
        if choice is None:
            if tracer is not None:
                tracer.emit(
                    self.sim.now,
                    EventKind.CACHE_MISS,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                )
            return  # no usable cache entry: SRM alone recovers this loss
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                EventKind.CACHE_HIT,
                node=self.host_id,
                source=src,
                seqno=seq,
                requestor=choice.requestor,
                replier=choice.replier,
            )
        if choice.requestor != self.host_id:
            return  # someone else is the expeditious requestor
        if choice.replier == self.host_id:
            return  # degenerate tuple; cannot ask ourselves
        timer = Timer(self.sim, self._expedited_timer_fired, src, seq)
        self._expedited[(src, seq)] = (timer, choice)
        timer.start(self.reorder_delay)
        self.expedited_scheduled += 1
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                EventKind.ERQST_SCHEDULED,
                node=self.host_id,
                source=src,
                seqno=seq,
                replier=choice.replier,
                reorder_delay=self.reorder_delay,
            )

    def _expedited_timer_fired(self, src: str, seq: int) -> None:
        entry = self._expedited.pop((src, seq), None)
        if entry is None:  # pragma: no cover - timers cancelled on removal
            return
        _, choice = entry
        if self.source_state(src).stream.has(seq):
            return  # arrived during REORDER-DELAY (reordering guard)
        packet = Packet(
            kind=PacketKind.ERQST,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=CONTROL_BYTES,
            requestor=self.host_id,
            requestor_dist=self._distance_to(src),
            replier=choice.replier,
            turning_point=choice.turning_point,
        )
        self.metrics.on_send(self.host_id, packet)
        self.net.unicast(choice.replier, packet)
        self._erqst_inflight[(src, seq)] = choice
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.ERQST_SENT,
                node=self.host_id,
                source=src,
                seqno=seq,
                replier=choice.replier,
            )

    # ------------------------------------------------------------------
    # Hook: expedited request arrives -> immediate expedited reply (§3.2)
    # ------------------------------------------------------------------
    def _on_expedited_request(self, packet: Packet) -> None:
        src = packet.source
        seq = packet.seqno
        self.erqst_received += 1
        state = self.source_state(src)
        self._advance_stream(src, seq - 1)
        if not state.stream.has(seq):
            # The expeditious replier shared the loss: the expedited
            # recovery fails and SRM remains the fall-back.  Hearing the
            # request still reveals the packet exists.
            self.erqst_shared_loss += 1
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    self.sim.now,
                    EventKind.ERQST_SHARED_LOSS,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                    requestor=packet.requestor or packet.origin,
                )
            if (
                src != self.host_id
                and seq not in state.request_states
                and self.detect_on_request
            ):
                self._detect_loss(seq, initial_backoff=1, src=src)
            return
        reply_state = state.reply_states.get(seq)
        if reply_state is not None and (
            reply_state.scheduled() or reply_state.pending(self.sim.now)
        ):
            self.erqst_suppressed += 1
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    self.sim.now,
                    EventKind.ERQST_SUPPRESSED,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                    requestor=packet.requestor or packet.origin,
                )
            return  # a reply is scheduled or pending — §3.2's proviso
        self.erqst_answered += 1
        requestor = packet.requestor or packet.origin
        distance = self.distances.get_or(requestor, self.params.default_distance)
        reply = Packet(
            kind=PacketKind.EREPL,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=PAYLOAD_BYTES,
            requestor=requestor,
            requestor_dist=packet.requestor_dist,
            replier=self.host_id,
            replier_dist=distance,
        )
        self.metrics.on_send(self.host_id, reply)
        self._send_expedited_reply(reply, packet)
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.EREPL_SENT,
                node=self.host_id,
                source=src,
                seqno=seq,
                requestor=requestor,
            )
        if reply_state is None:
            reply_state = ReplyState()
            state.reply_states[seq] = reply_state
        reply_state.replies_sent += 1
        reply_state.hold_until = self.sim.now + self.params.reply_abstinence(distance)

    def _send_expedited_reply(self, reply: Packet, request: Packet) -> None:
        """Transmit an expedited reply; the router-assisted variant
        overrides this to subcast from the turning point (§3.3)."""
        self.net.multicast(reply)

    # ------------------------------------------------------------------
    # Hook: replies update the cache (§3.1)
    # ------------------------------------------------------------------
    def _on_reply_observed(self, packet: Packet) -> None:
        src = packet.source
        seq = packet.seqno
        inflight = self._erqst_inflight.pop((src, seq), None)
        if (
            inflight is not None
            and self.evict_on_failure
            and packet.kind is not PacketKind.EREPL
        ):
            # We unicast an expedited request for this packet, yet plain
            # SRM repaired it: the chosen replier failed us (crashed or
            # partitioned).  Forget every pair naming it; later recoveries
            # relearn a live pair (§3 fall-back, stressed under faults).
            self._evict_failed_replier(src, seq, inflight.replier)
        if seq not in self.source_state(src).stream.ever_lost:
            return  # did not suffer this loss -> discard (§3.1)
        if packet.requestor is None or packet.replier is None:
            return  # unannotated reply (foreign/legacy); nothing to cache
        cache = self.cache_for(src)
        cache.observe(self._tuple_from_reply(packet), now=self.sim.now)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                EventKind.CACHE_UPDATE,
                node=self.host_id,
                source=src,
                seqno=seq,
                requestor=packet.requestor,
                replier=packet.replier,
            )
            # cache.insert / cache.evict (capacity) events only exist on
            # non-default cache policies: default traced runs must stay
            # byte-identical to the pre-cachelab event stream.
            if self.cache_policy is not None:
                if cache.last_outcome == "insert":
                    tracer.emit(
                        self.sim.now,
                        EventKind.CACHE_INSERT,
                        node=self.host_id,
                        source=src,
                        seqno=seq,
                        requestor=packet.requestor,
                        replier=packet.replier,
                    )
                if cache.last_evicted is not None:
                    tracer.emit(
                        self.sim.now,
                        EventKind.CACHE_EVICT,
                        node=self.host_id,
                        source=src,
                        seqno=cache.last_evicted,
                        reason="capacity",
                        evicted=1,
                    )

    def _tuple_from_reply(self, packet: Packet) -> RecoveryTuple:
        return RecoveryTuple(
            seqno=packet.seqno,
            requestor=packet.requestor,  # type: ignore[arg-type]
            requestor_to_source=packet.requestor_dist,
            replier=packet.replier,  # type: ignore[arg-type]
            replier_to_requestor=packet.replier_dist,
        )

    def _evict_failed_replier(self, src: str, seq: int, replier: str) -> None:
        evicted = self.cache_for(src).evict_replier(replier)
        if not evicted:
            return
        self.repliers_evicted += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.CACHE_EVICT,
                node=self.host_id,
                source=src,
                seqno=seq,
                replier=replier,
                evicted=evicted,
            )

    def _on_data(self, packet: Packet) -> None:
        super()._on_data(packet)
        # Data outran the expedited exchange (reordering): the attempt is
        # moot, not a replier failure — just forget it.
        self._erqst_inflight.pop((packet.source, packet.seqno), None)

    # ------------------------------------------------------------------
    # Hook: packet obtained -> cancel any pending expedited request
    # ------------------------------------------------------------------
    def _on_packet_obtained(self, src: str, seq: int) -> None:
        entry = self._expedited.pop((src, seq), None)
        if entry is not None:
            entry[0].cancel()
            self.expedited_cancelled += 1
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    self.sim.now,
                    EventKind.ERQST_CANCELLED,
                    node=self.host_id,
                    source=src,
                    seqno=seq,
                    replier=entry[1].replier,
                )

    def stop(self) -> None:
        super().stop()
        for timer, _ in self._expedited.values():
            timer.cancel()
