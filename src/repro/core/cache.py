"""The per-source optimal requestor/replier cache (§3.1).

Each receiver keeps, per source, the requestor/replier pairs that carried
out the recovery of its most recent losses, as tuples
``⟨i, q, d_qs, r, d_rq⟩``: packet sequence number, requestor, requestor's
distance to the source, replier, and replier's distance to the requestor.

When a packet is recovered by several request/reply exchanges, only the
*optimal* pair is kept — the one minimizing the **recovery delay**
``d_qs + 2·d_rq`` (requestor close to the source detects early; replier
close to the requestor repairs fast).

Update rules on receiving a reply for packet ``i`` (§3.1):

* the host did not suffer the loss of ``i`` → discard;
* cache full and ``i`` older than every cached packet → discard;
* no tuple for ``i`` cached → insert (evicting the least recent packet's
  tuple when full);
* tuple for ``i`` cached → keep whichever of the two is optimal.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryTuple:
    """One cached recovery: ``⟨i, q, d_qs, r, d_rq⟩`` (§3.1), optionally
    extended with the §3.3 turning-point router annotation."""

    seqno: int
    requestor: str
    requestor_to_source: float
    replier: str
    replier_to_requestor: float
    turning_point: str | None = None

    @property
    def recovery_delay(self) -> float:
        """The §3.1 optimality metric ``d_qs + 2·d_rq``."""
        return self.requestor_to_source + 2.0 * self.replier_to_requestor

    @property
    def pair(self) -> tuple[str, str]:
        """The requestor/replier pair."""
        return (self.requestor, self.replier)


class RecoveryPairCache:
    """A bounded cache of optimal recovery tuples, keyed by packet.

    "Recency" is packet sequence order: the least recent packet is the one
    with the smallest sequence number (the transmission is in sequence
    order, so sequence order is loss order).
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: dict[int, RecoveryTuple] = {}
        self.inserts = 0
        self.improvements = 0
        self.rejects = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seqno: int) -> bool:
        return seqno in self._entries

    def get(self, seqno: int) -> RecoveryTuple | None:
        return self._entries.get(seqno)

    def entries(self) -> list[RecoveryTuple]:
        """Cached tuples, most recent packet first."""
        return [self._entries[s] for s in sorted(self._entries, reverse=True)]

    def observe(self, candidate: RecoveryTuple) -> bool:
        """Apply the §3.1 update rules for a reply's recovery tuple.

        The caller is responsible for the "host suffered this loss" check.
        Returns True if the cache changed.
        """
        seqno = candidate.seqno
        existing = self._entries.get(seqno)
        if existing is not None:
            if candidate.recovery_delay < existing.recovery_delay:
                self._entries[seqno] = candidate
                self.improvements += 1
                return True
            return False
        if len(self._entries) >= self.capacity:
            oldest = min(self._entries)
            if seqno < oldest:
                self.rejects += 1
                return False  # less recent than everything cached
            del self._entries[oldest]
        self._entries[seqno] = candidate
        self.inserts += 1
        return True

    def evict_replier(self, host: str) -> int:
        """Drop every cached tuple whose replier is ``host`` (observed
        failing to serve an expedited request).  Returns how many entries
        were evicted; the pair must then be relearned from live replies.
        """
        stale = [seqno for seqno, entry in self._entries.items() if entry.replier == host]
        for seqno in stale:
            del self._entries[seqno]
        self.evictions += len(stale)
        return len(stale)

    def most_recent(self) -> RecoveryTuple | None:
        """The tuple of the most recent recovered loss, if any."""
        if not self._entries:
            return None
        return self._entries[max(self._entries)]

    def pair_frequencies(self) -> dict[tuple[str, str], int]:
        """How often each requestor/replier pair appears in the cache."""
        freq: dict[tuple[str, str], int] = {}
        for entry in self._entries.values():
            freq[entry.pair] = freq.get(entry.pair, 0) + 1
        return freq

    def clear(self) -> None:
        self._entries.clear()
