"""Deprecated shim — the recovery cache moved to :mod:`repro.core.cachelab`.

The per-source optimal requestor/replier cache (§3.1) became one policy
("paper", still the default) among several in the recovery-cache
laboratory.  :class:`~repro.core.cachelab.RecoveryPairCache` and
:class:`~repro.core.cachelab.RecoveryTuple` live there now, unchanged in
behavior; importing them from this module still works but warns.
"""

from __future__ import annotations

import warnings
from typing import Any

_MOVED = ("RecoveryPairCache", "RecoveryTuple")

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.core.cache.{name} moved to repro.core.cachelab; "
            f"import it from there (this shim will be removed)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import cachelab

        return getattr(cachelab, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
