"""Expeditious requestor/replier selection policies (§3.2).

Given the cache of optimal recovery tuples, a policy picks the pair to
carry out the expedited recovery of a new loss.  The paper defines two:

* **most recent loss** — the optimal pair of the most recent packet the
  host lost and has since recovered.  The paper's simulations use this one
  (§4.3): loss location correlates most strongly with the most recent
  loss, and a single-entry cache suffices.
* **most frequent loss** — the pair appearing most frequently among the
  cached tuples.

The interface is open: "other more sophisticated policies … may indeed be
more effective" (§3.2), so downstream users can implement
:class:`SelectionPolicy` themselves.
"""

from __future__ import annotations

import abc

from repro.core.cachelab import CachePolicy, RecoveryTuple
from repro.harness.registries import Registry


class SelectionPolicy(abc.ABC):
    """Strategy for choosing the expeditious recovery pair."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, cache: CachePolicy) -> RecoveryTuple | None:
        """The expeditious recovery tuple, or None when the cache offers
        no usable pair (then only SRM's scheme runs for this loss)."""


class MostRecentLossPolicy(SelectionPolicy):
    """§3.2's *most recent loss* policy (used by the paper's simulations)."""

    name = "most-recent"

    def select(self, cache: CachePolicy) -> RecoveryTuple | None:
        return cache.most_recent()


class MostFrequentLossPolicy(SelectionPolicy):
    """§3.2's *most frequent loss* policy.

    Among the pairs appearing most frequently in the cache, ties break
    toward the pair whose most recent tuple is most recent; the tuple
    returned is that pair's most recent cached tuple.
    """

    name = "most-frequent"

    def select(self, cache: CachePolicy) -> RecoveryTuple | None:
        entries = cache.entries()  # most recent first
        if not entries:
            return None
        freq = cache.pair_frequencies()
        best_pair = None
        best_key = None
        for rank, entry in enumerate(entries):
            key = (freq[entry.pair], -rank)  # frequency, then recency
            if best_key is None or key > best_key:
                best_key = key
                best_pair = entry.pair
        for entry in entries:
            if entry.pair == best_pair:
                return entry
        return None  # pragma: no cover - best_pair comes from entries


#: Registry of policies by CLI/config name; extend via register_policy.
#: (One shared :class:`~repro.harness.registries.Registry` instance —
#: the same helper behind protocols, workloads, and cache policies.)
_REGISTRY: Registry[type[SelectionPolicy]] = Registry("policy")
_REGISTRY.register(MostRecentLossPolicy)
_REGISTRY.register(MostFrequentLossPolicy)

#: The built-in policy names (a snapshot; see policy_names() for the live
#: registry including user registrations).
POLICY_NAMES: tuple[str, ...] = _REGISTRY.names()


def register_policy(policy_cls: type[SelectionPolicy]) -> type[SelectionPolicy]:
    """Register a custom policy class under its ``name`` so configs can
    refer to it by string.  Usable as a class decorator::

        @register_policy
        class FastestPairPolicy(SelectionPolicy):
            name = "fastest-pair"
            ...
    """
    name = policy_cls.name
    if not name or name == SelectionPolicy.name:
        raise ValueError("policy classes must define a unique `name`")
    return _REGISTRY.register(policy_cls, replace=True)


def unregister_policy(name: str) -> None:
    """Remove a registered policy (primarily for tests cleaning up)."""
    _REGISTRY.unregister(name)


def policy_names() -> tuple[str, ...]:
    """All currently registered policy names."""
    return _REGISTRY.names()


def make_policy(name: str) -> SelectionPolicy:
    """Instantiate a registered policy by name."""
    return _REGISTRY.get(name)()
