"""Fleet-scale parameter sweeps: declarative grids, resumable execution,
and a columnar result store.

The paper's entire evaluation is one grid — traces × protocols × loss
models × seeds — and every axis of it is declarative elsewhere in the
repo; :mod:`repro.sweep` is the layer that runs that grid as a unit:

* :mod:`repro.sweep.spec` — TOML/JSON grid specs compiled (cartesian
  product + explicit case lists, deduplicated, eagerly validated) into
  :class:`~repro.exec.jobs.RunJob`\\ s with a sweep-level content digest;
* :mod:`repro.sweep.scheduler` — :func:`run_sweep` streams the job set
  through the execution engine's chunked, work-stealing, retrying pool
  path, checkpointing into the content-addressed run cache (``kill -9``
  and rerun: completed jobs are cache hits, zero recomputation) and
  emitting ``sweep.*`` progress events on the :mod:`repro.obs` bus;
* :mod:`repro.sweep.store` — one sqlite row per run with the summary
  metrics flattened into columns, so "expedited fraction by protocol ×
  workload" is one SQL statement, not ten thousand JSON reads;
* :mod:`repro.sweep.report` — table/CSV/markdown rendering and the
  canned per-axis roll-up.

Drive it from the CLI::

    cesrm sweep run grid.toml --jobs 8
    cesrm sweep status
    cesrm sweep query --group-by protocol,workload --metric avg_latency_rtt
    cesrm sweep report --format markdown
"""

from repro.sweep.report import FORMATS, render_rows, render_sweep_report
from repro.sweep.scheduler import SweepRunReport, run_sweep
from repro.sweep.spec import (
    AXES,
    SweepCase,
    SweepError,
    SweepSpec,
    compile_sweep,
    load_sweep,
)
from repro.sweep.store import (
    AGGREGATES,
    DIMENSIONS,
    METRICS,
    SweepStore,
    SweepStoreError,
    default_store_path,
    flatten_summary,
)

__all__ = [
    "AGGREGATES",
    "AXES",
    "DIMENSIONS",
    "FORMATS",
    "METRICS",
    "SweepCase",
    "SweepError",
    "SweepRunReport",
    "SweepSpec",
    "SweepStore",
    "SweepStoreError",
    "compile_sweep",
    "default_store_path",
    "flatten_summary",
    "load_sweep",
    "render_rows",
    "render_sweep_report",
    "run_sweep",
]
