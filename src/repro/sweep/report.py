"""Rendering for sweep queries: ASCII tables, CSV, and markdown.

The store answers every question as ``(headers, rows)``; this module
turns that into the three formats the CLI ships — the plain table the
terminal shows, CSV for spreadsheets/pandas, markdown for PR
descriptions and papers — plus the canned ``cesrm sweep report``
roll-up (one aggregate table per axis that actually varies).
"""

from __future__ import annotations

import csv
import io
from typing import Any, Sequence

from repro.sweep.store import SweepStore

FORMATS = ("table", "csv", "markdown")


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_rows(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], fmt: str = "table"
) -> str:
    """Render one result set in the requested format."""
    if fmt == "csv":
        return _render_csv(headers, rows)
    if fmt == "markdown":
        return _render_markdown(headers, rows)
    if fmt == "table":
        return _render_table(headers, rows)
    raise ValueError(f"unknown format {fmt!r}; known: {', '.join(FORMATS)}")


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _render_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if v is None else v for v in row])
    return out.getvalue().rstrip("\n")


def _render_markdown(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
    return "\n".join(lines)


#: The canned report's metric set (what §4's figures talk about).
REPORT_METRICS = (
    "avg_latency_rtt",
    "expedited_success",
    "expedited_fraction",
    "unrecovered",
)


def render_sweep_report(store: SweepStore, digest: str, fmt: str = "table") -> str:
    """The standing roll-up: aggregate the headline metrics over every
    dimension that varies in this sweep (a dimension with one distinct
    value adds nothing but noise to a group-by)."""
    varying = [
        dim
        for dim in ("protocol", "trace", "workload", "faults", "seed", "params")
        if len(store.distinct(digest, dim)) > 1
    ]
    group_by = varying or ["protocol"]
    counts = store.counts(digest)
    headers, rows = store.query(
        digest, group_by=group_by, metrics=REPORT_METRICS, agg="mean"
    )
    lines = [
        f"sweep {digest[:12]}: {counts['ok']} ok, {counts['failed']} failed "
        f"({counts['recorded']} recorded)",
        f"grouped by {', '.join(group_by)} (mean over {REPORT_METRICS[0]} …):",
        "",
        render_rows(headers, rows, fmt),
    ]
    return "\n".join(lines)


__all__ = ["FORMATS", "REPORT_METRICS", "render_rows", "render_sweep_report"]
