"""The sweep scheduler: grid in, checkpointed columnar results out.

:func:`run_sweep` drives one compiled :class:`~repro.sweep.spec.SweepSpec`
through the :class:`~repro.exec.pool.ExecutionEngine`'s streaming path
(:meth:`~repro.exec.pool.ExecutionEngine.map_unordered`): cache hits
surface instantly, misses fan out in work-stolen chunks over the process
pool with bounded per-job retries, and every outcome is ingested into
the :class:`~repro.sweep.store.SweepStore` the moment it lands.

Resumability is structural, not bolted on: the content-addressed run
cache *is* the checkpoint.  ``kill -9`` a sweep at any point and rerun
the same spec — every job whose result already reached the cache is a
hit (zero recomputation), only the in-flight remainder executes, and
the store rows are idempotent upserts.  Nothing needs a journal.

Progress goes to the :mod:`repro.obs` bus: pass a
:class:`~repro.obs.tracer.Tracer` and the scheduler emits ``sweep.start``
/ ``sweep.job`` / ``sweep.job-failed`` / ``sweep.done`` events (the
``time`` field is wall-clock seconds since the sweep began), so the
same sinks that record simulation runs can watch a fleet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.exec.pool import ExecutionEngine
from repro.obs import EventKind, Tracer
from repro.sweep.spec import SweepSpec
from repro.sweep.store import SweepStore


@dataclass(frozen=True)
class SweepRunReport:
    """What one :func:`run_sweep` pass did, for humans and greppers."""

    digest: str
    name: str
    total: int
    cached: int
    executed: int
    failed: int
    retried: int
    duplicates: int
    elapsed: float

    @property
    def jobs_per_sec(self) -> float:
        done = self.cached + self.executed
        return done / self.elapsed if self.elapsed > 0 else 0.0

    def describe(self) -> str:
        lines = [
            f"sweep {self.name} [{self.digest[:12]}]: {self.total} jobs"
            + (f" ({self.duplicates} duplicate points pruned)" if self.duplicates else ""),
            f"  cached={self.cached} executed={self.executed} "
            f"failed={self.failed} retried={self.retried}",
            f"  elapsed {self.elapsed:.1f}s, {self.jobs_per_sec:.1f} jobs/s",
        ]
        return "\n".join(lines)


def run_sweep(
    spec: SweepSpec,
    engine: ExecutionEngine,
    store: SweepStore,
    tracer: Tracer | None = None,
    chunk_size: int | None = None,
    retries: int = 2,
    progress: Callable[[str], None] | None = None,
) -> SweepRunReport:
    """Run (or resume) ``spec``: execute every missing job, ingest every
    outcome, return the tally.

    ``engine`` supplies the worker count and the run cache (the
    checkpoint); ``store`` receives one row per job.  Deterministic end
    state: however the work was split, killed, or resumed, a finished
    sweep's store rows depend only on the spec and the source tree.
    """
    digest = store.begin_sweep(spec)
    by_key = {case.key: case for case in spec.cases}
    started = time.monotonic()
    if tracer is not None:
        tracer.emit(
            0.0,
            EventKind.SWEEP_START,
            sweep=digest,
            name=spec.name,
            jobs=len(spec.cases),
        )
    cached = executed = failed = 0
    retried_before = engine.stats.retried
    done = 0
    for outcome in engine.map_unordered(
        [case.job for case in spec.cases],
        chunk_size=chunk_size,
        retries=retries,
    ):
        case = by_key[outcome.job.key()]
        store.record(
            digest,
            case,
            outcome.summary,
            cached=outcome.cached,
            attempts=outcome.attempts,
            error=outcome.error,
        )
        done += 1
        elapsed = time.monotonic() - started
        if outcome.summary is None:
            failed += 1
            if tracer is not None:
                tracer.emit(
                    elapsed,
                    EventKind.SWEEP_JOB_FAILED,
                    sweep=digest,
                    job=outcome.job.describe(),
                    attempts=outcome.attempts,
                    error=outcome.error,
                )
        else:
            if outcome.cached:
                cached += 1
            else:
                executed += 1
            if tracer is not None:
                tracer.emit(
                    elapsed,
                    EventKind.SWEEP_JOB,
                    sweep=digest,
                    job=outcome.job.describe(),
                    cached=outcome.cached,
                    attempts=outcome.attempts,
                )
        if progress is not None and (
            done == len(spec.cases) or done % _progress_stride(len(spec.cases)) == 0
        ):
            progress(
                f"[sweep] {done}/{len(spec.cases)} "
                f"(cached={cached} executed={executed} failed={failed})"
            )
    elapsed = time.monotonic() - started
    report = SweepRunReport(
        digest=digest,
        name=spec.name,
        total=len(spec.cases),
        cached=cached,
        executed=executed,
        failed=failed,
        retried=engine.stats.retried - retried_before,
        duplicates=spec.duplicates,
        elapsed=elapsed,
    )
    if tracer is not None:
        tracer.emit(
            elapsed,
            EventKind.SWEEP_DONE,
            sweep=digest,
            cached=cached,
            executed=executed,
            failed=failed,
        )
    return report


def _progress_stride(total: int) -> int:
    """Report roughly every 2% of a big sweep, every job of a small one."""
    return max(1, total // 50)


__all__ = ["SweepRunReport", "run_sweep"]
