"""The columnar sweep result store (sqlite).

A fleet-scale sweep cannot live as one JSON blob per run: answering
"expedited fraction by protocol × workload" over ten thousand runs must
not re-read ten thousand files.  :class:`SweepStore` keeps **one row per
run** with the summary metrics every figure/query consumes already
flattened into columns, so aggregation is a single SQL statement —
the per-run :class:`~repro.exec.summary.RunSummary` JSON stays in the
content-addressed run cache (which is also the resume checkpoint), and
the store is derived, rebuildable data.

Layout::

    sweeps(digest PRIMARY KEY, name, description, n_jobs, schema,
           created_at, updated_at)
    runs(sweep_digest, job_key,
         -- dimensions --
         protocol, trace, workload, faults, cache, churn, seed,
         max_packets, params,
         -- bookkeeping --
         status, cached, attempts, error, ingested_at,
         -- metrics --
         n_packets, total_losses, recovered, unrecovered,
         avg_latency_rtt, expedited_requests, expedited_replies,
         expedited_success, expedited_fraction, retransmissions,
         multicast_control, unicast_control, events, sim_time, wall_time,
         cache_inserts, cache_evictions, cache_hit_rate,
         n_receivers, churn_rate,
         PRIMARY KEY (sweep_digest, job_key))

Writes are committed per row (WAL journal), so a ``kill -9`` mid-sweep
leaves a readable store; re-ingesting a row is an idempotent
``INSERT OR REPLACE``.  Opening a store written by an older build
migrates it in place: columns added since (the ``cache``/``churn``
dimensions, the ``cache_*`` metrics, ``n_receivers``/``churn_rate``)
are ``ALTER TABLE``-ed on, with NULL/default values for pre-existing
rows.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exec.summary import RunSummary
from repro.metrics.stats import mean
from repro.sweep.spec import SweepCase, SweepSpec

#: Dimension columns (queryable, groupable).
DIMENSIONS = (
    "protocol",
    "trace",
    "workload",
    "faults",
    "cache",
    "churn",
    "seed",
    "max_packets",
    "params",
)

#: Flattened metric columns (aggregatable).
METRICS = (
    "n_packets",
    "total_losses",
    "recovered",
    "unrecovered",
    "avg_latency_rtt",
    "expedited_requests",
    "expedited_replies",
    "expedited_success",
    "expedited_fraction",
    "retransmissions",
    "multicast_control",
    "unicast_control",
    "events",
    "sim_time",
    "wall_time",
    "cache_inserts",
    "cache_evictions",
    "cache_hit_rate",
    "n_receivers",
    "churn_rate",
)

#: Bookkeeping columns (queryable but not metrics).
BOOKKEEPING = ("status", "cached", "attempts", "error")

_INT_COLUMNS = {
    "seed",
    "max_packets",
    "cached",
    "attempts",
    "n_packets",
    "total_losses",
    "recovered",
    "unrecovered",
    "expedited_requests",
    "expedited_replies",
    "retransmissions",
    "multicast_control",
    "unicast_control",
    "events",
    "cache_inserts",
    "cache_evictions",
    "n_receivers",
}
_FLOAT_COLUMNS = {
    "avg_latency_rtt",
    "expedited_success",
    "expedited_fraction",
    "sim_time",
    "wall_time",
    "cache_hit_rate",
    "churn_rate",
}

#: SQL aggregate per user-facing name.
AGGREGATES = {
    "mean": "AVG",
    "sum": "SUM",
    "min": "MIN",
    "max": "MAX",
    "count": "COUNT",
}


class SweepStoreError(ValueError):
    """Raised for unknown columns/aggregates in queries and for
    unresolvable sweep selectors."""


def flatten_summary(summary: RunSummary) -> dict[str, Any]:
    """One run's summary reduced to the store's metric columns."""
    result = summary.to_result()
    receivers = result.receivers
    latencies = [result.avg_normalized_recovery_time(r) for r in receivers]
    n_recoveries = 0
    n_expedited = 0
    for rows in summary.recoveries.values():
        n_recoveries += len(rows)
        n_expedited += sum(1 for row in rows if row[2])
    metrics = result.metrics
    cache = summary.cache or {}
    return {
        "n_packets": result.n_packets,
        "total_losses": result.total_losses,
        "recovered": result.recovered_losses,
        "unrecovered": result.unrecovered_losses,
        "avg_latency_rtt": mean(latencies) if latencies else 0.0,
        "expedited_requests": metrics.expedited_requests_sent,
        "expedited_replies": metrics.expedited_replies_sent,
        "expedited_success": metrics.expedited_success_rate,
        "expedited_fraction": (
            n_expedited / n_recoveries if n_recoveries else 0.0
        ),
        "retransmissions": result.overhead.retransmissions,
        "multicast_control": result.overhead.multicast_control,
        "unicast_control": result.overhead.unicast_control,
        "events": result.events_processed,
        "sim_time": result.sim_time,
        "wall_time": result.wall_time,
        # NULL on default-cache runs (no explicit policy, no stats block).
        "cache_inserts": cache.get("inserts"),
        "cache_evictions": cache.get("evictions"),
        "cache_hit_rate": cache.get("hit_rate"),
        # Initial membership — the topology's scale point (a churn run's
        # final membership is in the summary's churn block).
        "n_receivers": len(receivers),
        # NULL on static-membership runs (no churn block).
        "churn_rate": (summary.churn or {}).get("rate"),
    }


class SweepStore:
    """One sqlite file holding any number of sweeps' flattened results."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._create_tables()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _create_tables(self) -> None:
        self._conn.execute(
            """CREATE TABLE IF NOT EXISTS sweeps (
                digest TEXT PRIMARY KEY,
                name TEXT NOT NULL,
                description TEXT NOT NULL DEFAULT '',
                n_jobs INTEGER NOT NULL,
                schema INTEGER NOT NULL,
                created_at REAL NOT NULL,
                updated_at REAL NOT NULL
            )"""
        )
        metric_cols = ",\n".join(
            f"{name} {'REAL' if name in _FLOAT_COLUMNS else 'INTEGER'}"
            for name in METRICS
        )
        self._conn.execute(
            f"""CREATE TABLE IF NOT EXISTS runs (
                sweep_digest TEXT NOT NULL,
                job_key TEXT NOT NULL,
                protocol TEXT NOT NULL,
                trace TEXT NOT NULL,
                workload TEXT NOT NULL DEFAULT '',
                faults TEXT NOT NULL DEFAULT '',
                cache TEXT NOT NULL DEFAULT '',
                churn TEXT NOT NULL DEFAULT '',
                seed INTEGER NOT NULL,
                max_packets INTEGER,
                params TEXT NOT NULL DEFAULT '{{}}',
                status TEXT NOT NULL,
                cached INTEGER NOT NULL,
                attempts INTEGER NOT NULL,
                error TEXT,
                ingested_at REAL NOT NULL,
                {metric_cols},
                PRIMARY KEY (sweep_digest, job_key)
            )"""
        )
        self._migrate_runs_table()
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS runs_by_dims ON runs "
            "(sweep_digest, protocol, trace, workload)"
        )
        self._conn.commit()

    def _migrate_runs_table(self) -> None:
        """Bring a ``runs`` table created by an older build up to the
        current column set.

        ``CREATE TABLE IF NOT EXISTS`` never alters an existing table, so
        a store written before the ``cache``/``churn`` dimensions or the
        later metric columns existed would otherwise break every INSERT.
        Missing columns are added in place: dimensions default to ``''``
        (pre-existing rows ran the default policy / static membership),
        metric columns to NULL (the stats were never collected).
        """
        existing = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(runs)").fetchall()
        }
        wanted: list[tuple[str, str]] = [
            ("cache", "TEXT NOT NULL DEFAULT ''"),
            ("churn", "TEXT NOT NULL DEFAULT ''"),
        ]
        wanted += [
            (name, "REAL" if name in _FLOAT_COLUMNS else "INTEGER")
            for name in METRICS
        ]
        for name, decl in wanted:
            if name not in existing:
                self._conn.execute(
                    f"ALTER TABLE runs ADD COLUMN {name} {decl}"
                )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def begin_sweep(self, spec: SweepSpec) -> str:
        """Register (or refresh) the sweep's manifest row; returns its
        digest."""
        digest = spec.digest()
        now = time.time()
        self._conn.execute(
            """INSERT INTO sweeps (digest, name, description, n_jobs,
                                   schema, created_at, updated_at)
               VALUES (?, ?, ?, ?, ?, ?, ?)
               ON CONFLICT(digest) DO UPDATE SET
                 name=excluded.name, description=excluded.description,
                 n_jobs=excluded.n_jobs, updated_at=excluded.updated_at""",
            (
                digest,
                spec.name,
                spec.description,
                len(spec.cases),
                spec.to_manifest()["schema"],
                now,
                now,
            ),
        )
        self._conn.commit()
        return digest

    def record(
        self,
        sweep_digest: str,
        case: SweepCase,
        summary: RunSummary | None,
        cached: bool,
        attempts: int,
        error: str | None = None,
    ) -> None:
        """Ingest one job outcome (idempotent; commits immediately so the
        store survives a kill)."""
        metrics = (
            flatten_summary(summary)
            if summary is not None
            else {name: None for name in METRICS}
        )
        columns = (
            ["sweep_digest", "job_key"]
            + list(DIMENSIONS)
            + list(BOOKKEEPING)
            + ["ingested_at"]
            + list(METRICS)
        )
        axes = case.axes()
        values = (
            [sweep_digest, case.key]
            + [axes[d] for d in DIMENSIONS]
            + [
                "ok" if summary is not None else "failed",
                int(cached),
                attempts,
                error,
            ]
            + [time.time()]
            + [metrics[name] for name in METRICS]
        )
        placeholders = ", ".join("?" for _ in columns)
        self._conn.execute(
            f"INSERT OR REPLACE INTO runs ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            values,
        )
        self._conn.execute(
            "UPDATE sweeps SET updated_at = ? WHERE digest = ?",
            (time.time(), sweep_digest),
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def sweeps(self) -> list[dict[str, Any]]:
        """Every sweep in the store, newest-updated first, with run
        completion counts."""
        rows = self._conn.execute(
            """SELECT s.digest, s.name, s.description, s.n_jobs,
                      s.created_at, s.updated_at,
                      COALESCE(SUM(CASE WHEN r.status = 'ok' THEN 1 END), 0),
                      COALESCE(SUM(CASE WHEN r.status = 'failed' THEN 1 END), 0)
               FROM sweeps s LEFT JOIN runs r ON r.sweep_digest = s.digest
               GROUP BY s.digest
               ORDER BY s.updated_at DESC"""
        ).fetchall()
        return [
            {
                "digest": digest,
                "name": name,
                "description": description,
                "n_jobs": n_jobs,
                "created_at": created,
                "updated_at": updated,
                "ok": ok,
                "failed": failed,
            }
            for digest, name, description, n_jobs, created, updated, ok, failed in rows
        ]

    def resolve(self, selector: str | None) -> str:
        """Resolve a sweep selector — a digest prefix, a sweep name, or
        None/'' (the most recently updated sweep) — to a full digest."""
        sweeps = self.sweeps()
        if not sweeps:
            raise SweepStoreError(f"no sweeps recorded in {self.path}")
        if not selector:
            return sweeps[0]["digest"]
        by_digest = [s for s in sweeps if s["digest"].startswith(selector)]
        if len(by_digest) == 1:
            return by_digest[0]["digest"]
        if len(by_digest) > 1:
            raise SweepStoreError(
                f"digest prefix {selector!r} is ambiguous "
                f"({len(by_digest)} sweeps)"
            )
        by_name = [s for s in sweeps if s["name"] == selector]
        if by_name:
            return by_name[0]["digest"]  # newest-updated wins
        raise SweepStoreError(
            f"no sweep matches {selector!r} (try `cesrm sweep status`)"
        )

    def counts(self, digest: str) -> dict[str, int]:
        row = self._conn.execute(
            """SELECT COUNT(*),
                      COALESCE(SUM(CASE WHEN status = 'ok' THEN 1 END), 0),
                      COALESCE(SUM(CASE WHEN status = 'failed' THEN 1 END), 0),
                      COALESCE(SUM(cached), 0)
               FROM runs WHERE sweep_digest = ?""",
            (digest,),
        ).fetchone()
        return {
            "recorded": row[0],
            "ok": row[1],
            "failed": row[2],
            "cached": row[3],
        }

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        digest: str,
        where: Mapping[str, Any] | None = None,
        group_by: Iterable[str] = (),
        metrics: Iterable[str] = ("avg_latency_rtt",),
        agg: str = "mean",
    ) -> tuple[list[str], list[tuple]]:
        """Aggregate the sweep's runs entirely in SQL.

        Returns ``(headers, rows)``: the group columns, then
        ``<agg>_<metric>`` per requested metric, then ``n`` (the row
        count per group).  Only ``status = 'ok'`` rows aggregate.
        """
        groups = [self._check_column(g, DIMENSIONS, "group-by") for g in group_by]
        metric_list = [self._check_column(m, METRICS, "metric") for m in metrics]
        sql_agg = AGGREGATES.get(agg)
        if sql_agg is None:
            raise SweepStoreError(
                f"unknown aggregate {agg!r}; known: {', '.join(AGGREGATES)}"
            )
        select = groups + [
            f"{sql_agg}({m}) AS {agg}_{m}" for m in metric_list
        ]
        select.append("COUNT(*) AS n")
        sql = f"SELECT {', '.join(select)} FROM runs"
        clauses = ["sweep_digest = ?", "status = 'ok'"]
        values: list[Any] = [digest]
        for key, value in (where or {}).items():
            column = self._check_column(
                key, DIMENSIONS + METRICS + BOOKKEEPING, "where"
            )
            clauses.append(f"{column} = ?")
            values.append(self._coerce(column, value))
        sql += " WHERE " + " AND ".join(clauses)
        if groups:
            sql += f" GROUP BY {', '.join(groups)} ORDER BY {', '.join(groups)}"
        headers = groups + [f"{agg}_{m}" for m in metric_list] + ["n"]
        return headers, self._conn.execute(sql, values).fetchall()

    def rows(
        self, digest: str, where: Mapping[str, Any] | None = None
    ) -> tuple[list[str], list[tuple]]:
        """Raw per-run rows (dimensions + status + metrics), filtered."""
        columns = list(DIMENSIONS) + ["status", "cached", "attempts"] + list(METRICS)
        clauses = ["sweep_digest = ?"]
        values: list[Any] = [digest]
        for key, value in (where or {}).items():
            column = self._check_column(
                key, DIMENSIONS + METRICS + BOOKKEEPING, "where"
            )
            clauses.append(f"{column} = ?")
            values.append(self._coerce(column, value))
        sql = (
            f"SELECT {', '.join(columns)} FROM runs "
            f"WHERE {' AND '.join(clauses)} "
            f"ORDER BY protocol, trace, workload, faults, cache, seed, params"
        )
        return columns, self._conn.execute(sql, values).fetchall()

    def distinct(self, digest: str, column: str) -> list[Any]:
        """Distinct values of one dimension within a sweep (what varies)."""
        col = self._check_column(column, DIMENSIONS, "distinct")
        rows = self._conn.execute(
            f"SELECT DISTINCT {col} FROM runs WHERE sweep_digest = ? "
            f"ORDER BY {col}",
            (digest,),
        ).fetchall()
        return [row[0] for row in rows]

    @staticmethod
    def _check_column(name: str, allowed: tuple[str, ...], what: str) -> str:
        if name not in allowed:
            raise SweepStoreError(
                f"unknown {what} column {name!r}; known: {', '.join(allowed)}"
            )
        return name

    @staticmethod
    def _coerce(column: str, value: Any) -> Any:
        """CLI filters arrive as strings; cast to the column's type."""
        if not isinstance(value, str):
            return value
        if column in _INT_COLUMNS:
            try:
                return int(value)
            except ValueError:
                raise SweepStoreError(
                    f"column {column!r} is integer-typed; got {value!r}"
                ) from None
        if column in _FLOAT_COLUMNS:
            try:
                return float(value)
            except ValueError:
                raise SweepStoreError(
                    f"column {column!r} is float-typed; got {value!r}"
                ) from None
        return value


def default_store_path(cache_dir: str | Path) -> Path:
    """The store that rides next to the run cache: ``<dir>/sweeps.sqlite``."""
    return Path(cache_dir) / "sweeps.sqlite"


__all__ = [
    "AGGREGATES",
    "BOOKKEEPING",
    "DIMENSIONS",
    "METRICS",
    "SweepStore",
    "SweepStoreError",
    "default_store_path",
    "flatten_summary",
]
