"""Declarative sweep specs: a parameter grid compiled into ``RunJob``\\ s.

The paper's whole evaluation (§4, Figures 1–5, Table 1) is one grid —
traces × protocols × loss models × seeds — and every axis of that grid
is already declarative somewhere in the repo: protocols in the
:mod:`~repro.harness.registry`, workloads in :mod:`repro.workloads`,
faults in :mod:`repro.faults`, generative topologies in the ``--trace``
slot.  A *sweep spec* names the axes once and lets the machinery take
the cartesian product::

    name = "figure2"
    description = "Expedited-recovery latency gap, CESRM vs SRM"

    [defaults]
    max_packets = 3000

    [grid]
    protocol = ["srm", "cesrm"]
    trace = ["WRN951113", "WRN951030"]
    seed = [0, 1, 2]

    [grid.params]
    cache_capacity = [1, 16]

    [[cases]]           # explicit extra points appended to the product
    protocol = "cesrm-router"
    trace = "WRN951113"

Specs load from TOML (shown) or JSON — the same mapping either way.
:func:`compile_sweep` expands the grid plus the explicit case list into
deduplicated :class:`SweepCase`\\ s, each wrapping one fully-validated
:class:`~repro.exec.jobs.RunJob`, and the sweep's :meth:`~SweepSpec.digest`
is a content digest of that job set — two specs that mean the same runs
have the same digest no matter how they were written, which is what keys
resumability and the result store.

Axes
----
``protocol``, ``trace`` (Yajnik name or topology spec), ``workload``
(:mod:`repro.workloads` spec string, ``""`` = default schedule),
``faults`` (path to a :class:`~repro.faults.FaultPlan` JSON file,
resolved relative to the spec file, or an inline plan table; ``""`` =
no faults), ``cache`` (a :mod:`repro.core.cachelab` policy spec string
like ``lru:capacity=8``; ``""`` = the paper's default cache), ``churn``
(a :mod:`repro.churn` membership spec like ``churn:rate=0.5``; ``""`` =
static membership), ``seed`` (folds into both the config seed and the trace
synthesis seed, exactly like the CLI's ``--seed``), and — under
``grid.params`` / ``params`` / ``cases.params`` — any
:class:`~repro.harness.config.SimulationConfig` field.

``max_packets`` is the per-trace replay cap (``0`` means the full
trace); it defaults to the harness's standard 3000-packet cap and, like
``seed``, shapes both the trace synthesis and the config.
"""

from __future__ import annotations

import hashlib
import json
import tomllib
from dataclasses import dataclass, fields
from itertools import product
from pathlib import Path
from typing import Any, Mapping

from repro.exec.jobs import RunJob
from repro.faults import FaultPlan
from repro.harness.config import SimulationConfig

#: Bump when the compiled-job layout changes meaning; folds into digests.
SWEEP_SCHEMA = 1

#: The swept dimensions a grid (or case) may name directly.
AXES = (
    "protocol",
    "trace",
    "workload",
    "faults",
    "cache",
    "churn",
    "seed",
    "max_packets",
)

#: Default per-trace replay cap, deliberately *not* env-sensitive (the
#: same spec file must compile to the same digest everywhere).
DEFAULT_SWEEP_MAX_PACKETS = 3000

_CONFIG_FIELDS = {f.name for f in fields(SimulationConfig)}
#: Config fields that may not appear under ``params`` because they are
#: proper axes (seed/max_packets shape trace synthesis too; cache is a
#: dimension column of the result store).
_RESERVED_PARAMS = ("seed", "max_packets", "cache")


class SweepError(ValueError):
    """Raised for malformed sweep specs (unknown keys, bad axis values,
    unresolvable fault plans, empty grids)."""


@dataclass(frozen=True)
class SweepCase:
    """One grid point: the compiled job plus its axis coordinates.

    ``axes`` records where in the grid the job sits — the dimension
    columns of the result store — with ``params`` as a canonical-JSON
    string of the case's config overrides.
    """

    job: RunJob
    protocol: str
    trace: str
    workload: str
    faults: str
    #: Cache-policy spec (``""`` = the paper's default cache).
    cache: str
    #: Membership-churn spec (``""`` = static membership).
    churn: str
    seed: int
    max_packets: int | None
    #: Canonical JSON of the SimulationConfig overrides (sorted keys).
    params: str

    @property
    def key(self) -> str:
        return self.job.key()

    def axes(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "trace": self.trace,
            "workload": self.workload,
            "faults": self.faults,
            "cache": self.cache,
            "churn": self.churn,
            "seed": self.seed,
            "max_packets": self.max_packets,
            "params": self.params,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A compiled sweep: named, deduplicated, content-addressed."""

    name: str
    description: str
    cases: tuple[SweepCase, ...]
    #: Grid points pruned because they compiled to an identical job.
    duplicates: int = 0

    def __len__(self) -> int:
        return len(self.cases)

    def digest(self) -> str:
        """Content digest of the job *set* (order-independent): identical
        for any two specs that compile to the same runs."""
        payload = json.dumps(
            {
                "schema": SWEEP_SCHEMA,
                "jobs": sorted(case.key for case in self.cases),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:40]

    def to_manifest(self) -> dict[str, Any]:
        """What the result store records about the sweep itself."""
        return {
            "name": self.name,
            "description": self.description,
            "n_jobs": len(self.cases),
            "schema": SWEEP_SCHEMA,
        }

    def describe(self) -> str:
        dup = f" ({self.duplicates} duplicate points pruned)" if self.duplicates else ""
        return f"sweep {self.name} [{self.digest()[:12]}]: {len(self.cases)} jobs{dup}"


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_sweep(path: str | Path) -> SweepSpec:
    """Load and compile a sweep spec from a ``.toml`` or ``.json`` file.

    Relative fault-plan paths inside the spec resolve against the spec
    file's directory.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SweepError(f"cannot read sweep spec {path}: {exc}") from None
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SweepError(f"invalid JSON in {path}: {exc}") from None
    else:
        try:
            data = tomllib.loads(raw.decode())
        except tomllib.TOMLDecodeError as exc:
            raise SweepError(f"invalid TOML in {path}: {exc}") from None
    if not isinstance(data, dict):
        raise SweepError(f"sweep spec {path} must be a table/object")
    data.setdefault("name", path.stem)
    return compile_sweep(data, base_dir=path.parent)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
_TOP_LEVEL = {"name", "description", "defaults", "grid", "params", "cases"}


def compile_sweep(
    data: Mapping[str, Any], base_dir: str | Path | None = None
) -> SweepSpec:
    """Expand ``data`` (the parsed spec mapping) into a :class:`SweepSpec`.

    Validation is eager and total: every protocol, trace, workload,
    fault plan, and config override of every grid point is checked here,
    so a sweep never fails three layers down in a pool worker.
    """
    base = Path(base_dir) if base_dir is not None else Path.cwd()
    unknown = set(data) - _TOP_LEVEL
    if unknown:
        raise SweepError(
            f"unknown sweep spec keys {sorted(unknown)}; "
            f"expected {sorted(_TOP_LEVEL)}"
        )
    name = data.get("name") or "sweep"
    description = str(data.get("description", ""))

    defaults = _check_point_mapping(data.get("defaults", {}), "defaults")
    fixed_params = _check_params(data.get("params", {}), "params")

    grid = data.get("grid", {})
    if not isinstance(grid, Mapping):
        raise SweepError("grid must be a table of axis -> list of values")
    grid_params = _grid_params(grid.get("params", {}))
    axes_values: dict[str, list[Any]] = {}
    for axis, values in grid.items():
        if axis == "params":
            continue
        if axis not in AXES:
            raise SweepError(
                f"unknown grid axis {axis!r}; known axes: {', '.join(AXES)} "
                f"(config fields go under [grid.params])"
            )
        if not isinstance(values, (list, tuple)):
            raise SweepError(f"grid axis {axis!r} must be a list of values")
        if not values:
            raise SweepError(f"grid axis {axis!r} is an empty list")
        axes_values[axis] = list(values)

    points: list[dict[str, Any]] = []
    if axes_values or grid_params or not data.get("cases"):
        axis_names = list(axes_values)
        param_names = list(grid_params)
        pools = [axes_values[a] for a in axis_names] + [
            grid_params[p] for p in param_names
        ]
        for combo in product(*pools) if pools else [()]:
            point = dict(zip(axis_names, combo[: len(axis_names)]))
            point_params = dict(zip(param_names, combo[len(axis_names) :]))
            if point_params:
                point["params"] = point_params
            points.append(point)

    cases_data = data.get("cases", [])
    if not isinstance(cases_data, (list, tuple)):
        raise SweepError("cases must be an array of tables")
    for index, case in enumerate(cases_data):
        points.append(_check_point_mapping(case, f"cases[{index}]"))

    plan_cache: dict[str, FaultPlan] = {}
    cases: list[SweepCase] = []
    seen: set[str] = set()
    duplicates = 0
    for index, point in enumerate(points):
        case = _compile_point(
            point, defaults, fixed_params, base, plan_cache, where=f"point {index}"
        )
        if case.key in seen:
            duplicates += 1
            continue
        seen.add(case.key)
        cases.append(case)
    if not cases:
        raise SweepError(
            f"sweep {name!r} compiles to zero jobs — give it a [grid] "
            f"and/or [[cases]]"
        )
    return SweepSpec(
        name=str(name),
        description=description,
        cases=tuple(cases),
        duplicates=duplicates,
    )


def _compile_point(
    point: Mapping[str, Any],
    defaults: Mapping[str, Any],
    fixed_params: Mapping[str, Any],
    base: Path,
    plan_cache: dict[str, FaultPlan],
    where: str,
) -> SweepCase:
    def resolve(axis: str, fallback: Any) -> Any:
        if axis in point:
            return point[axis]
        return defaults.get(axis, fallback)

    protocol = resolve("protocol", None)
    trace = resolve("trace", None)
    if protocol is None:
        raise SweepError(f"{where}: no protocol (set it in [grid], [defaults], or the case)")
    if trace is None:
        raise SweepError(f"{where}: no trace (set it in [grid], [defaults], or the case)")
    workload = resolve("workload", "")
    faults_value = resolve("faults", "")
    cache = resolve("cache", "")
    if cache:
        from repro.core.cachelab import CacheError, compile_cache_policy

        try:
            compile_cache_policy(str(cache))
        except CacheError as exc:
            raise SweepError(f"{where}: {exc}") from None
    churn = resolve("churn", "")
    if churn:
        from repro.churn import ChurnError, compile_churn

        try:
            compile_churn(str(churn))
        except ChurnError as exc:
            raise SweepError(f"{where}: {exc}") from None
    seed = resolve("seed", 0)
    max_packets = resolve("max_packets", DEFAULT_SWEEP_MAX_PACKETS)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise SweepError(f"{where}: seed must be an integer, got {seed!r}")
    if not isinstance(max_packets, int) or isinstance(max_packets, bool) or max_packets < 0:
        raise SweepError(
            f"{where}: max_packets must be a non-negative integer "
            f"(0 = full trace), got {max_packets!r}"
        )
    cap = None if max_packets == 0 else max_packets

    _validate_trace(str(trace), where)
    params = dict(fixed_params)
    params.update(_check_params(point.get("params", {}), where))
    faults_label, plan = _resolve_faults(faults_value, base, plan_cache, where)

    try:
        config = SimulationConfig().with_(
            seed=seed, max_packets=cap, cache=str(cache or ""), **params
        )
    except (TypeError, ValueError) as exc:
        raise SweepError(f"{where}: bad config params: {exc}") from None
    try:
        job = RunJob(
            trace=str(trace),
            protocol=str(protocol),
            config=config,
            trace_seed=seed,
            trace_max_packets=cap,
            faults=plan,
            workload=str(workload),
            churn=str(churn or ""),
        )
    except ValueError as exc:
        raise SweepError(f"{where}: {exc}") from None
    return SweepCase(
        job=job,
        protocol=str(protocol),
        trace=str(trace),
        workload=str(workload),
        faults=faults_label,
        cache=str(cache or ""),
        churn=str(churn or ""),
        seed=seed,
        max_packets=cap,
        params=json.dumps(params, sort_keys=True),
    )


def _check_point_mapping(data: Any, where: str) -> dict[str, Any]:
    if not isinstance(data, Mapping):
        raise SweepError(f"{where} must be a table")
    unknown = set(data) - set(AXES) - {"params"}
    if unknown:
        raise SweepError(
            f"unknown keys {sorted(unknown)} in {where}; "
            f"expected {', '.join(AXES)} or params"
        )
    return dict(data)


def _check_params(data: Any, where: str) -> dict[str, Any]:
    if not isinstance(data, Mapping):
        raise SweepError(f"{where} params must be a table of config fields")
    out = {}
    for key, value in data.items():
        _check_param_name(key, where)
        out[key] = value
    return out


def _grid_params(data: Any) -> dict[str, list[Any]]:
    if not isinstance(data, Mapping):
        raise SweepError("grid.params must be a table of config field -> list")
    out: dict[str, list[Any]] = {}
    for key, values in data.items():
        _check_param_name(key, "grid.params")
        if not isinstance(values, (list, tuple)) or not values:
            raise SweepError(
                f"grid.params.{key} must be a non-empty list of values"
            )
        out[key] = list(values)
    return out


def _check_param_name(key: str, where: str) -> None:
    if key in _RESERVED_PARAMS:
        raise SweepError(
            f"{where}: {key!r} is a sweep axis, not a param — "
            f"set it at the grid/defaults/case level"
        )
    if key not in _CONFIG_FIELDS:
        raise SweepError(
            f"{where}: unknown config param {key!r}; known: "
            f"{sorted(_CONFIG_FIELDS - set(_RESERVED_PARAMS))}"
        )


def _validate_trace(trace: str, where: str) -> None:
    from repro.traces.yajnik import YAJNIK_TRACES
    from repro.workloads import WorkloadError, is_topology_spec, parse_topology_spec

    if trace in {m.name for m in YAJNIK_TRACES}:
        return
    if is_topology_spec(trace):
        try:
            parse_topology_spec(trace)
        except WorkloadError as exc:
            raise SweepError(f"{where}: {exc}") from None
        return
    raise SweepError(
        f"{where}: unknown trace {trace!r} (expected a Yajnik name or a "
        f"topology spec like tree:depth=3,fanout=4)"
    )


def _resolve_faults(
    value: Any, base: Path, plan_cache: dict[str, FaultPlan], where: str
) -> tuple[str, FaultPlan]:
    """A faults axis value — ``""``, a plan-file path, or an inline plan
    table — resolved to ``(store label, FaultPlan)``."""
    if value == "" or value is None:
        return "", FaultPlan()
    if isinstance(value, Mapping):
        try:
            plan = FaultPlan.from_dict(dict(value))
        except (ValueError, TypeError, KeyError) as exc:
            raise SweepError(f"{where}: bad inline fault plan: {exc}") from None
        label = "inline:" + hashlib.sha256(
            plan.to_json().encode()
        ).hexdigest()[:8]
        return label, plan
    if isinstance(value, str):
        cache_key = str((base / value).resolve())
        plan = plan_cache.get(cache_key)
        if plan is None:
            try:
                plan = FaultPlan.load(base / value)
            except (OSError, ValueError, KeyError) as exc:
                raise SweepError(
                    f"{where}: cannot load fault plan {value!r}: {exc}"
                ) from None
            plan_cache[cache_key] = plan
        return value, plan
    raise SweepError(
        f"{where}: faults must be '' (none), a plan-file path, or an "
        f"inline plan table, got {value!r}"
    )


__all__ = [
    "AXES",
    "DEFAULT_SWEEP_MAX_PACKETS",
    "SWEEP_SCHEMA",
    "SweepCase",
    "SweepError",
    "SweepSpec",
    "compile_sweep",
    "load_sweep",
]
