"""LMS — Light-weight Multicast Services (Papadopoulos et al., INFOCOM '98).

The router-assisted reliable-multicast comparator the paper discusses in
§3.3: every router on the multicast tree maintains a *replier link* toward
a designated replier host for its subtree; repair requests travel upstream
until a router diverts them down its replier link; repairs are unicast to
the *turning point* router and subcast downstream.

The paper's qualitative claims about LMS, which this package lets the
benchmarks verify head-to-head:

* localization — like router-assisted CESRM, repairs reach only the loss
  subtree (similar exposure);
* fragility — replier state lives **in the routers**; when a designated
  replier leaves or crashes, recovery through that router stalls until the
  state is repaired, whereas CESRM keeps recovering through SRM and adapts
  its pair selection on the fly (§3.3, §5).

Modelling note: on a static tree, LMS's hop-by-hop NACK forwarding follows
exactly the tree path from the requestor to the designated replier through
their lowest common ancestor — which is the turning point.  The
:class:`~repro.lms.fabric.LmsFabric` therefore computes ``(turning point,
replier)`` from the router tables, and the packets ride the ordinary
unicast / unicast-then-subcast primitives, crossing the same links a
per-hop implementation would.
"""

from repro.lms.fabric import LmsFabric
from repro.lms.agent import LmsAgent

__all__ = ["LmsFabric", "LmsAgent"]
