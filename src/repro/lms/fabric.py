"""LMS router state: replier designation and request routing.

Each router designates one *replier* host inside its subtree (here: the
hop-closest receiver, ties broken lexicographically — LMS leaves the
election mechanism open).  A repair request (NACK) from a receiver climbs
toward the source; at each router:

* if the NACK arrived on the router's replier link (the designated replier
  lives in the same child subtree the NACK came from), the replier shares
  the loss — forward the NACK upstream;
* otherwise divert it down the replier link; this router is the NACK's
  **turning point**, stamped on the request so the repair can be unicast
  back to it and subcast downstream.

If the NACK climbs all the way to the root, the source itself answers and
the repair is subcast from the root (i.e. reaches the whole group).

Router state is the protocol's Achilles heel (§3.3): it must be updated
when members leave or crash.  :meth:`LmsFabric.fail_host` models a crash
*without* repairing router state; :meth:`redesignate` models the (slow)
control-plane repair.  The churn benchmarks measure exactly this window.
"""

from __future__ import annotations

from repro.net.topology import MulticastTree


class LmsFabric:
    """Replier tables for every router of a multicast tree."""

    def __init__(self, tree: MulticastTree) -> None:
        self.tree = tree
        self._failed: set[str] = set()
        #: router -> designated replier host in its subtree.
        self.repliers: dict[str, str] = {}
        for router in [*tree.routers, tree.source]:
            self.repliers[router] = self._elect(router)

    # ------------------------------------------------------------------
    # Designation
    # ------------------------------------------------------------------
    def _elect(self, router: str) -> str:
        """The hop-closest live receiver in ``router``'s subtree; the
        source elects itself (it holds every packet)."""
        if router == self.tree.source:
            return self.tree.source
        candidates = [
            receiver
            for receiver in self.tree.subtree_receivers(router)
            if receiver not in self._failed
        ]
        if not candidates:
            return self.tree.source  # empty subtree: defer to the source
        return min(
            candidates,
            key=lambda r: (self.tree.hop_distance(router, r), r),
        )

    def replier_of(self, router: str) -> str:
        return self.repliers[router]

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def route_request(self, requestor: str) -> tuple[str, str]:
        """Where a NACK from ``requestor`` ends up: ``(turning_point,
        replier)``.

        Walks the ancestor chain exactly as per-hop LMS forwarding would:
        the first router whose designated replier is *not* in the child
        subtree the NACK arrives from diverts it; otherwise the NACK
        reaches the source.
        """
        child = requestor
        for ancestor in self.tree.ancestors(requestor):
            if ancestor == self.tree.source:
                break
            replier = self.repliers[ancestor]
            if not self._in_subtree(replier, child):
                return (ancestor, replier)
            child = ancestor
        return (self.tree.source, self.tree.source)

    def _in_subtree(self, host: str, subtree_root: str) -> bool:
        return host == subtree_root or self.tree.is_descendant(host, subtree_root)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def fail_host(self, host: str) -> None:
        """Record a crash.  Router tables are **not** updated — that is
        LMS's fragility window (§3.3)."""
        self._failed.add(host)

    def stale_routers(self) -> list[str]:
        """Routers whose designated replier has crashed."""
        return [
            router
            for router, replier in self.repliers.items()
            if replier in self._failed
        ]

    def redesignate(self) -> int:
        """Repair every stale router table (the eventual control-plane
        update); returns the number of routers fixed."""
        fixed = 0
        for router in self.stale_routers():
            self.repliers[router] = self._elect(router)
            fixed += 1
        return fixed
