"""The LMS protocol agent.

LMS replaces SRM's suppression-based recovery entirely: on detecting a
loss, a receiver immediately sends a NACK which the router fabric steers
to the designated replier; the replier unicasts the repair to the turning
point, which subcasts it downstream.  There are no multicast requests, no
random suppression timers — and no SRM fall-back, which is exactly the
robustness difference §3.3/§5 call out.

Reuses from :class:`~repro.srm.agent.SrmAgent`: session messages and
distance estimation, gap/session loss detection, per-source stream state,
and the reply-abstinence bookkeeping (approximating router NACK
deduplication).  Replaces: request scheduling (immediate NACK with
exponential retry) and reply transmission (turning-point subcast).

Wire format: NACKs ride :class:`ERQST` packets (unicast control) and
repairs ride :class:`EREPL` packets (subcast payload), so the §4.4
overhead accounting applies to LMS unchanged.
"""

from __future__ import annotations

import random

from repro.lms.fabric import LmsFabric
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Packet, PacketKind
from repro.sim.engine import Simulator
from repro.srm.agent import SrmAgent
from repro.srm.constants import SrmParams
from repro.srm.state import ReplyState


class LmsAgent(SrmAgent):
    """An LMS endpoint: NACK-to-designated-replier recovery."""

    protocol_name = "lms"

    #: A shared-loss NACK is forwarded upstream at most this many times
    #: before being dropped (the requestor's retry covers the rest).
    MAX_FORWARDS = 3

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_id: str,
        source: str,
        params: SrmParams,
        rng: random.Random,
        metrics: MetricsCollector,
        fabric: LmsFabric,
        nack_delay: float = 0.0,
        session_period: float = 1.0,
        detect_on_request: bool = True,
    ) -> None:
        super().__init__(
            sim=sim,
            network=network,
            host_id=host_id,
            source=source,
            params=params,
            rng=rng,
            metrics=metrics,
            session_period=session_period,
            detect_on_request=detect_on_request,
        )
        self.fabric = fabric
        self.nack_delay = nack_delay
        self.nacks_sent = 0
        self.repairs_sent = 0
        self.nacks_forwarded = 0

    # ------------------------------------------------------------------
    # Loss detection -> immediate NACK with exponential retry
    # ------------------------------------------------------------------
    def _detect_loss(self, seq, initial_backoff=0, src=None):
        src = src or self.primary_source
        super()._detect_loss(seq, initial_backoff, src)
        state = self.source_state(src).request_states.get(seq)
        if state is not None and state.timer.armed:
            state.timer.start(self.nack_delay)

    def _request_timer_fired(self, src: str, seq: int) -> None:
        state = self.source_state(src).request_states.get(seq)
        if state is None:  # pragma: no cover - timers cancelled on removal
            return
        turning_point, replier = self.fabric.route_request(self.host_id)
        self._send_nack(src, seq, turning_point, replier, forwards=0)
        state.requests_sent += 1
        self.nacks_sent += 1
        # Retry with exponential back-off until the repair arrives: the
        # base interval covers a NACK + repair round trip to the replier.
        state.backoff += 1
        base = max(2.0 * self._distance_to(replier), 4.0 * self.net.propagation_delay)
        scale = 2.0 ** min(state.backoff, self.params.max_backoff)
        state.timer.start(scale * base)

    def _send_nack(
        self, src: str, seq: int, turning_point: str, replier: str, forwards: int
    ) -> None:
        if replier == self.host_id:
            return  # degenerate routing; rely on the retry
        packet = Packet(
            kind=PacketKind.ERQST,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=CONTROL_BYTES,
            requestor=self.host_id,
            requestor_dist=self._distance_to(src),
            replier=replier,
            turning_point=turning_point,
            payload={"forwards": forwards},
        )
        self.metrics.on_send(self.host_id, packet)
        self.net.unicast(replier, packet)

    # ------------------------------------------------------------------
    # NACK arrival -> subcast repair (or forward upstream)
    # ------------------------------------------------------------------
    def _on_expedited_request(self, packet: Packet) -> None:
        src = packet.source
        seq = packet.seqno
        state = self.source_state(src)
        self._advance_stream(src, seq - 1)
        if state.stream.has(seq):
            reply_state = state.reply_states.get(seq)
            if reply_state is not None and reply_state.pending(self.sim.now):
                return  # just repaired this packet (NACK dedup window)
            self._send_repair(packet)
            return
        # The designated replier shares the loss: forward the NACK
        # upstream from the turning point, as the router fabric would.
        forwards = (packet.payload or {}).get("forwards", 0)
        if forwards >= self.MAX_FORWARDS:
            return  # give up; the requestor's retry takes over
        origin_point = packet.turning_point or self.host_id
        turning_point, replier = self.fabric.route_request(self.host_id)
        if replier == self.host_id:
            return
        self.nacks_forwarded += 1
        forwarded = Packet(
            kind=PacketKind.ERQST,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=CONTROL_BYTES,
            requestor=packet.requestor,
            requestor_dist=packet.requestor_dist,
            replier=replier,
            # keep the ORIGINAL turning point: the repair must cover the
            # requestor's loss subtree, not ours
            turning_point=origin_point,
            payload={"forwards": forwards + 1},
        )
        self.metrics.on_send(self.host_id, forwarded)
        self.net.unicast(replier, forwarded)
        # the shared loss is (or will be) under our own recovery too
        if seq not in state.request_states and src != self.host_id:
            self._detect_loss(seq, src=src)

    def _send_repair(self, request: Packet) -> None:
        src = request.source
        seq = request.seqno
        state = self.source_state(src)
        turning_point = request.turning_point or self.host_id
        repair = Packet(
            kind=PacketKind.EREPL,
            origin=self.host_id,
            source=src,
            seqno=seq,
            size_bytes=PAYLOAD_BYTES,
            requestor=request.requestor or request.origin,
            requestor_dist=request.requestor_dist,
            replier=self.host_id,
            replier_dist=self.distances.get_or(
                request.requestor or request.origin, self.params.default_distance
            ),
        )
        self.metrics.on_send(self.host_id, repair)
        self.repairs_sent += 1
        if self.net.tree.has_node(turning_point) and turning_point != self.host_id:
            self.net.unicast_then_subcast(turning_point, repair)
        else:
            self.net.unicast_then_subcast(
                self.net.tree.lca(self.host_id, repair.requestor or self.host_id),
                repair,
            )
        reply_state = state.reply_states.get(seq)
        if reply_state is None:
            reply_state = ReplyState()
            state.reply_states[seq] = reply_state
        reply_state.replies_sent += 1
        reply_state.hold_until = self.sim.now + self.params.reply_abstinence(
            self.net.propagation_delay * 2
        )

    # ------------------------------------------------------------------
    # LMS never multicasts SRM requests; foreign RQSTs cannot occur.
    # ------------------------------------------------------------------
    def _on_request(self, packet: Packet) -> None:  # pragma: no cover
        raise AssertionError("LMS never produces multicast repair requests")
