"""Network substrate: multicast tree, links, and packet delivery.

The paper's simulations run over a *static IP multicast tree*: the source at
the root, routers inside, receivers at the leaves (§4.1).  This subpackage
models exactly that world:

* :class:`~repro.net.topology.MulticastTree` — the tree, with path/LCA/
  subtree queries used by every other layer.
* :class:`~repro.net.packet.Packet` — data, session, request, reply,
  expedited-request, and expedited-reply packets with CESRM annotations.
* :class:`~repro.net.network.Network` — hop-by-hop store-and-forward
  delivery with per-link bandwidth, propagation delay, FIFO queues,
  loss-injection hooks, and link-crossing cost accounting.

Multicast floods the shared tree from the sender, unicast follows the unique
tree path, and subcast (router-assisted CESRM, §3.3) floods only the subtree
below a router.
"""

from repro.net.packet import Packet, PacketKind, Cast, PAYLOAD_BYTES, CONTROL_BYTES
from repro.net.topology import (
    MulticastTree,
    NodeKind,
    TopologyError,
    build_balanced_tree,
    build_random_tree,
)
from repro.net.link import LinkState
from repro.net.network import Network, CrossingCounter

__all__ = [
    "Packet",
    "PacketKind",
    "Cast",
    "PAYLOAD_BYTES",
    "CONTROL_BYTES",
    "MulticastTree",
    "NodeKind",
    "TopologyError",
    "build_balanced_tree",
    "build_random_tree",
    "LinkState",
    "Network",
    "CrossingCounter",
]
