"""Per-direction link state: bandwidth, propagation delay, FIFO queue.

§4.3 fixes every link at 1.5 Mbps with a uniform propagation delay (the
published results use 20 ms).  Payload packets take a store-and-forward
transmission delay of ``size * 8 / bandwidth`` (≈5.46 ms for 1 KB); control
packets are 0 KB and therefore experience pure propagation.  Each direction
of a link transmits serially, so back-to-back payloads queue behind one
another (``busy_until`` tracking).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class LinkState:
    """State of a single *direction* of a duplex link."""

    bandwidth_bps: float
    propagation_delay: float
    busy_until: float = 0.0
    packets_carried: int = 0
    bytes_carried: int = 0
    queueing_delay_total: float = 0.0

    def transmission_time(self, size_bytes: int) -> float:
        """Serialization delay for a packet of ``size_bytes``."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes * 8.0 / self.bandwidth_bps

    def enqueue(self, now: float, size_bytes: int) -> float:
        """Admit a packet at local time ``now``; return its arrival time at
        the far end (queueing + transmission + propagation)."""
        start = max(now, self.busy_until)
        tx = self.transmission_time(size_bytes)
        self.queueing_delay_total += start - now
        self.busy_until = start + tx
        self.packets_carried += 1
        self.bytes_carried += size_bytes
        return start + tx + self.propagation_delay

    @property
    def mean_queueing_delay(self) -> float:
        if not self.packets_carried:
            return 0.0
        return self.queueing_delay_total / self.packets_carried
