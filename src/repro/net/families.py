"""Generative topology families behind a ``TopologySpec`` registry.

The 14 Yajnik receiver sets are measurements topping out at ~12
receivers; this registry is how runs scale past them (ROADMAP item 1).
A topology spec rides in the ``trace`` slot of a
:class:`~repro.exec.jobs.RunJob` and names a *family* plus parameters in
the shared :mod:`repro.harness.specstr` grammar::

    tree:depth=3,fanout=4                    # 64 receivers, balanced
    transit_stub:transits=8,stubs=8,hosts=16 # 1024 receivers, 3-tier
    random_tree:receivers=500,depth=6        # seeded irregular tree
    fat_tree:k=16                            # 1024 receivers, 4-level

Families mirror the :class:`~repro.harness.registry.ProtocolSpec` /
``WorkloadSpec`` / ``CachePolicySpec`` surfaces: a frozen
:class:`TopologySpec` registered by name, listed by ``cesrm topologies``,
and validated eagerly wherever a spec string enters the system.

Loss synthesis comes in two flavours:

* the original ``tree`` family keeps the *calibrated* Gilbert machinery
  (:func:`~repro.traces.synthesize.synthesize_on_tree`) so every
  pre-existing ``tree:`` spec stays byte-identical;
* the scale families (``transit_stub``, ``random_tree``, ``fat_tree``)
  use *uncalibrated* per-link Gilbert processes — ``loss`` is the
  per-link marginal rate directly.  Calibration is an O(receivers x
  depth) expectation inside an 80-step bisection; at 10^5 receivers that
  dominates the run, and the scale experiments care about relative
  protocol behaviour, not hitting a published loss total.

This module must not import :mod:`repro.workloads` (the legacy
``repro.workloads.topology`` shim imports *us*); everything here builds
on :mod:`repro.net.topology`, :mod:`repro.traces` and the harness
grammar only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.harness.registries import Registry
from repro.harness.specstr import canonical_spec as _canonical_spec
from repro.harness.specstr import parse_spec as _parse_spec
from repro.net.topology import MulticastTree, build_balanced_tree, build_random_tree
from repro.sim.rng import RngRegistry
from repro.traces.model import SyntheticTrace
from repro.traces.synthesize import SynthesisParams, _sample_trace, synthesize_on_tree


class TopologyError(ValueError):
    """Raised for unknown families and malformed topology specs."""


#: Loss/schedule parameters shared by every family (string-typed like the
#: raw grammar; :func:`parse_topology_spec` returns the merged mapping).
SHARED_DEFAULTS = {
    "loss": "0.05",
    "period": "0.08",
    "packets": "1000",
}

#: Defaults for the legacy ``tree`` family (also the documented grammar).
TREE_DEFAULTS = {
    "depth": "3",
    "fanout": "2",
    **SHARED_DEFAULTS,
}

#: Receiver-count ceiling for the scale families (the legacy ``tree``
#: family keeps its historical 4096 cap and error wording).
MAX_RECEIVERS = 1_048_576

#: ``random_tree`` uses the golden-frozen :func:`build_random_tree`,
#: whose weighted attachment is quadratic in the router count — cap it
#: well below the O(n) families.
MAX_RANDOM_TREE_RECEIVERS = 16_384


@dataclass(frozen=True)
class TopologySpec:
    """One registered generative topology family.

    ``build`` receives the merged string-parameter mapping (defaults
    filled in, values already validated) and a seeded ``random.Random``
    (ignored by deterministic families).  ``validate`` raises
    :class:`TopologyError` for out-of-range values; ``calibrated``
    selects the legacy calibrated synthesis path.
    """

    name: str
    build: Callable[[Mapping[str, str], random.Random], MulticastTree]
    validate: Callable[[str, Mapping[str, str]], None]
    defaults: Mapping[str, str]
    description: str = ""
    params_doc: Mapping[str, str] = field(default_factory=dict)
    calibrated: bool = False
    tags: tuple[str, ...] = ()


_REGISTRY: Registry[TopologySpec] = Registry("topology family", error=TopologyError)


def register_topology(spec: TopologySpec, replace: bool = False) -> TopologySpec:
    return _REGISTRY.register(spec, replace=replace)


def unregister_topology(name: str) -> None:
    _REGISTRY.unregister(name)


def get_topology_spec(name: str) -> TopologySpec:
    if name not in _REGISTRY:
        raise TopologyError(
            f"unknown topology family {name!r}; known: {topology_names()}"
        )
    return _REGISTRY.get(name)


def topology_names() -> tuple[str, ...]:
    return _REGISTRY.names()


def all_topology_specs() -> tuple[TopologySpec, ...]:
    return _REGISTRY.specs()


#: Backwards-compatible alias (``repro.workloads.topology`` re-exports
#: this as the documented tuple of family names).
def available_topologies() -> tuple[str, ...]:
    return _REGISTRY.names()


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
def is_topology_spec(name: str) -> bool:
    """True when ``name`` is a generative topology spec rather than a
    Yajnik trace name (the router: a ``family:`` prefix we know)."""
    family, _, rest = name.partition(":")
    return bool(rest) and family.strip() in _REGISTRY


def parse_topology_spec(spec: str) -> dict[str, str]:
    """Validate a topology spec and return its full parameter mapping
    (family defaults filled in, unknown keys rejected, values range-
    checked)."""
    family, params = _parse_spec(spec, label="topology", error=TopologyError)
    fspec = get_topology_spec(family)
    unknown = set(params) - set(fspec.defaults)
    if unknown:
        raise TopologyError(
            f"unknown parameter(s) {sorted(unknown)} for topology {family!r}"
        )
    merged = dict(fspec.defaults)
    merged.update(params)
    fspec.validate(spec, merged)
    return merged


def canonical_topology_spec(spec: str) -> str:
    """The normalized spec string equivalent spellings share (family,
    then the *user-supplied* parameters sorted by key — defaults stay
    implicit, exactly like trace names before the registry)."""
    family, params = _parse_spec(spec, label="topology", error=TopologyError)
    get_topology_spec(family)
    return _canonical_spec(family, params)


def _shared_values(spec: str, merged: Mapping[str, str]) -> tuple[float, float, int]:
    """Parse and range-check the shared loss/period/packets parameters."""
    try:
        loss = float(merged["loss"])
        period = float(merged["period"])
        packets = int(merged["packets"])
    except ValueError as exc:
        raise TopologyError(f"malformed topology spec {spec!r}: {exc}") from None
    if not (0.0 < loss < 1.0):
        raise TopologyError(f"topology {spec!r}: loss must be in (0, 1)")
    if period <= 0 or packets < 1:
        raise TopologyError(f"topology {spec!r}: period/packets must be positive")
    return loss, period, packets


# ----------------------------------------------------------------------
# Family: tree (legacy, calibrated)
# ----------------------------------------------------------------------
def _validate_tree(spec: str, merged: Mapping[str, str]) -> None:
    try:
        depth = int(merged["depth"])
        fanout = int(merged["fanout"])
    except ValueError as exc:
        raise TopologyError(f"malformed topology spec {spec!r}: {exc}") from None
    _shared_values(spec, merged)
    if depth < 1 or fanout < 1:
        raise TopologyError(f"topology {spec!r}: depth and fanout must be >= 1")
    if fanout**depth > 4096:
        raise TopologyError(
            f"topology {spec!r}: {fanout ** depth} receivers is unreasonably large"
        )


def _build_tree(merged: Mapping[str, str], _rng: random.Random) -> MulticastTree:
    return build_balanced_tree(
        branching=int(merged["fanout"]), depth=int(merged["depth"])
    )


# ----------------------------------------------------------------------
# Family: transit_stub (Icarus/GT-ITM-style three-tier hierarchy)
# ----------------------------------------------------------------------
TRANSIT_STUB_DEFAULTS = {
    "transits": "3",
    "stubs": "4",
    "hosts": "4",
    **SHARED_DEFAULTS,
}


def _validate_transit_stub(spec: str, merged: Mapping[str, str]) -> None:
    try:
        transits = int(merged["transits"])
        stubs = int(merged["stubs"])
        hosts = int(merged["hosts"])
    except ValueError as exc:
        raise TopologyError(f"malformed topology spec {spec!r}: {exc}") from None
    _shared_values(spec, merged)
    if transits < 1 or stubs < 1 or hosts < 1:
        raise TopologyError(
            f"topology {spec!r}: transits/stubs/hosts must be >= 1"
        )
    receivers = transits * stubs * hosts
    if receivers > MAX_RECEIVERS:
        raise TopologyError(
            f"topology {spec!r}: {receivers} receivers exceeds the"
            f" {MAX_RECEIVERS} cap"
        )


def _build_transit_stub(
    merged: Mapping[str, str], _rng: random.Random
) -> MulticastTree:
    """Source uplinks into a chain of transit routers; each transit
    router serves ``stubs`` stub routers; each stub router serves
    ``hosts`` receivers.  O(n) to build, depth grows with the transit
    chain (loss paths lengthen toward the far stubs, like the multi-AS
    paths the transit-stub generators model)."""
    transits = int(merged["transits"])
    stubs = int(merged["stubs"])
    hosts = int(merged["hosts"])
    parents: dict[str, str] = {}
    receivers: list[str] = []
    previous = "s"
    rid = 0
    for t in range(transits):
        transit = f"t{t + 1}"
        parents[transit] = previous
        previous = transit
        for u in range(stubs):
            stub = f"u{t + 1}_{u + 1}"
            parents[stub] = transit
            for _ in range(hosts):
                rid += 1
                name = f"r{rid}"
                parents[name] = stub
                receivers.append(name)
    return MulticastTree(source="s", parents=parents, receivers=receivers)


# ----------------------------------------------------------------------
# Family: random_tree (seeded irregular tree, legacy builder)
# ----------------------------------------------------------------------
RANDOM_TREE_DEFAULTS = {
    "receivers": "64",
    "depth": "4",
    **SHARED_DEFAULTS,
}


def _validate_random_tree(spec: str, merged: Mapping[str, str]) -> None:
    try:
        receivers = int(merged["receivers"])
        depth = int(merged["depth"])
    except ValueError as exc:
        raise TopologyError(f"malformed topology spec {spec!r}: {exc}") from None
    _shared_values(spec, merged)
    if receivers < 2 or depth < 2:
        raise TopologyError(
            f"topology {spec!r}: receivers must be >= 2 and depth >= 2"
        )
    if receivers > MAX_RANDOM_TREE_RECEIVERS:
        raise TopologyError(
            f"topology {spec!r}: {receivers} receivers exceeds the"
            f" {MAX_RANDOM_TREE_RECEIVERS} cap for random_tree (weighted"
            " attachment is quadratic; use transit_stub or fat_tree)"
        )


def _build_random_tree(merged: Mapping[str, str], rng: random.Random) -> MulticastTree:
    return build_random_tree(int(merged["receivers"]), int(merged["depth"]), rng)


# ----------------------------------------------------------------------
# Family: fat_tree (k-ary fat-tree multicast spanning tree)
# ----------------------------------------------------------------------
FAT_TREE_DEFAULTS = {
    "k": "4",
    **SHARED_DEFAULTS,
}


def _validate_fat_tree(spec: str, merged: Mapping[str, str]) -> None:
    try:
        k = int(merged["k"])
    except ValueError as exc:
        raise TopologyError(f"malformed topology spec {spec!r}: {exc}") from None
    _shared_values(spec, merged)
    if k < 2 or k % 2:
        raise TopologyError(f"topology {spec!r}: k must be an even integer >= 2")
    receivers = k**3 // 4
    if receivers > MAX_RECEIVERS:
        raise TopologyError(
            f"topology {spec!r}: {receivers} receivers exceeds the"
            f" {MAX_RECEIVERS} cap"
        )


def _build_fat_tree(merged: Mapping[str, str], _rng: random.Random) -> MulticastTree:
    """The multicast spanning tree of a k-ary fat-tree: source at a core
    switch, one aggregation switch per pod, k/2 edge switches per
    aggregation, k/2 hosts per edge — k^3/4 receivers at depth 4."""
    k = int(merged["k"])
    half = k // 2
    parents: dict[str, str] = {"c0": "s"}
    receivers: list[str] = []
    rid = 0
    for p in range(k):
        agg = f"a{p + 1}"
        parents[agg] = "c0"
        for j in range(half):
            edge = f"e{p + 1}_{j + 1}"
            parents[edge] = agg
            for _ in range(half):
                rid += 1
                name = f"r{rid}"
                parents[name] = edge
                receivers.append(name)
    return MulticastTree(source="s", parents=parents, receivers=receivers)


# ----------------------------------------------------------------------
# Building and synthesis
# ----------------------------------------------------------------------
def build_topology(spec: str, seed: int = 0) -> MulticastTree:
    """Build the multicast tree a topology spec describes.  Seeded
    families draw their shape from the same ``topology`` stream the
    trace synthesis uses, so ``build_topology(spec, seed)`` matches the
    tree inside ``synthesize_topology_trace(spec, seed)``."""
    merged = parse_topology_spec(spec)
    family, _params = _parse_spec(spec, label="topology", error=TopologyError)
    fspec = get_topology_spec(family)
    name = canonical_topology_spec(spec)
    rng = RngRegistry(seed).fork(f"trace:{name}").stream("topology")
    return fspec.build(merged, rng)


def synthesize_topology_trace(
    spec: str,
    seed: int = 0,
    max_packets: int | None = None,
) -> SyntheticTrace:
    """Synthesize a loss trace over a generative topology.

    The trace is named by the *canonical* spec so equivalent spellings
    (parameter order) share one identity.  The ``tree`` family keeps the
    calibrated path (loss target ``loss * packets * receivers``, scaled
    down with ``max_packets`` like the Yajnik replay caps); the scale
    families sample uncalibrated per-link Gilbert processes at rate
    ``loss``.  Deterministic in ``(spec, seed, max_packets)``.
    """
    merged = parse_topology_spec(spec)
    family, _params = _parse_spec(spec, label="topology", error=TopologyError)
    fspec = get_topology_spec(family)
    name = canonical_topology_spec(spec)
    loss = float(merged["loss"])
    period = float(merged["period"])
    n_packets = int(merged["packets"])
    if max_packets is not None and max_packets < n_packets:
        n_packets = max_packets

    registry = RngRegistry(seed).fork(f"trace:{name}")
    tree = fspec.build(merged, registry.stream("topology"))

    if fspec.calibrated:
        target = max(1, round(loss * n_packets * len(tree.receivers)))
        synth_params = SynthesisParams(
            name=name,
            n_receivers=len(tree.receivers),
            tree_depth=tree.depth,
            period=period,
            n_packets=n_packets,
            target_losses=target,
        )
        return synthesize_on_tree(tree, synth_params, seed=seed)

    rates = {link: loss for link in tree.links}
    synth_params = SynthesisParams(
        name=name,
        n_receivers=len(tree.receivers),
        tree_depth=tree.depth,
        period=period,
        n_packets=n_packets,
        target_losses=0,
    )
    return _sample_trace(synth_params, tree, rates, registry.stream("sample"))


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------
register_topology(
    TopologySpec(
        name="tree",
        build=_build_tree,
        validate=_validate_tree,
        defaults=TREE_DEFAULTS,
        description="balanced fanout^depth tree, calibrated Gilbert losses",
        params_doc={
            "depth": "tree depth (default 3)",
            "fanout": "children per router (default 2)",
            "loss": "target mean receiver loss rate (default 0.05)",
            "period": "inter-packet period in seconds (default 0.08)",
            "packets": "trace length (default 1000)",
        },
        calibrated=True,
        tags=("calibrated",),
    )
)

register_topology(
    TopologySpec(
        name="transit_stub",
        build=_build_transit_stub,
        validate=_validate_transit_stub,
        defaults=TRANSIT_STUB_DEFAULTS,
        description="three-tier transit/stub hierarchy, O(n) build to 10^6",
        params_doc={
            "transits": "transit routers in the backbone chain (default 3)",
            "stubs": "stub routers per transit (default 4)",
            "hosts": "receivers per stub (default 4)",
            "loss": "per-link marginal loss rate (default 0.05)",
            "period": "inter-packet period in seconds (default 0.08)",
            "packets": "trace length (default 1000)",
        },
        tags=("scale",),
    )
)

register_topology(
    TopologySpec(
        name="random_tree",
        build=_build_random_tree,
        validate=_validate_random_tree,
        defaults=RANDOM_TREE_DEFAULTS,
        description="seeded irregular tree (the Yajnik synthesis shape)",
        params_doc={
            "receivers": "receiver count (default 64)",
            "depth": "exact tree depth (default 4)",
            "loss": "per-link marginal loss rate (default 0.05)",
            "period": "inter-packet period in seconds (default 0.08)",
            "packets": "trace length (default 1000)",
        },
        tags=("seeded",),
    )
)

register_topology(
    TopologySpec(
        name="fat_tree",
        build=_build_fat_tree,
        validate=_validate_fat_tree,
        defaults=FAT_TREE_DEFAULTS,
        description="k-ary fat-tree spanning tree (k^3/4 receivers, depth 4)",
        params_doc={
            "k": "fat-tree arity, even (default 4; receivers = k^3/4)",
            "loss": "per-link marginal loss rate (default 0.05)",
            "period": "inter-packet period in seconds (default 0.08)",
            "packets": "trace length (default 1000)",
        },
        tags=("scale",),
    )
)


__all__ = [
    "MAX_RECEIVERS",
    "TREE_DEFAULTS",
    "TopologyError",
    "TopologySpec",
    "all_topology_specs",
    "available_topologies",
    "build_topology",
    "canonical_topology_spec",
    "get_topology_spec",
    "is_topology_spec",
    "parse_topology_spec",
    "register_topology",
    "synthesize_topology_trace",
    "topology_names",
    "unregister_topology",
]
