"""Packet delivery over the multicast tree.

The network forwards packets hop-by-hop through the tree with per-direction
FIFO queueing (:class:`~repro.net.link.LinkState`), applies an optional
loss-injection hook on every directed hop, delivers packets to the agents
attached at host nodes, and accounts one cost unit per link crossing — the
transmission-overhead metric of §4.4.

Three propagation modes exist, mirroring the paper:

* ``multicast`` — flood of the shared tree from the sending host: every
  node forwards to all neighbours except the one the packet arrived on.
  This models SRM/CESRM's use of IP multicast where every request/reply
  reaches the entire group.
* ``unicast`` — along the unique tree path (CESRM's expedited requests).
* ``subcast`` — downstream flood from a router (router-assisted CESRM,
  §3.3), reaching only the subtree below the turning point.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Protocol

from repro.net.link import LinkState
from repro.net.packet import Cast, Packet, PacketKind
from repro.net.topology import MulticastTree, NodeKind
from repro.obs.events import EventKind
from repro.sim.engine import Simulator

#: Loss-injection hook: ``(from_node, to_node, packet) -> True`` to drop the
#: packet on that directed hop.
DropFn = Callable[[str, str, Packet], bool]


class Agent(Protocol):
    """What the network requires of an attached host agent."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class CrossingCounter:
    """Counts link crossings per ``(kind, cast)`` — 1 unit per link (§4.4)."""

    def __init__(self) -> None:
        self._counts: Counter[tuple[PacketKind, Cast]] = Counter()

    def record(self, packet: Packet) -> None:
        self._counts[(packet.kind, packet.cast)] += 1

    def total(self) -> int:
        return sum(self._counts.values())

    def by_kind(self, kind: PacketKind) -> int:
        return sum(n for (k, _), n in self._counts.items() if k is kind)

    def by_cast(self, cast: Cast) -> int:
        return sum(n for (_, c), n in self._counts.items() if c is cast)

    def get(self, kind: PacketKind, cast: Cast) -> int:
        return self._counts[(kind, cast)]

    @property
    def retransmission_crossings(self) -> int:
        """Link crossings by repair replies (payload-carrying)."""
        return sum(n for (k, _), n in self._counts.items() if k.is_retransmission)

    @property
    def multicast_control_crossings(self) -> int:
        """Link crossings by multicast repair requests."""
        return sum(
            n
            for (k, c), n in self._counts.items()
            if k.is_recovery_control and c is not Cast.UNICAST
        )

    @property
    def unicast_control_crossings(self) -> int:
        """Link crossings by unicast (expedited) repair requests."""
        return sum(
            n
            for (k, c), n in self._counts.items()
            if k.is_recovery_control and c is Cast.UNICAST
        )

    def snapshot(self) -> dict[tuple[str, str], int]:
        return {(k.value, c.value): n for (k, c), n in self._counts.items()}


class Network:
    """Hop-by-hop packet delivery over a static multicast tree.

    Parameters
    ----------
    sim:
        The simulation engine supplying the clock and event queue.
    tree:
        The multicast tree topology.
    propagation_delay:
        One-way per-link propagation delay in seconds (paper default 20 ms).
    bandwidth_bps:
        Per-link bandwidth (paper default 1.5 Mbps).
    """

    def __init__(
        self,
        sim: Simulator,
        tree: MulticastTree,
        propagation_delay: float = 0.020,
        bandwidth_bps: float = 1.5e6,
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.propagation_delay = propagation_delay
        self.bandwidth_bps = bandwidth_bps
        self.drop_fn: DropFn | None = None
        #: Optional :class:`~repro.faults.inject.FaultInjector`: consulted on
        #: every directed hop for blocked links and drop/duplicate/delay
        #: rules.  None (or an injector with no rules) costs one branch.
        self.faults = None
        self.crossings = CrossingCounter()
        self.packets_dropped = 0
        self.packets_delivered = 0
        self._agents: dict[str, Agent] = {}
        self._links: dict[tuple[str, str], LinkState] = {}
        for parent, child in tree.links:
            for u, v in ((parent, child), (child, parent)):
                self._links[(u, v)] = LinkState(
                    bandwidth_bps=bandwidth_bps, propagation_delay=propagation_delay
                )

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, host_id: str, agent: Agent) -> None:
        """Attach a protocol agent at a host node (source or receiver)."""
        if self.tree.kind(host_id) is NodeKind.ROUTER:
            raise ValueError(f"cannot attach an agent at router {host_id!r}")
        self._agents[host_id] = agent

    def agent(self, host_id: str) -> Agent:
        return self._agents[host_id]

    def link_state(self, u: str, v: str) -> LinkState:
        """The directed link state for the hop ``u -> v``."""
        return self._links[(u, v)]

    # ------------------------------------------------------------------
    # Latency helpers
    # ------------------------------------------------------------------
    def control_delay(self, a: str, b: str) -> float:
        """One-way latency of a 0-byte control packet from ``a`` to ``b``
        over an idle network: pure propagation."""
        return self.tree.hop_distance(a, b) * self.propagation_delay

    def rtt(self, a: str, b: str) -> float:
        """Round-trip control latency between two nodes."""
        return 2.0 * self.control_delay(a, b)

    # ------------------------------------------------------------------
    # Send primitives
    # ------------------------------------------------------------------
    def multicast(self, packet: Packet) -> Packet:
        """Flood ``packet`` over the tree from ``packet.origin``."""
        packet.cast = Cast.MULTICAST
        packet.sent_at = self.sim.now
        if self.sim.tracer is not None:
            self._trace_send(packet)
        self._flood(packet.origin, None, packet)
        return packet

    def unicast(self, dest: str, packet: Packet) -> Packet:
        """Send ``packet`` from ``packet.origin`` to ``dest`` along the
        unique tree path."""
        if dest == packet.origin:
            raise ValueError("unicast to self")
        packet.cast = Cast.UNICAST
        packet.sent_at = self.sim.now
        if self.sim.tracer is not None:
            self._trace_send(packet, dest=dest)
        path = self.tree.path(packet.origin, dest)
        self._unicast_hop(path, 0, packet)
        return packet

    def unicast_then_subcast(self, turning_point: str, packet: Packet) -> Packet:
        """Router-assisted reply (§3.3): unicast from ``packet.origin`` up to
        the ``turning_point`` router, which then subcasts downstream."""
        packet.cast = Cast.SUBCAST
        packet.sent_at = self.sim.now
        packet.turning_point = turning_point
        if self.sim.tracer is not None:
            self._trace_send(packet, turning_point=turning_point)
        if turning_point == packet.origin:
            self._subcast_from(turning_point, packet)
            return packet
        path = self.tree.path(packet.origin, turning_point)
        self._unicast_hop(path, 0, packet, then_subcast=True)
        return packet

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flood(self, node: str, from_node: str | None, packet: Packet) -> None:
        for neighbor in self.tree.neighbors(node):
            if neighbor == from_node:
                continue
            self._transmit(node, neighbor, packet, self._flood_arrival)

    def _flood_arrival(self, node: str, from_node: str, packet: Packet) -> None:
        self._maybe_deliver(node, packet)
        self._flood(node, from_node, packet)

    def _subcast_from(self, router: str, packet: Packet) -> None:
        for child in self.tree.children(router):
            self._transmit(router, child, packet, self._subcast_arrival)

    def _subcast_arrival(self, node: str, from_node: str, packet: Packet) -> None:
        self._maybe_deliver(node, packet)
        self._subcast_from(node, packet)

    def _unicast_hop(
        self,
        path: tuple[str, ...],
        index: int,
        packet: Packet,
        then_subcast: bool = False,
    ) -> None:
        u, v = path[index], path[index + 1]

        def arrival(node: str, _from: str, pkt: Packet) -> None:
            if index + 2 < len(path):
                self._unicast_hop(path, index + 1, pkt, then_subcast)
            elif then_subcast:
                self._subcast_from(node, pkt)
            else:
                self._maybe_deliver(node, pkt, expected=True)

        self._transmit(u, v, packet, arrival)

    def _transmit(
        self,
        u: str,
        v: str,
        packet: Packet,
        on_arrival: Callable[[str, str, Packet], None],
    ) -> None:
        self.crossings.record(packet)
        tracer = self.sim.tracer
        if self.drop_fn is not None and self.drop_fn(u, v, packet):
            self._record_drop(u, v, packet, tracer)
            return
        duplicate = False
        extra_delay = 0.0
        if self.faults is not None:
            effect = self.faults.on_hop(u, v, packet)
            if effect is not None:
                if effect.drop:
                    self._record_drop(u, v, packet, tracer)
                    return
                duplicate = effect.duplicate
                extra_delay = effect.extra_delay
        link = self._links[(u, v)]
        now = self.sim.now
        if tracer is not None:
            wait = link.busy_until - now
            tracer.emit(
                now,
                EventKind.NET_HOP,
                node=v,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                cast=packet.cast.value,
                link=f"{u}->{v}",
            )
            if wait > 0:
                tracer.emit(
                    now,
                    EventKind.NET_QUEUE,
                    node=v,
                    source=packet.source,
                    seqno=packet.seqno,
                    link=f"{u}->{v}",
                    wait=wait,
                )
                tracer.observe("net.queueing_delay", wait)
        arrival_time = link.enqueue(now, packet.size_bytes)
        self.sim.schedule_at(arrival_time + extra_delay, on_arrival, v, u, packet)
        if duplicate:
            # The copy serializes behind the original on the same link and
            # continues with the same forwarding behaviour downstream.
            self.crossings.record(packet)
            dup_arrival = link.enqueue(now, packet.size_bytes)
            self.sim.schedule_at(dup_arrival + extra_delay, on_arrival, v, u, packet)

    def _record_drop(self, u: str, v: str, packet: Packet, tracer) -> None:
        self.packets_dropped += 1
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                EventKind.NET_DROP,
                node=v,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                link=f"{u}->{v}",
            )

    def _maybe_deliver(self, node: str, packet: Packet, expected: bool = False) -> None:
        agent = self._agents.get(node)
        if agent is None:
            if expected:
                raise RuntimeError(f"unicast destination {node!r} has no agent")
            return
        if node == packet.origin:
            return
        self.packets_delivered += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now,
                EventKind.NET_DELIVER,
                node=node,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                cast=packet.cast.value,
                origin=packet.origin,
                latency=self.sim.now - packet.sent_at,
            )
        agent.receive(packet)

    def _trace_send(self, packet: Packet, **detail: Any) -> None:
        self.sim.tracer.emit(
            self.sim.now,
            EventKind.NET_SEND,
            node=packet.origin,
            source=packet.source,
            seqno=packet.seqno,
            pkt=packet.kind.value,
            cast=packet.cast.value,
            **detail,
        )
