"""Packet delivery over the multicast tree.

The network forwards packets hop-by-hop through the tree with per-direction
FIFO queueing (:class:`~repro.net.link.LinkState`), applies an optional
loss-injection hook on every directed hop, delivers packets to the agents
attached at host nodes, and accounts one cost unit per link crossing — the
transmission-overhead metric of §4.4.

Three propagation modes exist, mirroring the paper:

* ``multicast`` — flood of the shared tree from the sending host: every
  node forwards to all neighbours except the one the packet arrived on.
  This models SRM/CESRM's use of IP multicast where every request/reply
  reaches the entire group.
* ``unicast`` — along the unique tree path (CESRM's expedited requests).
* ``subcast`` — downstream flood from a router (router-assisted CESRM,
  §3.3), reaching only the subtree below the turning point.

Internally every mode runs on the integer-indexed forwarding kernel: node
ids are interned once through the tree's :class:`~repro.net.index
.TopologyIndex`, each directed hop is a prebuilt record carrying its
endpoint names and :class:`LinkState`, unicast walks a precomputed integer
path, and arrivals go through the engine's raw no-``Event`` scheduling
path.  The observable contract is unchanged: loss hooks, fault-injector
hop rules, and trace events all still see string node ids.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.net.link import LinkState
from repro.net.packet import Cast, Packet, PacketKind
from repro.net.topology import MulticastTree, NodeKind
from repro.obs.events import EventKind
from repro.sim.engine import Simulator

#: Loss-injection hook: ``(from_node, to_node, packet) -> True`` to drop the
#: packet on that directed hop.
DropFn = Callable[[str, str, Packet], bool]

#: Dense ``(kind, cast)`` slot numbering for the crossing counter: the hot
#: path resolves a packet's slot once per send primitive and every hop then
#: counts with plain list-index arithmetic — no enum hashing per crossing.
_DATA_KIND = PacketKind.DATA
_KINDS = tuple(PacketKind)
_CASTS = tuple(Cast)
_N_CAST = len(_CASTS)
_N_SLOTS = len(_KINDS) * _N_CAST
_KIND_INDEX = {kind: i for i, kind in enumerate(_KINDS)}
_CAST_INDEX = {cast: i for i, cast in enumerate(_CASTS)}
_MULTICAST_COL = _CAST_INDEX[Cast.MULTICAST]
_UNICAST_COL = _CAST_INDEX[Cast.UNICAST]
_SUBCAST_COL = _CAST_INDEX[Cast.SUBCAST]
#: slot -> (kind row, cast column) and snapshot key, precomputed.
_SLOT_ROW = tuple(slot // _N_CAST for slot in range(_N_SLOTS))
_SLOT_COL = tuple(slot % _N_CAST for slot in range(_N_SLOTS))
_SLOT_KEYS = tuple(
    (kind.value, cast.value) for kind in _KINDS for cast in _CASTS
)
#: Kind rows whose crossings feed the Figure 5b overhead categories.
_RETRANSMISSION_ROWS = tuple(
    _KIND_INDEX[k] for k in _KINDS if k.is_retransmission
)
_RECOVERY_CONTROL_ROWS = tuple(
    _KIND_INDEX[k] for k in _KINDS if k.is_recovery_control
)
_UNICAST_CONTROL_SLOTS = tuple(
    row * _N_CAST + _UNICAST_COL for row in _RECOVERY_CONTROL_ROWS
)

#: Directed hops are keyed ``u << _HOP_SHIFT | v`` — a fixed-stride int
#: key that stays valid as membership churn appends node ids (the old
#: ``u * n + v`` keying broke the moment ``n`` grew).  2^21 node ids is
#: comfortably above the topology registry's receiver cap.
_HOP_SHIFT = 21


class Agent(Protocol):
    """What the network requires of an attached host agent."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class CrossingCounter:
    """Counts link crossings per ``(kind, cast)`` — 1 unit per link (§4.4).

    Counts live in flat lists indexed by a dense ``(kind, cast)`` slot;
    running per-kind and per-cast totals are maintained in :meth:`record` /
    :meth:`record_slot`, so :meth:`by_kind` / :meth:`by_cast` /
    :meth:`total` are O(1) lookups instead of scans over the distinct-key
    set.  The network resolves a packet's slot once per send primitive and
    calls :meth:`record_slot` per hop; :meth:`record` is the enum-keyed
    convenience path for external callers.
    """

    __slots__ = ("_slots", "_kind_counts", "_cast_counts", "_total")

    def __init__(self) -> None:
        self._slots = [0] * _N_SLOTS
        self._kind_counts = [0] * len(_KINDS)
        self._cast_counts = [0] * _N_CAST
        self._total = 0

    @staticmethod
    def slot_of(kind: PacketKind, cast: Cast) -> int:
        """The dense slot for ``(kind, cast)`` — resolve once, count often."""
        return _KIND_INDEX[kind] * _N_CAST + _CAST_INDEX[cast]

    def record(self, packet: Packet) -> None:
        self.record_slot(
            _KIND_INDEX[packet.kind] * _N_CAST + _CAST_INDEX[packet.cast]
        )

    def record_slot(self, slot: int) -> None:
        self._slots[slot] += 1
        self._kind_counts[_SLOT_ROW[slot]] += 1
        self._cast_counts[_SLOT_COL[slot]] += 1
        self._total += 1

    def total(self) -> int:
        return self._total

    def by_kind(self, kind: PacketKind) -> int:
        return self._kind_counts[_KIND_INDEX[kind]]

    def by_cast(self, cast: Cast) -> int:
        return self._cast_counts[_CAST_INDEX[cast]]

    def get(self, kind: PacketKind, cast: Cast) -> int:
        return self._slots[_KIND_INDEX[kind] * _N_CAST + _CAST_INDEX[cast]]

    @property
    def retransmission_crossings(self) -> int:
        """Link crossings by repair replies (payload-carrying)."""
        kind_counts = self._kind_counts
        return sum(kind_counts[row] for row in _RETRANSMISSION_ROWS)

    @property
    def multicast_control_crossings(self) -> int:
        """Link crossings by multicast repair requests."""
        kind_counts = self._kind_counts
        return (
            sum(kind_counts[row] for row in _RECOVERY_CONTROL_ROWS)
            - self.unicast_control_crossings
        )

    @property
    def unicast_control_crossings(self) -> int:
        """Link crossings by unicast (expedited) repair requests."""
        slots = self._slots
        return sum(slots[slot] for slot in _UNICAST_CONTROL_SLOTS)

    def snapshot(self) -> dict[tuple[str, str], int]:
        """Nonzero counts keyed ``(kind.value, cast.value)``, in dense slot
        (kind-major) order.  Consumers sort or aggregate; iteration order is
        not part of the contract."""
        return {
            _SLOT_KEYS[slot]: count
            for slot, count in enumerate(self._slots)
            if count
        }


class Network:
    """Hop-by-hop packet delivery over a static multicast tree.

    Parameters
    ----------
    sim:
        The simulation engine supplying the clock and event queue.
    tree:
        The multicast tree topology.
    propagation_delay:
        One-way per-link propagation delay in seconds (paper default 20 ms).
    bandwidth_bps:
        Per-link bandwidth (paper default 1.5 Mbps).
    """

    def __init__(
        self,
        sim: Simulator,
        tree: MulticastTree,
        propagation_delay: float = 0.020,
        bandwidth_bps: float = 1.5e6,
        kernel: str = "python",
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.propagation_delay = propagation_delay
        self.bandwidth_bps = bandwidth_bps
        self.drop_fn: DropFn | None = None
        #: Optional :class:`~repro.faults.inject.FaultInjector`: consulted on
        #: every directed hop for blocked links and drop/duplicate/delay
        #: rules.  None (or an injector with no rules) costs one branch.
        self.faults = None
        self.crossings = CrossingCounter()
        self.packets_dropped = 0
        self.packets_delivered = 0
        self._agents: dict[str, Agent] = {}
        self._links: dict[tuple[str, str], LinkState] = {}
        #: Node ids removed by :meth:`detach_subtree` (membership churn).
        #: Unicasts addressed to them — or crossing their removed links
        #: mid-flight — die like any other loss instead of erroring.
        self._detached_ids: set[int] = set()

        index = tree.index
        self._index = index
        n = index.n
        self._n = n
        self._ids = index.ids
        self._names = index.names
        #: Agent slot per interned node id (None at routers / unattached).
        self._agents_by_id: list[Agent | None] = [None] * n
        #: Directed-hop records ``(to_id, from_name, to_name, link)`` —
        #: everything one transmission touches, resolved once at build time.
        #: ``_adj`` fans out children-first-then-parent (the flood order);
        #: ``_child_adj`` is the downstream-only fan-out for subcast.
        hop_record: dict[int, tuple[int, str, str, LinkState]] = {}
        names = index.names
        for parent_id, kids in enumerate(index.children):
            for child_id in kids:
                for u, v in ((parent_id, child_id), (child_id, parent_id)):
                    link = LinkState(
                        bandwidth_bps=bandwidth_bps,
                        propagation_delay=propagation_delay,
                    )
                    self._links[(names[u], names[v])] = link
                    hop_record[u << _HOP_SHIFT | v] = (v, names[u], names[v], link)
        self._hop_record = hop_record
        self._child_adj: list[tuple[tuple[int, str, str, LinkState], ...]] = [
            tuple(
                hop_record[node << _HOP_SHIFT | child]
                for child in index.children[node]
            )
            for node in range(n)
        ]
        self._adj: list[tuple[tuple[int, str, str, LinkState], ...]] = [
            tuple(hop_record[node << _HOP_SHIFT | nb] for nb in index.neighbors[node])
            for node in range(n)
        ]
        #: Kernel v2 (``kernel="vector"``): delegate the send primitives to
        #: the numpy delivery-wave engine.  None — the default — keeps the
        #: pure-python per-hop path, the oracle the vector kernel is
        #: byte-equivalence-tested against.
        self._vk = None
        if kernel == "vector":
            from repro.net.vector import VectorKernel

            self._vk = VectorKernel(self)
        elif kernel != "python":
            raise ValueError(
                f"unknown kernel {kernel!r} (expected 'python' or 'vector')"
            )

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, host_id: str, agent: Agent) -> None:
        """Attach a protocol agent at a host node (source or receiver)."""
        if self.tree.kind(host_id) is NodeKind.ROUTER:
            raise ValueError(f"cannot attach an agent at router {host_id!r}")
        self._agents[host_id] = agent
        self._agents_by_id[self._ids[host_id]] = agent

    def agent(self, host_id: str) -> Agent:
        return self._agents[host_id]

    # ------------------------------------------------------------------
    # Membership churn
    # ------------------------------------------------------------------
    def _rebuild_adjacency(self, node: int) -> None:
        index = self._index
        hop_record = self._hop_record
        self._child_adj[node] = tuple(
            hop_record[node << _HOP_SHIFT | child] for child in index.children[node]
        )
        self._adj[node] = tuple(
            hop_record[node << _HOP_SHIFT | nb] for nb in index.neighbors[node]
        )

    def attach_receiver(self, name: str, parent: str) -> int:
        """Grow the network for a joining receiver: patch the tree and
        index, create the two directed links, and extend the adjacency
        records.  The caller attaches the agent afterwards (normally via
        the agent's constructor).  Returns the receiver's node id."""
        self.tree.attach_receiver(name, parent)
        index = self._index
        nid = self._ids[name]
        pid = self._ids[parent]
        self._detached_ids.discard(nid)
        while len(self._agents_by_id) < index.n:
            self._agents_by_id.append(None)
            self._adj.append(())
            self._child_adj.append(())
        names = self._names
        hop_record = self._hop_record
        for u, v in ((pid, nid), (nid, pid)):
            # A rejoining receiver gets fresh links: the old attachment
            # point (and its carried-bytes accounting) may differ.
            link = LinkState(
                bandwidth_bps=self.bandwidth_bps,
                propagation_delay=self.propagation_delay,
            )
            self._links[(names[u], names[v])] = link
            hop_record[u << _HOP_SHIFT | v] = (v, names[u], names[v], link)
        self._rebuild_adjacency(nid)
        self._rebuild_adjacency(pid)
        if self._vk is not None:
            # Fresh links get fresh columnar state too: dropping the hop
            # keys forces the rejoined edges to intern new zeroed ids.
            self._vk.invalidate(
                pid << _HOP_SHIFT | nid, nid << _HOP_SHIFT | pid
            )
        return nid

    def detach_subtree(self, name: str) -> tuple[str, ...]:
        """Shrink the network for a leaving receiver (or router subtree):
        patch the tree and index, drop agents, links and adjacency of
        everything below.  Returns the detached node ids."""
        index = self._index
        pid = index.parent[self._ids[name]]
        removed = self.tree.detach_subtree(name)
        names = self._names
        ids = self._ids
        hop_record = self._hop_record
        for rname in removed:
            rid = ids[rname]
            self._detached_ids.add(rid)
            self._agents.pop(rname, None)
            self._agents_by_id[rid] = None
            self._adj[rid] = ()
            self._child_adj[rid] = ()
            prid = index.parent[rid]  # tombstones keep their parent pointer
            for u, v in ((prid, rid), (rid, prid)):
                self._links.pop((names[u], names[v]), None)
                hop_record.pop(u << _HOP_SHIFT | v, None)
                if self._vk is not None:
                    self._vk.invalidate(u << _HOP_SHIFT | v)
        self._rebuild_adjacency(pid)
        return removed

    def link_state(self, u: str, v: str) -> LinkState:
        """The directed link state for the hop ``u -> v``."""
        link = self._links[(u, v)]
        if self._vk is not None:
            # Vector mode: the columnar arrays are the live authority;
            # sync the legacy object on read.
            self._vk.sync_link(self._ids[u], self._ids[v], link)
        return link

    # ------------------------------------------------------------------
    # Latency helpers
    # ------------------------------------------------------------------
    def control_delay(self, a: str, b: str) -> float:
        """One-way latency of a 0-byte control packet from ``a`` to ``b``
        over an idle network: pure propagation."""
        return self.tree.hop_distance(a, b) * self.propagation_delay

    def rtt(self, a: str, b: str) -> float:
        """Round-trip control latency between two nodes."""
        return 2.0 * self.control_delay(a, b)

    # ------------------------------------------------------------------
    # Send primitives
    # ------------------------------------------------------------------
    def multicast(self, packet: Packet) -> Packet:
        """Flood ``packet`` over the tree from ``packet.origin``."""
        packet.cast = Cast.MULTICAST
        packet.sent_at = self.sim._now
        if self.sim.tracer is not None:
            self._trace_send(packet)
        slot = _KIND_INDEX[packet.kind] * _N_CAST + _MULTICAST_COL
        if self._vk is not None:
            self._vk.flood_from(self._ids[packet.origin], packet, slot)
        else:
            self._flood(self._ids[packet.origin], -1, packet, slot)
        return packet

    def unicast(self, dest: str, packet: Packet) -> Packet:
        """Send ``packet`` from ``packet.origin`` to ``dest`` along the
        unique tree path."""
        if dest == packet.origin:
            raise ValueError("unicast to self")
        packet.cast = Cast.UNICAST
        packet.sent_at = self.sim._now
        if self.sim.tracer is not None:
            self._trace_send(packet, dest=dest)
        dest_id = self._ids[dest]
        if dest_id in self._detached_ids:
            # The destination left the group after the sender learned its
            # name (stale cache entry / request under churn); the packet
            # dies in the network like any other loss.
            self.packets_dropped += 1
            return packet
        slot = _KIND_INDEX[packet.kind] * _N_CAST + _UNICAST_COL
        path = self._index.path_ints(self._ids[packet.origin], dest_id)
        if self._vk is not None:
            self._vk.unicast_transmit(path, 0, packet, False, slot)
        else:
            self._unicast_transmit(path, 0, packet, False, slot)
        return packet

    def unicast_then_subcast(self, turning_point: str, packet: Packet) -> Packet:
        """Router-assisted reply (§3.3): unicast from ``packet.origin`` up to
        the ``turning_point`` router, which then subcasts downstream."""
        packet.cast = Cast.SUBCAST
        packet.sent_at = self.sim._now
        packet.turning_point = turning_point
        if self.sim.tracer is not None:
            self._trace_send(packet, turning_point=turning_point)
        slot = _KIND_INDEX[packet.kind] * _N_CAST + _SUBCAST_COL
        origin_id = self._ids[packet.origin]
        if self._vk is not None:
            if turning_point == packet.origin:
                self._vk.subcast_from(origin_id, packet, origin_id, slot)
                return packet
            path = self._index.path_ints(origin_id, self._ids[turning_point])
            self._vk.unicast_transmit(path, 0, packet, True, slot)
            return packet
        if turning_point == packet.origin:
            self._subcast_from(origin_id, packet, origin_id, slot)
            return packet
        path = self._index.path_ints(origin_id, self._ids[turning_point])
        self._unicast_transmit(path, 0, packet, True, slot)
        return packet

    # ------------------------------------------------------------------
    # Internals (integer kernel)
    # ------------------------------------------------------------------
    def _flood(self, node: int, from_node: int, packet: Packet, slot: int) -> None:
        for record in self._adj[node]:
            to = record[0]
            if to != from_node:
                self._transmit(
                    record, packet, slot, self._flood_arrival, (to, node, packet, slot)
                )

    def _flood_arrival(
        self, node: int, from_node: int, packet: Packet, slot: int
    ) -> None:
        agent = self._agents_by_id[node]
        if agent is not None:
            # A flood never revisits its origin (acyclic tree + the
            # arrival-link exclusion), so no origin check is needed here.
            # Inline of _deliver (one call per delivery saved).
            self.packets_delivered += 1
            if self.sim.tracer is not None:
                self._trace_deliver(node, packet)
            agent.receive(packet)
        # Inline of _flood (one call per arrival saved on the hottest path).
        for record in self._adj[node]:
            to = record[0]
            if to != from_node:
                self._transmit(
                    record, packet, slot, self._flood_arrival, (to, node, packet, slot)
                )

    def _subcast_from(
        self, router: int, packet: Packet, origin: int, slot: int
    ) -> None:
        for record in self._child_adj[router]:
            self._transmit(
                record,
                packet,
                slot,
                self._subcast_arrival,
                (record[0], packet, origin, slot),
            )

    def _subcast_arrival(
        self, node: int, packet: Packet, origin: int, slot: int
    ) -> None:
        agent = self._agents_by_id[node]
        if agent is not None and node != origin:
            # Subcast can sweep back over the replier itself; skip it.
            self._deliver(node, agent, packet)
        for record in self._child_adj[node]:
            self._transmit(
                record,
                packet,
                slot,
                self._subcast_arrival,
                (record[0], packet, origin, slot),
            )

    def _unicast_transmit(
        self,
        path: tuple[int, ...],
        index: int,
        packet: Packet,
        then_subcast: bool,
        slot: int,
    ) -> None:
        record = self._hop_record.get(path[index] << _HOP_SHIFT | path[index + 1])
        if record is None:
            # The next hop detached mid-flight (membership churn tore the
            # link down under this packet); it dies here.
            self.packets_dropped += 1
            return
        self._transmit(
            record,
            packet,
            slot,
            self._unicast_arrival,
            (path, index, packet, then_subcast, slot),
        )

    def _unicast_arrival(
        self,
        path: tuple[int, ...],
        index: int,
        packet: Packet,
        then_subcast: bool,
        slot: int,
    ) -> None:
        if index + 2 < len(path):
            self._unicast_transmit(path, index + 1, packet, then_subcast, slot)
            return
        node = path[index + 1]
        if then_subcast:
            self._subcast_from(node, packet, self._ids[packet.origin], slot)
            return
        agent = self._agents_by_id[node]
        if agent is None:
            if node in self._detached_ids:
                self.packets_dropped += 1
                return
            raise RuntimeError(
                f"unicast destination {self._names[node]!r} has no agent"
            )
        self._deliver(node, agent, packet)

    def _transmit(
        self,
        record: tuple[int, str, str, LinkState],
        packet: Packet,
        slot: int,
        on_arrival: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        _, u, v, link = record
        # Inline of CrossingCounter.record_slot (same module, hottest line).
        crossings = self.crossings
        crossings._slots[slot] += 1
        crossings._kind_counts[_SLOT_ROW[slot]] += 1
        crossings._cast_counts[_SLOT_COL[slot]] += 1
        crossings._total += 1
        sim = self.sim
        tracer = sim.tracer
        if self.drop_fn is not None and self.drop_fn(u, v, packet):
            self._record_drop(u, v, packet, tracer)
            return
        duplicate = False
        extra_delay = 0.0
        faults = self.faults
        if faults is not None and (
            faults._down
            or not faults._rules_data_only
            or packet.kind is _DATA_KIND
        ):
            # Skipped when every rule is tagged data-only, no link is down,
            # and this is not a DATA packet: on_hop would provably return
            # None without side effects.
            effect = faults.on_hop(u, v, packet)
            if effect is not None:
                if effect.drop:
                    self._record_drop(u, v, packet, tracer)
                    return
                duplicate = effect.duplicate
                extra_delay = effect.extra_delay
        now = sim._now
        if tracer is not None:
            wait = link.busy_until - now
            tracer.emit(
                now,
                EventKind.NET_HOP,
                node=v,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                cast=packet.cast.value,
                link=f"{u}->{v}",
            )
            if wait > 0:
                tracer.emit(
                    now,
                    EventKind.NET_QUEUE,
                    node=v,
                    source=packet.source,
                    seqno=packet.seqno,
                    link=f"{u}->{v}",
                    wait=wait,
                )
                tracer.observe("net.queueing_delay", wait)
        # Inline of LinkState.enqueue — identical float-op order, minus the
        # method-call overhead on the hottest line in the simulator.  The
        # 0-byte control branch skips the arithmetic that is a no-op there
        # (``tx == 0.0`` leaves ``end == start``; ``bytes += 0`` is inert).
        busy = link.busy_until
        start = busy if busy > now else now
        size = packet.size_bytes
        link.queueing_delay_total += start - now
        if size > 0:
            end = start + size * 8.0 / link.bandwidth_bps
            link.bytes_carried += size
        else:
            end = start
        link.busy_until = end
        link.packets_carried += 1
        arrival = end + link.propagation_delay + extra_delay
        # Inline of schedule_raw's bucket-hit fast path.  Safe to skip the
        # past-check: a pending bucket's timestamp is always >= sim._now
        # (earlier buckets would already have been drained), so an existing
        # bucket at ``arrival`` proves the time is legal.  Sibling hops of
        # a flood share arrival instants constantly, so the hit rate is
        # high on exactly the hottest path.
        bucket = sim._buckets.get(arrival)
        if bucket is not None:
            bucket.append((on_arrival, args))
        else:
            sim.schedule_raw(arrival, on_arrival, args)
        if duplicate:
            # The copy serializes behind the original on the same link and
            # continues with the same forwarding behaviour downstream.
            crossings.record_slot(slot)
            dup_arrival = link.enqueue(now, packet.size_bytes)
            sim.schedule_raw(dup_arrival + extra_delay, on_arrival, args)

    def _record_drop(self, u: str, v: str, packet: Packet, tracer) -> None:
        self.packets_dropped += 1
        if tracer is not None:
            tracer.emit(
                self.sim._now,
                EventKind.NET_DROP,
                node=v,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                link=f"{u}->{v}",
            )

    def _deliver(self, node: int, agent: Agent, packet: Packet) -> None:
        self.packets_delivered += 1
        if self.sim.tracer is not None:
            self._trace_deliver(node, packet)
        agent.receive(packet)

    def _trace_deliver(self, node: int, packet: Packet) -> None:
        now = self.sim._now
        self.sim.tracer.emit(
            now,
            EventKind.NET_DELIVER,
            node=self._names[node],
            source=packet.source,
            seqno=packet.seqno,
            pkt=packet.kind.value,
            cast=packet.cast.value,
            origin=packet.origin,
            latency=now - packet.sent_at,
        )

    def _trace_send(self, packet: Packet, **detail: Any) -> None:
        self.sim.tracer.emit(
            self.sim.now,
            EventKind.NET_SEND,
            node=packet.origin,
            source=packet.source,
            seqno=packet.seqno,
            pkt=packet.kind.value,
            cast=packet.cast.value,
            **detail,
        )
