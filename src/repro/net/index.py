"""Integer-indexed view of a multicast tree — the forwarding kernel's
topology side.

A :class:`TopologyIndex` is built per
:class:`~repro.net.topology.MulticastTree` (lazily, via ``tree.index``).
It interns every node id to a dense integer in the tree's deterministic
construction order and serves everything the hot path asks per hop or
per query:

* parent / children / neighbor arrays (children first, then the parent —
  the flood fan-out order of the string implementation),
* per-node depth and a binary-lifting ancestor table (O(log depth) LCA,
  paths, hop distances, and per-pair next hops),
* Euler-tour ``tin``/``tout`` intervals (O(1) strict descendant tests),
* subtree-receiver bitsets (one bit per receiver), replacing per-query
  ``frozenset`` algebra in the attribution DP,
* a dense per-pair next-hop table (``next_hop[u * n + v]``).

Scale split: the structures above the first two bullets are *lazy*.  The
eager core (ids, parent/children/depth, lifting table) is O(n log depth)
to build, so a 10^5-node index is cheap; the Euler group recomputes in
one O(n) walk when dirty, the bitset group only materializes for the
attribution DP (which runs on small measured worlds), and the dense
next-hop table — O(n^2), fine at Yajnik scale, impossible at 10^5 —
materializes only on attribute access (:meth:`next_hop_int` answers the
same query lazily in O(log depth)).

Membership churn: :meth:`attach_leaf` and :meth:`detach_subtree` patch
the index in place instead of rebuilding.  Detached nodes are
tombstoned (``alive`` bytearray) and keep their dense ids; a rejoining
leaf revives its id (and its receiver bit).  Patches update the eager
core incrementally — O(log depth) per attach — and invalidate the lazy
groups, so a burst of churn costs one deferred O(n) recompute instead of
one O(n) rebuild per event.  ``tests/test_index_patch.py`` holds the
oracle: any patch sequence must answer every query exactly like a
from-scratch rebuild of the patched tree.

Everything here is pure data: the index never imports the topology module
(the tree hands its structures over at construction), so the two modules
cannot cycle.
"""

from __future__ import annotations

#: Sentinel parent/neighbor id for the root ("no such node").
NO_NODE = -1


class TopologyIndex:
    """Integer-interned topology of one multicast tree.

    Parameters
    ----------
    names:
        Every node id in the tree's deterministic DFS construction order;
        position in this sequence *is* the node's integer id.
    parent_of:
        ``child -> parent`` mapping by name (the root is absent).
    children_of:
        ``node -> children`` mapping by name, children in tree order.
    receivers:
        Receiver node ids in display order; receiver ``i`` owns bit
        ``1 << i`` of every bitset.
    """

    __slots__ = (
        "n",
        "names",
        "ids",
        "root",
        "parent",
        "depth",
        "children",
        "neighbors",
        "alive",
        "receiver_ids",
        "_receiver_slot",
        "_up",
        "_tin",
        "_tout",
        "_post_order",
        "_euler_dirty",
        "_receiver_bit",
        "_subtree_bits",
        "_bits_dirty",
        "_next_hop",
    )

    def __init__(
        self,
        names: tuple[str, ...],
        parent_of: dict[str, str],
        children_of: dict[str, list[str]],
        receivers: tuple[str, ...],
    ) -> None:
        n = len(names)
        self.n = n
        self.names = list(names)
        self.ids = {name: i for i, name in enumerate(names)}
        ids = self.ids

        self.parent = [
            ids[parent_of[name]] if name in parent_of else NO_NODE for name in names
        ]
        self.children = [
            tuple(ids[child] for child in children_of[name]) for name in names
        ]
        self.neighbors = [
            kids if self.parent[i] == NO_NODE else kids + (self.parent[i],)
            for i, kids in enumerate(self.children)
        ]
        self.root = self.parent.index(NO_NODE)
        self.alive = bytearray(b"\x01" * n)

        # Depth in one preorder walk from the root.
        depth = [0] * n
        stack = [self.root]
        while stack:
            node = stack.pop()
            d = depth[node] + 1
            for child in self.children[node]:
                depth[child] = d
                stack.append(child)
        self.depth = depth

        # Binary lifting for LCA: _up[k][v] = 2^k-th ancestor (root-clamped).
        levels = max(1, max(depth).bit_length())
        up0 = [p if p != NO_NODE else self.root for p in self.parent]
        up = [up0]
        for _ in range(1, levels):
            prev = up[-1]
            up.append([prev[prev[v]] for v in range(n)])
        self._up = up

        # Receiver bit slots: receiver i (display order) owns bit 1 << i.
        self.receiver_ids = [ids[r] for r in receivers]
        self._receiver_slot = {r: i for i, r in enumerate(self.receiver_ids)}

        # Lazy groups (Euler intervals, bitsets, dense routing rows).
        self._tin: list[int] = []
        self._tout: list[int] = []
        self._post_order: tuple[int, ...] = ()
        self._euler_dirty = True
        self._receiver_bit: list[int] = []
        self._subtree_bits: list[int] = []
        self._bits_dirty = True
        self._next_hop: list[int] | None = None

    # ------------------------------------------------------------------
    # Lazy groups
    # ------------------------------------------------------------------
    def _recompute_euler(self) -> None:
        """Euler intervals + post-order over the *alive* tree, one walk."""
        n = self.n
        tin = [0] * n
        tout = [0] * n
        clock = 0
        post: list[int] = []
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                tout[node] = clock
                clock += 1
                post.append(node)
                continue
            tin[node] = clock
            clock += 1
            stack.append((node, True))
            for child in reversed(self.children[node]):
                stack.append((child, False))
        self._tin = tin
        self._tout = tout
        self._post_order = tuple(post)
        self._euler_dirty = False

    def _recompute_bits(self) -> None:
        """Receiver/subtree bitsets over the alive tree (dead receivers
        keep their slot but contribute no bit)."""
        receiver_bit = [0] * self.n
        alive = self.alive
        for slot, r in enumerate(self.receiver_ids):
            if alive[r]:
                receiver_bit[r] = 1 << slot
        subtree = list(receiver_bit)
        for node in self.post_order:
            acc = subtree[node]
            for child in self.children[node]:
                acc |= subtree[child]
            subtree[node] = acc
        self._receiver_bit = receiver_bit
        self._subtree_bits = subtree
        self._bits_dirty = False

    @property
    def tin(self) -> list[int]:
        if self._euler_dirty:
            self._recompute_euler()
        return self._tin

    @property
    def tout(self) -> list[int]:
        if self._euler_dirty:
            self._recompute_euler()
        return self._tout

    @property
    def post_order(self) -> tuple[int, ...]:
        if self._euler_dirty:
            self._recompute_euler()
        return self._post_order

    @property
    def receiver_bit(self) -> list[int]:
        if self._bits_dirty:
            self._recompute_bits()
        return self._receiver_bit

    @property
    def subtree_bits(self) -> list[int]:
        if self._bits_dirty:
            self._recompute_bits()
        return self._subtree_bits

    @property
    def next_hop(self) -> list[int]:
        """Dense next-hop table (``next_hop[u * n + v]``), materialized on
        first access — O(n^2), for small worlds and the patch oracle; the
        hot path and large worlds use :meth:`next_hop_int`."""
        if self._next_hop is None:
            n = self.n
            next_hop = [NO_NODE] * (n * n)
            for origin in range(n):
                if not self.alive[origin]:
                    continue
                base = origin * n
                frontier = [origin]
                seen = bytearray(n)
                seen[origin] = 1
                while frontier:
                    nxt: list[int] = []
                    for node in frontier:
                        hop = next_hop[base + node]  # NO_NODE only at the origin
                        for nb in self.neighbors[node]:
                            if seen[nb]:
                                continue
                            seen[nb] = 1
                            next_hop[base + nb] = nb if hop == NO_NODE else hop
                            nxt.append(nb)
                    frontier = nxt
            self._next_hop = next_hop
        return self._next_hop

    # ------------------------------------------------------------------
    # Membership patching
    # ------------------------------------------------------------------
    def _ancestor_at_depth(self, node: int, target_depth: int) -> int:
        """Jump ``node`` up to its ancestor at ``target_depth``."""
        diff = self.depth[node] - target_depth
        up = self._up
        k = 0
        while diff:
            if diff & 1:
                node = up[k][node]
            diff >>= 1
            k += 1
        return node

    def _ensure_levels(self, wanted: int) -> None:
        """Grow the lifting table to ``wanted`` levels (column-wise, so
        existing entries — including tombstoned rows — stay coherent)."""
        up = self._up
        n = self.n
        while len(up) < wanted:
            prev = up[-1]
            up.append([prev[prev[v]] for v in range(n)])

    def _set_lifting_row(self, node: int, parent_id: int) -> None:
        d = self.depth[node]
        self._ensure_levels(max(1, d.bit_length()))
        up = self._up
        up[0][node] = parent_id
        for k in range(1, len(up)):
            prev = up[k - 1]
            up[k][node] = prev[prev[node]]

    def attach_leaf(self, name: str, parent_name: str, receiver: bool = True) -> int:
        """Attach (or revive) ``name`` as a new leaf under ``parent_name``.

        A brand-new name gets the next dense id; a tombstoned name is
        revived in place, reusing its id and — for receivers — its bit
        slot.  O(log depth) plus lazy-group invalidation.  Returns the
        node id.
        """
        pid = self.ids.get(parent_name)
        if pid is None or not self.alive[pid]:
            raise ValueError(f"cannot attach under unknown/detached node {parent_name!r}")
        node = self.ids.get(name)
        if node is not None:
            if self.alive[node]:
                raise ValueError(f"node {name!r} is already attached")
            self.alive[node] = 1
            self.parent[node] = pid
            self.depth[node] = self.depth[pid] + 1
            # A revived node always comes back as a leaf; any tombstoned
            # descendants it had stay unreachable until they rejoin.
            self.children[node] = ()
            self.neighbors[node] = (pid,)
            self._set_lifting_row(node, pid)
        else:
            node = self.n
            self.n = node + 1
            self.names.append(name)
            self.ids[name] = node
            self.parent.append(pid)
            self.depth.append(self.depth[pid] + 1)
            self.children.append(())
            self.neighbors.append((pid,))
            self.alive.append(1)
            up = self._up
            up[0].append(pid)
            for k in range(1, len(up)):
                prev = up[k - 1]
                up[k].append(prev[prev[node]])
            self._ensure_levels(max(1, self.depth[node].bit_length()))
        # The rebuilt index orders a parent's children by insertion, new
        # child last — and neighbors as children-then-parent.
        kids = self.children[pid] + (node,)
        self.children[pid] = kids
        self.neighbors[pid] = (
            kids if self.parent[pid] == NO_NODE else kids + (self.parent[pid],)
        )
        if receiver:
            if node not in self._receiver_slot:
                self._receiver_slot[node] = len(self.receiver_ids)
                self.receiver_ids.append(node)
        self._euler_dirty = True
        self._bits_dirty = True
        self._next_hop = None
        return node

    def detach_subtree(self, name: str) -> tuple[int, ...]:
        """Tombstone ``name`` and everything below it; returns the
        detached ids (preorder).  The root cannot be detached."""
        node = self.ids.get(name)
        if node is None or not self.alive[node]:
            raise ValueError(f"cannot detach unknown/detached node {name!r}")
        if node == self.root:
            raise ValueError("cannot detach the root")
        pid = self.parent[node]
        kids = tuple(k for k in self.children[pid] if k != node)
        self.children[pid] = kids
        self.neighbors[pid] = (
            kids if self.parent[pid] == NO_NODE else kids + (self.parent[pid],)
        )
        detached: list[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            self.alive[cur] = 0
            detached.append(cur)
            stack.extend(self.children[cur])
        self._euler_dirty = True
        self._bits_dirty = True
        self._next_hop = None
        return tuple(detached)

    def alive_ids(self) -> tuple[int, ...]:
        return tuple(i for i in range(self.n) if self.alive[i])

    # ------------------------------------------------------------------
    # Integer queries (the hot path)
    # ------------------------------------------------------------------
    def lca_int(self, a: int, b: int) -> int:
        """Lowest common ancestor of two node ids."""
        depth = self.depth
        up = self._up
        da, db = depth[a], depth[b]
        if da < db:
            a, b, da, db = b, a, db, da
        diff = da - db
        k = 0
        while diff:
            if diff & 1:
                a = up[k][a]
            diff >>= 1
            k += 1
        if a == b:
            return a
        for k in range(len(up) - 1, -1, -1):
            if up[k][a] != up[k][b]:
                a = up[k][a]
                b = up[k][b]
        return self.parent[a]

    def hop_distance_int(self, a: int, b: int) -> int:
        return self.depth[a] + self.depth[b] - 2 * self.depth[self.lca_int(a, b)]

    def is_descendant_int(self, node: int, ancestor: int) -> bool:
        """True if ``node`` lies *strictly* below ``ancestor``."""
        if self._euler_dirty:
            self._recompute_euler()
        return (
            node != ancestor
            and self._tin[ancestor] <= self._tin[node]
            and self._tout[node] <= self._tout[ancestor]
        )

    def next_hop_int(self, origin: int, dest: int) -> int:
        """First hop from ``origin`` toward ``dest`` in O(log depth) —
        the lazy equivalent of one :attr:`next_hop` cell."""
        if origin == dest:
            return NO_NODE
        top = self.lca_int(origin, dest)
        if top != origin:
            return self.parent[origin]
        return self._ancestor_at_depth(dest, self.depth[origin] + 1)

    def path_ints(self, a: int, b: int) -> tuple[int, ...]:
        """The unique tree path from ``a`` to ``b``, inclusive of both."""
        parent = self.parent
        top = self.lca_int(a, b)
        up_part = [a]
        node = a
        while node != top:
            node = parent[node]
            up_part.append(node)
        down_part = []
        node = b
        while node != top:
            down_part.append(node)
            node = parent[node]
        up_part.extend(reversed(down_part))
        return tuple(up_part)

    # ------------------------------------------------------------------
    # Name-level conveniences (build-time / cold paths)
    # ------------------------------------------------------------------
    def lca(self, a: str, b: str) -> str:
        return self.names[self.lca_int(self.ids[a], self.ids[b])]

    def hop_distance(self, a: str, b: str) -> int:
        return self.hop_distance_int(self.ids[a], self.ids[b])

    def is_descendant(self, node: str, ancestor: str) -> bool:
        return self.is_descendant_int(self.ids[node], self.ids[ancestor])

    def path_names(self, a: str, b: str) -> tuple[str, ...]:
        names = self.names
        return tuple(names[i] for i in self.path_ints(self.ids[a], self.ids[b]))

    def pattern_bits(self, receivers) -> int:
        """Bitset of a collection of receiver names."""
        bit = self.receiver_bit
        ids = self.ids
        acc = 0
        for name in receivers:
            acc |= bit[ids[name]]
        return acc

    def names_of_bits(self, bits: int) -> frozenset[str]:
        """Receiver names of a bitset (inverse of :meth:`pattern_bits`)."""
        names = self.names
        out = []
        for i, r in enumerate(self.receiver_ids):
            if bits >> i & 1:
                out.append(names[r])
        return frozenset(out)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TopologyIndex(n={self.n}, receivers={len(self.receiver_ids)})"
