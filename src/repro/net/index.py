"""Frozen integer-indexed view of a multicast tree — the forwarding kernel's
topology side.

A :class:`TopologyIndex` is built once per
:class:`~repro.net.topology.MulticastTree` (lazily, via ``tree.index``) and
never mutated afterwards.  It interns every node id to a dense integer in
the tree's deterministic construction order and precomputes everything the
hot path asks per hop or per query:

* parent / children / neighbor arrays (children first, then the parent —
  the flood fan-out order of the string implementation),
* per-node depth and Euler-tour ``tin``/``tout`` intervals (O(1) strict
  descendant tests),
* a binary-lifting ancestor table (O(log depth) LCA, hence O(1)-ish paths
  and hop distances without the old unbounded ``(a, b)``-keyed path cache),
* a dense per-pair next-hop table (``next_hop[u * n + v]`` = first hop
  from ``u`` toward ``v``),
* subtree-receiver bitsets (one bit per receiver, in ``tree.receivers``
  order), replacing per-query ``frozenset`` algebra in the attribution DP.

Everything here is pure data: the index never imports the topology module
(the tree hands its structures over at construction), so the two modules
cannot cycle.
"""

from __future__ import annotations

#: Sentinel parent/neighbor id for the root ("no such node").
NO_NODE = -1


class TopologyIndex:
    """Integer-interned, fully precomputed topology of one multicast tree.

    Parameters
    ----------
    names:
        Every node id in the tree's deterministic DFS construction order;
        position in this sequence *is* the node's integer id.
    parent_of:
        ``child -> parent`` mapping by name (the root is absent).
    children_of:
        ``node -> children`` mapping by name, children in tree order.
    receivers:
        Receiver node ids in display order; receiver ``i`` owns bit
        ``1 << i`` of every bitset.
    """

    __slots__ = (
        "n",
        "names",
        "ids",
        "parent",
        "depth",
        "children",
        "neighbors",
        "tin",
        "tout",
        "post_order",
        "next_hop",
        "receiver_ids",
        "receiver_bit",
        "subtree_bits",
        "_up",
    )

    def __init__(
        self,
        names: tuple[str, ...],
        parent_of: dict[str, str],
        children_of: dict[str, list[str]],
        receivers: tuple[str, ...],
    ) -> None:
        n = len(names)
        self.n = n
        self.names = tuple(names)
        self.ids = {name: i for i, name in enumerate(self.names)}
        ids = self.ids

        self.parent = [
            ids[parent_of[name]] if name in parent_of else NO_NODE for name in names
        ]
        self.children = tuple(
            tuple(ids[child] for child in children_of[name]) for name in names
        )
        self.neighbors = tuple(
            kids if self.parent[i] == NO_NODE else kids + (self.parent[i],)
            for i, kids in enumerate(self.children)
        )

        # Depth + Euler intervals in one preorder walk from the root.
        root = self.parent.index(NO_NODE)
        depth = [0] * n
        tin = [0] * n
        tout = [0] * n
        clock = 0
        post: list[int] = []
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                tout[node] = clock
                clock += 1
                post.append(node)
                continue
            tin[node] = clock
            clock += 1
            stack.append((node, True))
            for child in reversed(self.children[node]):
                depth[child] = depth[node] + 1
                stack.append((child, False))
        self.depth = depth
        self.tin = tin
        self.tout = tout
        self.post_order = tuple(post)

        # Binary lifting for LCA: _up[k][v] = 2^k-th ancestor (root-clamped).
        levels = max(1, max(depth).bit_length())
        up0 = [p if p != NO_NODE else root for p in self.parent]
        up = [up0]
        for _ in range(1, levels):
            prev = up[-1]
            up.append([prev[prev[v]] for v in range(n)])
        self._up = up

        # Dense next-hop table: one BFS per origin over the neighbor arrays.
        next_hop = [NO_NODE] * (n * n)
        for origin in range(n):
            base = origin * n
            frontier = [origin]
            seen = bytearray(n)
            seen[origin] = 1
            while frontier:
                nxt: list[int] = []
                for node in frontier:
                    hop = next_hop[base + node]  # NO_NODE only at the origin
                    for nb in self.neighbors[node]:
                        if seen[nb]:
                            continue
                        seen[nb] = 1
                        next_hop[base + nb] = nb if hop == NO_NODE else hop
                        nxt.append(nb)
                frontier = nxt
        self.next_hop = next_hop

        # Receiver bitsets: receiver i (display order) owns bit 1 << i.
        self.receiver_ids = tuple(ids[r] for r in receivers)
        receiver_bit = [0] * n
        for i, r in enumerate(self.receiver_ids):
            receiver_bit[r] = 1 << i
        self.receiver_bit = receiver_bit
        subtree = list(receiver_bit)
        for node in self.post_order:
            acc = subtree[node]
            for child in self.children[node]:
                acc |= subtree[child]
            subtree[node] = acc
        self.subtree_bits = subtree

    # ------------------------------------------------------------------
    # Integer queries (the hot path)
    # ------------------------------------------------------------------
    def lca_int(self, a: int, b: int) -> int:
        """Lowest common ancestor of two node ids."""
        depth = self.depth
        up = self._up
        da, db = depth[a], depth[b]
        if da < db:
            a, b, da, db = b, a, db, da
        diff = da - db
        k = 0
        while diff:
            if diff & 1:
                a = up[k][a]
            diff >>= 1
            k += 1
        if a == b:
            return a
        for k in range(len(up) - 1, -1, -1):
            if up[k][a] != up[k][b]:
                a = up[k][a]
                b = up[k][b]
        return self.parent[a]

    def hop_distance_int(self, a: int, b: int) -> int:
        return self.depth[a] + self.depth[b] - 2 * self.depth[self.lca_int(a, b)]

    def is_descendant_int(self, node: int, ancestor: int) -> bool:
        """True if ``node`` lies *strictly* below ``ancestor``."""
        return (
            node != ancestor
            and self.tin[ancestor] <= self.tin[node]
            and self.tout[node] <= self.tout[ancestor]
        )

    def path_ints(self, a: int, b: int) -> tuple[int, ...]:
        """The unique tree path from ``a`` to ``b``, inclusive of both."""
        parent = self.parent
        top = self.lca_int(a, b)
        up_part = [a]
        node = a
        while node != top:
            node = parent[node]
            up_part.append(node)
        down_part = []
        node = b
        while node != top:
            down_part.append(node)
            node = parent[node]
        up_part.extend(reversed(down_part))
        return tuple(up_part)

    # ------------------------------------------------------------------
    # Name-level conveniences (build-time / cold paths)
    # ------------------------------------------------------------------
    def lca(self, a: str, b: str) -> str:
        return self.names[self.lca_int(self.ids[a], self.ids[b])]

    def hop_distance(self, a: str, b: str) -> int:
        return self.hop_distance_int(self.ids[a], self.ids[b])

    def is_descendant(self, node: str, ancestor: str) -> bool:
        return self.is_descendant_int(self.ids[node], self.ids[ancestor])

    def path_names(self, a: str, b: str) -> tuple[str, ...]:
        names = self.names
        return tuple(names[i] for i in self.path_ints(self.ids[a], self.ids[b]))

    def pattern_bits(self, receivers) -> int:
        """Bitset of a collection of receiver names."""
        bit = self.receiver_bit
        ids = self.ids
        acc = 0
        for name in receivers:
            acc |= bit[ids[name]]
        return acc

    def names_of_bits(self, bits: int) -> frozenset[str]:
        """Receiver names of a bitset (inverse of :meth:`pattern_bits`)."""
        names = self.names
        out = []
        for i, r in enumerate(self.receiver_ids):
            if bits >> i & 1:
                out.append(names[r])
        return frozenset(out)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TopologyIndex(n={self.n}, receivers={len(self.receiver_ids)})"
