"""The static IP multicast tree.

§4.1 of the paper models a transmission as a directed tree ``T = (N, s, L)``
rooted at the source ``s``, with routers as internal nodes and receivers as
the leaves.  The tree is static for a whole transmission.  This module
provides that structure plus the queries the protocols and the inference
pipeline need: unique paths, hop distances, subtree receiver sets, lowest
common ancestors (the *turning points* of §3.3), and descendant tests.

Two builders are included: a deterministic balanced tree (handy for tests
and examples) and a seeded random tree generator that produces a tree with
an exact receiver count and an exact depth, as required to match the Table 1
trace metadata.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.net.index import TopologyIndex

#: A directed downstream link, identified as ``(parent, child)``.
LinkId = tuple[str, str]


class TopologyError(ValueError):
    """Raised for malformed trees or invalid topology queries."""


class NodeKind(enum.Enum):
    SOURCE = "source"
    ROUTER = "router"
    RECEIVER = "receiver"


@dataclass(frozen=True, slots=True)
class TreeNode:
    """A node of the multicast tree."""

    node_id: str
    kind: NodeKind
    parent: str | None
    depth: int


class MulticastTree:
    """A rooted multicast tree with the source at the root.

    Construction validates the §4.1 constraints: a unique root which is the
    source, every non-root node has exactly one parent, the structure is
    acyclic and connected, and the receivers are exactly the leaves.

    Parameters
    ----------
    source:
        Node id of the root (the transmission source).
    parents:
        Mapping ``child -> parent`` covering every node except the source.
    receivers:
        The receiver (leaf) node ids, in display order.  Every other
        non-source node is a router.
    """

    def __init__(
        self,
        source: str,
        parents: dict[str, str],
        receivers: list[str],
    ) -> None:
        self.source = source
        self.receivers: tuple[str, ...] = tuple(receivers)
        self._parents = dict(parents)
        if source in self._parents:
            raise TopologyError(f"source {source!r} must not have a parent")

        receiver_set = set(self.receivers)
        if len(receiver_set) != len(self.receivers):
            raise TopologyError("duplicate receiver ids")
        if source in receiver_set:
            raise TopologyError("source cannot also be a receiver")

        self._children: dict[str, list[str]] = {source: []}
        for child in self._parents:
            self._children.setdefault(child, [])
        for child, parent in self._parents.items():
            if parent not in self._children:
                raise TopologyError(f"parent {parent!r} of {child!r} is not a node")
            self._children[parent].append(child)

        # Walk down from the root: assigns depths and checks connectivity.
        self._nodes: dict[str, TreeNode] = {}
        stack = [(source, None, 0)]
        while stack:
            node_id, parent, depth = stack.pop()
            if node_id in self._nodes:
                raise TopologyError(f"node {node_id!r} reached twice (cycle?)")
            kind = (
                NodeKind.SOURCE
                if node_id == source
                else NodeKind.RECEIVER
                if node_id in receiver_set
                else NodeKind.ROUTER
            )
            self._nodes[node_id] = TreeNode(node_id, kind, parent, depth)
            for child in self._children[node_id]:
                stack.append((child, node_id, depth + 1))
        unreachable = set(self._children) - set(self._nodes)
        if unreachable:
            raise TopologyError(f"nodes unreachable from source: {sorted(unreachable)}")

        for node_id, node in self._nodes.items():
            is_leaf = not self._children[node_id]
            if node.kind is NodeKind.RECEIVER and not is_leaf:
                raise TopologyError(f"receiver {node_id!r} is not a leaf")
            if node.kind is NodeKind.ROUTER and is_leaf:
                raise TopologyError(f"router {node_id!r} is a leaf")
            if node.kind is NodeKind.SOURCE and is_leaf and self.receivers:
                raise TopologyError("source has no children but receivers exist")

        # Lazy: filled on the first subtree_receivers() query.  Eager fill
        # is O(sum of subtree sizes) — fine at Yajnik scale, a large slice
        # of peak RSS at 10^5 receivers where nothing ever asks.
        self._subtree_receivers: dict[str, frozenset[str]] = {}
        self._index: TopologyIndex | None = None

    def clone(self) -> "MulticastTree":
        """An independent tree with the same structure and no materialized
        index.  Membership churn patches its topology in place, and
        synthesized traces share one tree across runs — so a churn run
        patches a private clone.  Only valid on a tree that still satisfies
        the construction invariants (i.e. before any patching)."""
        return MulticastTree(self.source, self._parents, list(self.receivers))

    @property
    def index(self) -> TopologyIndex:
        """The integer-indexed kernel view of this tree, built on first
        use and shared by every consumer (network, attribution DP,
        fabrics).  Membership patches (:meth:`attach_receiver` /
        :meth:`detach_subtree`) update it in place, so the handle stays
        valid across churn."""
        if self._index is None:
            self._index = TopologyIndex(
                names=tuple(self._nodes),
                parent_of=self._parents,
                children_of=self._children,
                receivers=self.receivers,
            )
        return self._index

    # ------------------------------------------------------------------
    # Membership patching (join/leave churn)
    # ------------------------------------------------------------------
    def attach_receiver(self, name: str, parent: str) -> None:
        """Attach (or re-attach) receiver ``name`` as a new leaf under
        router ``parent``, patching the materialized index in place.

        The ``receivers`` display tuple keeps the *initial* membership
        (result rows stay comparable across churn rates); use
        :meth:`current_receivers` for the live set.
        """
        if name in self._nodes:
            raise TopologyError(f"node {name!r} is already attached")
        node = self._node(parent)
        if node.kind is NodeKind.RECEIVER:
            raise TopologyError(f"cannot attach under receiver {parent!r}")
        self._parents[name] = parent
        self._children[parent].append(name)
        self._children[name] = []
        self._nodes[name] = TreeNode(name, NodeKind.RECEIVER, parent, node.depth + 1)
        self._subtree_receivers.clear()
        if self._index is not None:
            self._index.attach_leaf(name, parent, receiver=True)

    def detach_subtree(self, name: str) -> tuple[str, ...]:
        """Detach ``name`` and everything below it (a leaving receiver,
        or a router subtree taking its receivers with it), patching the
        materialized index in place.  Returns the detached node ids."""
        node = self._node(name)
        if node.kind is NodeKind.SOURCE:
            raise TopologyError("cannot detach the source")
        removed: list[str] = []
        stack = [name]
        while stack:
            cur = stack.pop()
            removed.append(cur)
            stack.extend(self._children[cur])
        for cur in removed:
            del self._nodes[cur]
            del self._children[cur]
            del self._parents[cur]
        self._children[node.parent].remove(name)
        self._subtree_receivers.clear()
        if self._index is not None:
            self._index.detach_subtree(name)
        return tuple(removed)

    def current_receivers(self) -> list[str]:
        """The *live* receiver ids (initial membership minus leaves plus
        joins), in node order."""
        return [
            nid
            for nid, node in self._nodes.items()
            if node.kind is NodeKind.RECEIVER
        ]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All node ids (source, routers, receivers)."""
        return list(self._nodes)

    @property
    def hosts(self) -> list[str]:
        """Protocol participants: the source followed by the receivers."""
        return [self.source, *self.receivers]

    @property
    def routers(self) -> list[str]:
        return [n for n, node in self._nodes.items() if node.kind is NodeKind.ROUTER]

    @property
    def links(self) -> list[LinkId]:
        """All downstream links as ``(parent, child)`` pairs."""
        return [(node.parent, nid) for nid, node in self._nodes.items() if node.parent]

    @property
    def depth(self) -> int:
        """Tree depth: maximum node depth (root is depth 0)."""
        return max(node.depth for node in self._nodes.values())

    def kind(self, node_id: str) -> NodeKind:
        return self._node(node_id).kind

    def parent(self, node_id: str) -> str | None:
        return self._node(node_id).parent

    def children(self, node_id: str) -> list[str]:
        self._node(node_id)
        return list(self._children[node_id])

    def node_depth(self, node_id: str) -> int:
        return self._node(node_id).depth

    def neighbors(self, node_id: str) -> list[str]:
        """Adjacent nodes (parent plus children) — the forwarding fan-out."""
        node = self._node(node_id)
        out = list(self._children[node_id])
        if node.parent is not None:
            out.append(node.parent)
        return out

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def _node(self, node_id: str) -> TreeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def subtree_receivers(self, node_id: str) -> frozenset[str]:
        """Receivers in the subtree rooted at ``node_id`` (§4.2's R(n))."""
        self._node(node_id)
        if not self._subtree_receivers:
            self._fill_subtree_receivers()
        return self._subtree_receivers[node_id]

    def _fill_subtree_receivers(self) -> None:
        """Fill the whole R(n) table in one iterative post-order pass."""
        out = self._subtree_receivers
        order: list[str] = []
        stack = [self.source]
        while stack:
            node_id = stack.pop()
            order.append(node_id)
            stack.extend(self._children[node_id])
        for node_id in reversed(order):
            kids = self._children[node_id]
            if not kids:
                node = self._nodes[node_id]
                out[node_id] = (
                    frozenset([node_id])
                    if node.kind is NodeKind.RECEIVER
                    else frozenset()
                )
            else:
                acc: set[str] = set()
                for child in kids:
                    acc |= out[child]
                out[node_id] = frozenset(acc)

    def is_descendant(self, node_id: str, ancestor: str) -> bool:
        """True if ``node_id`` lies strictly below ``ancestor``."""
        self._node(node_id)
        self._node(ancestor)
        return self.index.is_descendant(node_id, ancestor)

    def ancestors(self, node_id: str) -> list[str]:
        """Ancestors of ``node_id``, nearest first, ending at the source."""
        out = []
        current = self._node(node_id).parent
        while current is not None:
            out.append(current)
            current = self._nodes[current].parent
        return out

    def lca(self, a: str, b: str) -> str:
        """Lowest common ancestor — the §3.3 *turning point* of a repair
        travelling from ``a`` to ``b`` (or vice versa) in the source-rooted
        tree."""
        self._node(a)
        self._node(b)
        return self.index.lca(a, b)

    def path(self, a: str, b: str) -> tuple[str, ...]:
        """The unique tree path from ``a`` to ``b``, inclusive of both."""
        self._node(a)
        self._node(b)
        return self.index.path_names(a, b)

    def hop_distance(self, a: str, b: str) -> int:
        """Number of links on the unique path between ``a`` and ``b``."""
        self._node(a)
        self._node(b)
        return self.index.hop_distance(a, b)

    def links_upstream_of(self, link: LinkId) -> list[LinkId]:
        """Links on the path from the source down to (excluding) ``link``."""
        parent, child = link
        if self.parent(child) != parent:
            raise TopologyError(f"{link!r} is not a tree link")
        out = []
        node = parent
        while True:
            up = self._nodes[node].parent
            if up is None:
                break
            out.append((up, node))
            node = up
        return out[::-1]

    def downstream_links(self, node_id: str) -> list[LinkId]:
        """All links strictly below ``node_id``."""
        out: list[LinkId] = []
        stack = [node_id]
        while stack:
            n = stack.pop()
            for child in self._children[n]:
                out.append((n, child))
                stack.append(child)
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_parent_map(self) -> dict[str, str]:
        """The ``child -> parent`` map (a copy)."""
        return dict(self._parents)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MulticastTree(source={self.source!r}, receivers={len(self.receivers)}, "
            f"routers={len(self.routers)}, depth={self.depth})"
        )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_balanced_tree(branching: int = 2, depth: int = 3) -> MulticastTree:
    """A balanced tree: routers at every internal level, receivers at the
    leaves.  Depth counts links from the source to each receiver.

    With ``branching=2, depth=3`` this yields 4 receivers behind 2 routers
    behind 1 router — a convenient smallest-interesting example.
    """
    if depth < 1:
        raise TopologyError("depth must be >= 1")
    if branching < 1:
        raise TopologyError("branching must be >= 1")
    source = "s"
    parents: dict[str, str] = {}
    receivers: list[str] = []
    level = [source]
    router_n = 0
    receiver_n = 0
    for d in range(1, depth + 1):
        next_level = []
        for parent in level:
            for _ in range(branching):
                if d == depth:
                    receiver_n += 1
                    nid = f"r{receiver_n}"
                    receivers.append(nid)
                else:
                    router_n += 1
                    nid = f"x{router_n}"
                parents[nid] = parent
                next_level.append(nid)
        level = next_level
    return MulticastTree(source, parents, receivers)


def build_random_tree(
    n_receivers: int,
    depth: int,
    rng: random.Random,
    extra_branch_prob: float = 0.35,
) -> MulticastTree:
    """A seeded random tree with exactly ``n_receivers`` leaves and exactly
    ``depth`` links on its longest root-to-leaf path.

    The construction first lays a router *spine* of ``depth - 1`` routers so
    at least one receiver sits at the target depth, then attaches the
    remaining receivers to routers chosen at random (biased toward deeper
    routers so trees resemble the MBone topologies: most receivers several
    hops from the source).  With probability ``extra_branch_prob`` a new
    sibling router is interposed, fattening the tree.
    """
    if depth < 2:
        raise TopologyError("random trees need depth >= 2 (router + receiver)")
    if n_receivers < 1:
        raise TopologyError("need at least one receiver")

    source = "s"
    parents: dict[str, str] = {}
    routers: list[str] = []

    def new_router(parent: str) -> str:
        rid = f"x{len(routers) + 1}"
        routers.append(rid)
        parents[rid] = parent
        return rid

    # Spine guaranteeing the exact depth: s -> x1 -> ... -> x_{depth-1} -> r1.
    spine_parent = source
    for _ in range(depth - 1):
        spine_parent = new_router(spine_parent)

    receivers = [f"r{i + 1}" for i in range(n_receivers)]
    parents[receivers[0]] = spine_parent

    for receiver in receivers[1:]:
        # Candidate routers can host receivers at depth router_depth + 1 <= depth.
        # Weights are 1..len by registration order (later routers sit deeper),
        # identical draws to the original routers.index() formulation.
        candidates = [r for r in routers]
        weights = list(range(1, len(candidates) + 1))  # deeper => likelier
        attach = rng.choices(candidates, weights=weights, k=1)[0]
        if rng.random() < extra_branch_prob:
            attach_depth = _router_depth(attach, parents, source)
            if attach_depth + 2 <= depth:
                attach = new_router(attach)
        parents[receiver] = attach

    tree = MulticastTree(source, parents, receivers)
    # The spine plus depth-capped branching guarantees exactness; make sure.
    assert tree.depth == depth, (tree.depth, depth)
    return tree


def _router_depth(router: str, parents: dict[str, str], source: str) -> int:
    d = 0
    node = router
    while node != source:
        node = parents[node]
        d += 1
    return d
