"""Packet model.

The paper distinguishes payload-carrying packets (original transmissions and
retransmissions, 1 KB) from control packets (requests and session messages,
0 KB) — §4.3.  CESRM additionally annotates requests with ``(q, d_qs)`` and
replies with ``(q, d_qs, r, d_rq)`` so receivers can cache optimal
requestor/replier pairs (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

#: Size of payload-carrying packets (original data and retransmissions).
PAYLOAD_BYTES = 1024
#: Size of control packets (requests, session messages) — §4.3 uses 0 KB.
CONTROL_BYTES = 0


class PacketKind(enum.Enum):
    """Wire-level packet types used by SRM and CESRM."""

    DATA = "data"          # original transmission from the source
    SESSION = "session"    # SRM session message (distance estimation, seq reports)
    RQST = "rqst"          # SRM repair request (multicast)
    REPL = "repl"          # SRM repair reply / retransmission (multicast)
    ERQST = "erqst"        # CESRM expedited request (unicast to the replier)
    EREPL = "erepl"        # CESRM expedited reply (multicast, or subcast w/ routers)
    ACK = "ack"            # RMTP status message (unicast to the designated receiver)

    @property
    def carries_payload(self) -> bool:
        """True for packets that carry the 1 KB data payload."""
        return self in (PacketKind.DATA, PacketKind.REPL, PacketKind.EREPL)

    @property
    def is_retransmission(self) -> bool:
        """True for repair replies (the overhead category of Fig. 5b)."""
        return self in (PacketKind.REPL, PacketKind.EREPL)

    @property
    def is_recovery_control(self) -> bool:
        """True for recovery control traffic: repair requests (SRM and
        expedited) and RMTP status messages."""
        return self in (PacketKind.RQST, PacketKind.ERQST, PacketKind.ACK)


class Cast(enum.Enum):
    """How a packet is propagated over the tree."""

    MULTICAST = "multicast"  # flood the shared tree from the sender
    UNICAST = "unicast"      # unique tree path between two nodes
    SUBCAST = "subcast"      # downstream flood from a turning-point router


@dataclass(slots=True)
class Packet:
    """A packet in flight.

    Attributes
    ----------
    kind:
        The wire-level type.
    origin:
        Node id of the host that transmitted this packet.
    source:
        The data source whose stream the packet pertains to (for DATA /
        RQST / REPL / ERQST / EREPL); equals ``origin`` for DATA.
    seqno:
        Data sequence number the packet pertains to; ``-1`` for session
        messages.
    size_bytes:
        On-the-wire size used for transmission-delay computation.
    cast:
        Propagation mode.
    requestor / requestor_dist:
        CESRM request annotation ``(q, d_qs)`` — the requestor and its
        distance estimate to the source (§3.1).  Replies copy the pair
        from the request that instigated them.
    replier / replier_dist:
        CESRM reply annotation ``(r, d_rq)`` — the replier and its distance
        estimate to the requestor.
    turning_point:
        Router-assisted CESRM (§3.3): the turning-point router a reply
        should be unicast to before being subcast downstream.
    payload:
        Opaque application body (used by session messages).
    sent_at:
        Simulated send time, stamped by the network.
    """

    kind: PacketKind
    origin: str
    source: str
    seqno: int
    size_bytes: int
    cast: Cast = Cast.MULTICAST
    requestor: str | None = None
    requestor_dist: float = 0.0
    replier: str | None = None
    replier_dist: float = 0.0
    turning_point: str | None = None
    payload: Any = None
    sent_at: float = field(default=0.0, compare=False)

    @property
    def packet_id(self) -> tuple[str, int]:
        """Identity of the data packet this packet pertains to."""
        return (self.source, self.seqno)

    def copy(self) -> "Packet":
        """A fast independent copy (slot-wise, no dataclass machinery)."""
        clone = object.__new__(Packet)
        for slot in self.__slots__:
            object.__setattr__(clone, slot, getattr(self, slot))
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet({self.kind.value} {self.cast.value} origin={self.origin} "
            f"src={self.source} seq={self.seqno})"
        )
