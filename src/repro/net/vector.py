"""Kernel v2: batched delivery waves on numpy columnar link state.

The pure-python kernel (:mod:`repro.net.network`) processes one hop
arrival per engine event: pop an entry, deliver to the node's agent,
enqueue each outgoing hop on its :class:`~repro.net.link.LinkState`, and
schedule one new entry per hop.  At 10^5 receivers a single data packet
is ~2·10^5 events, each paying python-level attribute and dict traffic.

This module processes *delivery waves* instead.  A wave is every hop
arrival of one packet that lands at one instant — on a depth-synchronised
tree flood that is an entire frontier.  One bucket entry carries the
frontier as int32 ndarrays; firing it

1. expands the frontier against a CSR adjacency built from the network's
   interned hop records (rows in exact ``_adj`` order, so hop order is
   byte-identical to the python kernel's loop),
2. draws the per-hop deterministic trace losses as one ``np.isin`` over
   per-seqno edge-id arrays,
3. advances every crossed link's columnar state (``busy_until``,
   queueing, counters) with elementwise float64 ops in the python
   kernel's exact float-op order, and
4. groups the resulting arrival instants into the next waves.

Equivalence discipline
----------------------

The vector kernel is an *optimisation of event mechanics only*: every
observable — metrics, crossings, RNG draw order, trace events, fault
counters, summary bytes — must match the python kernel exactly
(``tests/test_kernel_equivalence.py`` gates this).  Two rules keep that
true:

* **Single authority.**  In vector mode the columnar arrays are the only
  live link state; every send primitive (multicast, unicast, subcast)
  runs on them.  ``Network.link_state`` syncs the legacy ``LinkState``
  object from the columns on read.
* **Fast path only when invisible.**  Vectorised processing is used only
  when nothing can observe per-hop ordering: no tracer, no ``drop_fn``,
  no active outage, and every fault rule a recognised deterministic
  trace-drop table (``rule.link_combos``).  Anything else — stochastic
  duplicate/reorder rules, link outages, traced runs — falls back to a
  scalar per-hop path that replicates ``Network._transmit`` on the
  columns, preserving draw order, counter order, and trace emission
  order bit for bit.

Why the reordering inside a fast wave is safe: flood deliveries never
send synchronously (receive paths only arm jittered timers), a tree
flood crosses each directed edge at most once per packet, and zero-delay
timers append to the *current* bucket — after the wave entry — in both
kernels.  See docs/performance.md ("Kernel v2") for the full argument.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.net.network import (
    _DATA_KIND,
    _HOP_SHIFT,
    _SLOT_COL,
    _SLOT_ROW,
)


class VectorKernel:
    """Numpy delivery-wave forwarding engine for one :class:`Network`.

    Constructed by ``Network(..., kernel="vector")``; the network keeps
    owning topology, agents, counters, and tracing, and delegates the
    three send primitives here.
    """

    def __init__(self, net: Any) -> None:
        self.net = net
        self.sim = net.sim
        # -- columnar link state (edge-id indexed) ---------------------
        #: hop key (``u << _HOP_SHIFT | v``) -> edge id.  Ids are
        #: append-only: a detached hop's key is deleted and a rejoining
        #: receiver interns *fresh* ids, matching the python kernel's
        #: fresh ``LinkState`` on re-attach.
        self._edge_of: dict[int, int] = {}
        self._n_edges = 0
        self._cap = 0
        self._busy = np.zeros(0, dtype=np.float64)
        self._qd = np.zeros(0, dtype=np.float64)
        self._pkts = np.zeros(0, dtype=np.int64)
        self._bytes = np.zeros(0, dtype=np.int64)
        # -- CSR adjacency (rebuilt lazily after churn) ----------------
        self._dirty = True
        self._ptr = np.zeros(1, dtype=np.int64)
        self._adj_to = np.zeros(0, dtype=np.int32)
        self._adj_edge = np.zeros(0, dtype=np.int32)
        self._cptr = np.zeros(1, dtype=np.int64)
        self._cadj_to = np.zeros(0, dtype=np.int32)
        self._cadj_edge = np.zeros(0, dtype=np.int32)
        # -- per-seqno trace-drop edge sets (cleared on rebuild) -------
        self._drop_cache: dict[int, np.ndarray | None] = {}
        # -- recognised fault rules (see _fast_ok) ---------------------
        self._rules_src: Any = None
        self._rules_len = -1
        self._rules_combos: tuple | None = ()

    # ------------------------------------------------------------------
    # Columnar link state
    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = max(64, self._cap * 2)
        while cap < need:
            cap *= 2
        for name in ("_busy", "_qd", "_pkts", "_bytes"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: self._n_edges] = old[: self._n_edges]
            setattr(self, name, new)
        self._cap = cap

    def _intern(self, key: int) -> int:
        eid = self._edge_of.get(key)
        if eid is None:
            eid = self._n_edges
            if eid >= self._cap:
                self._grow(eid + 1)
            self._edge_of[key] = eid
            self._n_edges = eid + 1
        return eid

    def invalidate(self, *stale_keys: int) -> None:
        """Topology changed (churn): forget ``stale_keys``' edge ids so a
        re-attached hop interns fresh zeroed state, and mark the CSR for
        lazy rebuild."""
        for key in stale_keys:
            self._edge_of.pop(key, None)
        self._dirty = True

    def sync_link(self, u_id: int, v_id: int, link: Any) -> None:
        """Copy a hop's columnar state into its legacy ``LinkState`` (the
        ``Network.link_state`` read path)."""
        if self._dirty:
            self._rebuild()
        eid = self._edge_of.get(u_id << _HOP_SHIFT | v_id)
        if eid is None:
            return
        link.busy_until = float(self._busy[eid])
        link.queueing_delay_total = float(self._qd[eid])
        link.packets_carried = int(self._pkts[eid])
        link.bytes_carried = int(self._bytes[eid])

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Rebuild both CSR tables from the network's live adjacency (the
        single source of truth under membership churn).  Row order equals
        ``_adj`` iteration order, so vectorised hop order is exactly the
        python kernel's loop order."""
        net = self.net
        for adj, ptr_name, to_name, edge_name in (
            (net._adj, "_ptr", "_adj_to", "_adj_edge"),
            (net._child_adj, "_cptr", "_cadj_to", "_cadj_edge"),
        ):
            n = len(adj)
            total = sum(len(records) for records in adj)
            ptr = np.zeros(n + 1, dtype=np.int64)
            adj_to = np.empty(total, dtype=np.int32)
            adj_edge = np.empty(total, dtype=np.int32)
            i = 0
            for node, records in enumerate(adj):
                ptr[node] = i
                for record in records:
                    to = record[0]
                    adj_to[i] = to
                    adj_edge[i] = self._intern(node << _HOP_SHIFT | to)
                    i += 1
            ptr[n] = i
            setattr(self, ptr_name, ptr)
            setattr(self, to_name, adj_to)
            setattr(self, edge_name, adj_edge)
        self._drop_cache.clear()
        self._dirty = False

    # ------------------------------------------------------------------
    # Fast-path eligibility
    # ------------------------------------------------------------------
    def _fast_ok(self, packet: Any) -> bool:
        """True when vectorised processing is observably identical to the
        per-hop path for this packet *now* (see module docstring)."""
        net = self.net
        if net.drop_fn is not None or self.sim.tracer is not None:
            return False
        faults = net.faults
        if faults is None:
            return True
        if faults._down or not faults._rules_data_only:
            return False
        if packet.kind is not _DATA_KIND:
            # The network's own gate skips on_hop entirely here.
            return True
        rules = faults._hop_rules
        if rules is not self._rules_src or len(rules) != self._rules_len:
            combos: list | None = []
            for rule in rules:
                table = getattr(rule, "link_combos", None)
                if table is None:
                    combos = None
                    break
                combos.append(table)
            self._rules_src = rules
            self._rules_len = len(rules)
            self._rules_combos = None if combos is None else tuple(combos)
        return self._rules_combos is not None

    def _drop_edges(self, seqno: int) -> np.ndarray | None:
        """Edge ids on which DATA packet ``seqno`` deterministically dies
        (union over recognised trace-drop rules); None when it crosses
        everything.  Cached per seqno until the next CSR rebuild."""
        cache = self._drop_cache
        if seqno in cache:
            return cache[seqno]
        ids = self.net._ids
        edge_of = self._edge_of
        eids: set[int] = set()
        for table in self._rules_combos:  # type: ignore[union-attr]
            for u, v in table.get(seqno, ()):
                eid = edge_of.get(ids[u] << _HOP_SHIFT | ids[v])
                if eid is not None:  # detached hops are never crossed
                    eids.add(eid)
        arr = (
            np.fromiter(eids, dtype=np.int32, count=len(eids)) if eids else None
        )
        cache[seqno] = arr
        return arr

    # ------------------------------------------------------------------
    # Entry points (called by Network's send primitives)
    # ------------------------------------------------------------------
    def flood_from(self, origin: int, packet: Any, slot: int) -> None:
        """The synchronous half of ``Network.multicast``."""
        self._forward_flood_one(origin, -1, packet, slot)

    def subcast_from(self, router: int, packet: Any, origin: int, slot: int) -> None:
        self._forward_subcast_one(router, packet, origin, slot)

    def unicast_transmit(
        self,
        path: tuple[int, ...],
        index: int,
        packet: Any,
        then_subcast: bool,
        slot: int,
    ) -> None:
        """Mirror of ``Network._unicast_transmit`` on the columns: unicast
        is a single chain of hops, inherently scalar."""
        if self._dirty:
            self._rebuild()
        u = path[index]
        v = path[index + 1]
        eid = self._edge_of.get(u << _HOP_SHIFT | v)
        if eid is None:
            # The next hop detached mid-flight (membership churn).
            self.net.packets_dropped += 1
            return
        self._transmit_one(
            eid,
            u,
            v,
            packet,
            slot,
            self._unicast_arrival,
            (path, index, packet, then_subcast, slot),
        )

    def _unicast_arrival(
        self,
        path: tuple[int, ...],
        index: int,
        packet: Any,
        then_subcast: bool,
        slot: int,
    ) -> None:
        net = self.net
        if index + 2 < len(path):
            self.unicast_transmit(path, index + 1, packet, then_subcast, slot)
            return
        node = path[index + 1]
        if then_subcast:
            self._forward_subcast_one(
                node, packet, net._ids[packet.origin], slot
            )
            return
        agent = net._agents_by_id[node]
        if agent is None:
            if node in net._detached_ids:
                net.packets_dropped += 1
                return
            raise RuntimeError(
                f"unicast destination {net._names[node]!r} has no agent"
            )
        net._deliver(node, agent, packet)

    # ------------------------------------------------------------------
    # Wave callbacks (fired as raw engine entries)
    # ------------------------------------------------------------------
    def _wave_flood(
        self, packet: Any, slot: int, to_ids: np.ndarray, from_ids: np.ndarray
    ) -> None:
        sim = self.sim
        # One engine event stands in for len(wave) python-kernel arrivals.
        sim._events_processed += len(to_ids) - 1
        if self._dirty:
            self._rebuild()
        net = self.net
        if self._fast_ok(packet):
            hop_from, hop_to, hop_edge = self._expand_flood(to_ids, from_ids)
            if hop_edge is not None:
                self._transmit_fast(packet, slot, hop_from, hop_to, hop_edge, -1)
            agents = net._agents_by_id
            delivered = 0
            for node in to_ids.tolist():
                agent = agents[node]
                if agent is not None:
                    delivered += 1
                    agent.receive(packet)
            net.packets_delivered += delivered
        else:
            # Per-arrival scalar replay, in exact bucket order: deliver,
            # then expand hop by hop (draw order, counters, traces).
            for node, frm in zip(to_ids.tolist(), from_ids.tolist()):
                self._arrival_flood(node, frm, packet, slot)

    def _wave_subcast(
        self, packet: Any, slot: int, origin: int, to_ids: np.ndarray
    ) -> None:
        sim = self.sim
        sim._events_processed += len(to_ids) - 1
        if self._dirty:
            self._rebuild()
        net = self.net
        if self._fast_ok(packet):
            hop_from, hop_to, hop_edge = self._expand_subcast(to_ids)
            if hop_edge is not None:
                self._transmit_fast(
                    packet, slot, hop_from, hop_to, hop_edge, origin
                )
            agents = net._agents_by_id
            delivered = 0
            for node in to_ids.tolist():
                agent = agents[node]
                if agent is not None and node != origin:
                    delivered += 1
                    agent.receive(packet)
            net.packets_delivered += delivered
        else:
            for node in to_ids.tolist():
                self._arrival_subcast(node, packet, origin, slot)

    # ------------------------------------------------------------------
    # Scalar arrivals (mirrors of the python kernel's callbacks)
    # ------------------------------------------------------------------
    def _arrival_flood(
        self, node: int, from_node: int, packet: Any, slot: int
    ) -> None:
        net = self.net
        agent = net._agents_by_id[node]
        if agent is not None:
            net.packets_delivered += 1
            if self.sim.tracer is not None:
                net._trace_deliver(node, packet)
            agent.receive(packet)
        self._forward_flood_one(node, from_node, packet, slot)

    def _arrival_subcast(
        self, node: int, packet: Any, origin: int, slot: int
    ) -> None:
        net = self.net
        agent = net._agents_by_id[node]
        if agent is not None and node != origin:
            net._deliver(node, agent, packet)
        self._forward_subcast_one(node, packet, origin, slot)

    # ------------------------------------------------------------------
    # Single-node forwarding (initial sends and scalar arrivals)
    # ------------------------------------------------------------------
    def _forward_flood_one(
        self, node: int, from_node: int, packet: Any, slot: int
    ) -> None:
        if self._dirty:
            self._rebuild()
        lo = self._ptr[node]
        hi = self._ptr[node + 1]
        if lo == hi:
            return
        if self._fast_ok(packet):
            hop_to = self._adj_to[lo:hi]
            hop_edge = self._adj_edge[lo:hi]
            if from_node >= 0:
                keep = hop_to != from_node
                if not keep.all():
                    hop_to = hop_to[keep]
                    hop_edge = hop_edge[keep]
                    if not len(hop_edge):
                        return
            hop_from = np.full(len(hop_to), node, dtype=np.int32)
            self._transmit_fast(packet, slot, hop_from, hop_to, hop_edge, -1)
        else:
            adj_to = self._adj_to
            adj_edge = self._adj_edge
            for j in range(lo, hi):
                to = int(adj_to[j])
                if to != from_node:
                    self._transmit_one(
                        int(adj_edge[j]),
                        node,
                        to,
                        packet,
                        slot,
                        self._arrival_flood,
                        (to, node, packet, slot),
                    )

    def _forward_subcast_one(
        self, node: int, packet: Any, origin: int, slot: int
    ) -> None:
        if self._dirty:
            self._rebuild()
        lo = self._cptr[node]
        hi = self._cptr[node + 1]
        if lo == hi:
            return
        if self._fast_ok(packet):
            hop_to = self._cadj_to[lo:hi]
            hop_edge = self._cadj_edge[lo:hi]
            hop_from = np.full(len(hop_to), node, dtype=np.int32)
            self._transmit_fast(packet, slot, hop_from, hop_to, hop_edge, origin)
        else:
            adj_to = self._cadj_to
            adj_edge = self._cadj_edge
            for j in range(lo, hi):
                to = int(adj_to[j])
                self._transmit_one(
                    int(adj_edge[j]),
                    node,
                    to,
                    packet,
                    slot,
                    self._arrival_subcast,
                    (to, packet, origin, slot),
                )

    # ------------------------------------------------------------------
    # Vectorised expansion
    # ------------------------------------------------------------------
    def _expand_flood(self, to_ids, from_ids):
        """Gather every outgoing hop of the frontier, excluding each
        node's arrival link — node-major, adjacency order, i.e. exactly
        the order the python kernel's nested loops enqueue them."""
        ptr = self._ptr
        counts = ptr[to_ids + 1] - ptr[to_ids]
        total = int(counts.sum())
        if total == 0:
            return None, None, None
        cum = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            cum - counts, counts
        )
        pos = np.repeat(ptr[to_ids], counts) + offsets
        hop_to = self._adj_to[pos]
        hop_edge = self._adj_edge[pos]
        hop_from = np.repeat(to_ids, counts)
        keep = hop_to != np.repeat(from_ids, counts)
        if not keep.all():
            hop_to = hop_to[keep]
            hop_edge = hop_edge[keep]
            hop_from = hop_from[keep]
            if not len(hop_edge):
                return None, None, None
        return hop_from, hop_to, hop_edge

    def _expand_subcast(self, to_ids):
        ptr = self._cptr
        counts = ptr[to_ids + 1] - ptr[to_ids]
        total = int(counts.sum())
        if total == 0:
            return None, None, None
        cum = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            cum - counts, counts
        )
        pos = np.repeat(ptr[to_ids], counts) + offsets
        return np.repeat(to_ids, counts), self._cadj_to[pos], self._cadj_edge[pos]

    # ------------------------------------------------------------------
    # Vectorised transmission
    # ------------------------------------------------------------------
    def _transmit_fast(
        self,
        packet: Any,
        slot: int,
        hop_from: np.ndarray,
        hop_to: np.ndarray,
        hop_edge: np.ndarray,
        subcast_origin: int,
    ) -> None:
        """Cross every hop at once.  Within one wave every directed edge
        appears at most once (tree flood), so the elementwise column
        updates are exact replays of per-hop sequential updates."""
        net = self.net
        n_hops = len(hop_edge)
        # Crossings count before loss, exactly like Network._transmit.
        crossings = net.crossings
        crossings._slots[slot] += n_hops
        crossings._kind_counts[_SLOT_ROW[slot]] += n_hops
        crossings._cast_counts[_SLOT_COL[slot]] += n_hops
        crossings._total += n_hops
        # Deterministic trace losses (§4.3), batched.
        if (
            net.faults is not None
            and packet.kind is _DATA_KIND
            and self._rules_combos
        ):
            drops = self._drop_edges(packet.seqno)
            if drops is not None:
                dropped = np.isin(hop_edge, drops)
                n_dropped = int(dropped.sum())
                if n_dropped:
                    net.packets_dropped += n_dropped
                    keep = ~dropped
                    hop_from = hop_from[keep]
                    hop_to = hop_to[keep]
                    hop_edge = hop_edge[keep]
                    if not len(hop_edge):
                        return
        # Link math — float-op order identical to the inline enqueue in
        # Network._transmit (all links share bandwidth, so tx is scalar).
        sim = self.sim
        now = sim._now
        busy = self._busy[hop_edge]
        start = np.maximum(busy, now)
        self._qd[hop_edge] += start - now
        size = packet.size_bytes
        if size > 0:
            end = start + size * 8.0 / net.bandwidth_bps
            self._bytes[hop_edge] += size
        else:
            end = start
        self._busy[hop_edge] = end
        self._pkts[hop_edge] += 1
        arrival = end + net.propagation_delay
        self._schedule_waves(
            packet, slot, subcast_origin, hop_to, hop_from, arrival
        )

    def _schedule_waves(
        self,
        packet: Any,
        slot: int,
        subcast_origin: int,
        hop_to: np.ndarray,
        hop_from: np.ndarray,
        arrival: np.ndarray,
    ) -> None:
        """Group hops by arrival instant into wave entries.

        Hops sharing an instant stay in hop order (stable grouping), so
        the wave entry is byte-equivalent to the python kernel's
        contiguous per-hop appends into that bucket.  Creation order
        *across* distinct instants is immaterial — a bucket's heap
        position depends only on its timestamp.
        """
        sim = self.sim
        buckets = sim._buckets
        flood = subcast_origin < 0
        wave_cb = self._wave_flood if flood else self._wave_subcast
        if arrival[0] == arrival[-1] and (arrival == arrival[0]).all():
            groups = ((float(arrival[0]), slice(None)),)
        else:
            uniq, inverse = np.unique(arrival, return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            sizes = np.bincount(inverse)
            times = uniq.tolist()
            groups = []
            offset = 0
            for gi, t in enumerate(times):
                sz = int(sizes[gi])
                groups.append((t, order[offset : offset + sz]))
                offset += sz
        for t, idx in groups:
            wt = hop_to[idx]
            if flood:
                args = (packet, slot, wt, hop_from[idx])
            else:
                args = (packet, slot, subcast_origin, wt)
            bucket = buckets.get(t)
            if bucket is not None:
                bucket.append((wave_cb, args))
            else:
                sim.schedule_raw(t, wave_cb, args)

    # ------------------------------------------------------------------
    # Scalar transmission (exact mirror of Network._transmit on columns)
    # ------------------------------------------------------------------
    def _transmit_one(
        self,
        eid: int,
        u_id: int,
        v_id: int,
        packet: Any,
        slot: int,
        on_arrival: Any,
        args: tuple,
    ) -> None:
        net = self.net
        names = net._names
        u = names[u_id]
        v = names[v_id]
        crossings = net.crossings
        crossings._slots[slot] += 1
        crossings._kind_counts[_SLOT_ROW[slot]] += 1
        crossings._cast_counts[_SLOT_COL[slot]] += 1
        crossings._total += 1
        sim = self.sim
        tracer = sim.tracer
        if net.drop_fn is not None and net.drop_fn(u, v, packet):
            net._record_drop(u, v, packet, tracer)
            return
        duplicate = False
        extra_delay = 0.0
        faults = net.faults
        if faults is not None and (
            faults._down
            or not faults._rules_data_only
            or packet.kind is _DATA_KIND
        ):
            effect = faults.on_hop(u, v, packet)
            if effect is not None:
                if effect.drop:
                    net._record_drop(u, v, packet, tracer)
                    return
                duplicate = effect.duplicate
                extra_delay = effect.extra_delay
        now = sim._now
        busy = float(self._busy[eid])
        if tracer is not None:
            from repro.obs.events import EventKind

            wait = busy - now
            tracer.emit(
                now,
                EventKind.NET_HOP,
                node=v,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                cast=packet.cast.value,
                link=f"{u}->{v}",
            )
            if wait > 0:
                tracer.emit(
                    now,
                    EventKind.NET_QUEUE,
                    node=v,
                    source=packet.source,
                    seqno=packet.seqno,
                    link=f"{u}->{v}",
                    wait=wait,
                )
                tracer.observe("net.queueing_delay", wait)
        start = busy if busy > now else now
        size = packet.size_bytes
        self._qd[eid] += start - now
        if size > 0:
            end = start + size * 8.0 / net.bandwidth_bps
            self._bytes[eid] += size
        else:
            end = start
        self._busy[eid] = end
        self._pkts[eid] += 1
        arrival = end + net.propagation_delay + extra_delay
        bucket = sim._buckets.get(arrival)
        if bucket is not None:
            bucket.append((on_arrival, args))
        else:
            sim.schedule_raw(arrival, on_arrival, args)
        if duplicate:
            # The copy serialises behind the original, exactly like
            # LinkState.enqueue would.
            crossings.record_slot(slot)
            start2 = end if end > now else now
            self._qd[eid] += start2 - now
            if size > 0:
                tx = size * 8.0 / net.bandwidth_bps
                self._bytes[eid] += size
            else:
                tx = 0.0
            end2 = start2 + tx
            self._busy[eid] = end2
            self._pkts[eid] += 1
            sim.schedule_raw(
                end2 + net.propagation_delay + extra_delay, on_arrival, args
            )


__all__ = ["VectorKernel"]
