"""Small statistics helpers used across the harness and reports."""

from __future__ import annotations

from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100), linear interpolation; 0.0 if empty."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    # a + f*(b-a) is exact when a == b (a*(1-f) + b*f can be off by 1 ulp)
    return ordered[low] + frac * (ordered[high] - ordered[low])


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with a default for a zero denominator."""
    if denominator == 0:
        return default
    return numerator / denominator


class Histogram:
    """A fixed-bucket histogram with running sum/min/max.

    Buckets are defined by their upper ``edges`` (values above the last
    edge land in an overflow bucket), so recording is O(#edges) with no
    allocation — cheap enough for per-event observation in the tracer —
    and the result serializes to plain JSON for ``RunSummary``.
    """

    #: Default edges suit latencies/delays in simulated seconds.
    DEFAULT_EDGES = (
        0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
    )

    def __init__(self, edges: Sequence[float] | None = None) -> None:
        self.edges = tuple(edges) if edges is not None else self.DEFAULT_EDGES
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be sorted")
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        """Plain JSON data: edges, per-bucket counts, running stats."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min if self.total else 0.0,
            "max": self.max if self.total else 0.0,
        }
