"""Small statistics helpers used across the harness and reports."""

from __future__ import annotations

from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100), linear interpolation; 0.0 if empty."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    # a + f*(b-a) is exact when a == b (a*(1-f) + b*f can be off by 1 ulp)
    return ordered[low] + frac * (ordered[high] - ordered[low])


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with a default for a zero denominator."""
    if denominator == 0:
        return default
    return numerator / denominator
