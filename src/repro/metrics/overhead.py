"""Transmission-overhead accounting (§4.4, Figure 5b).

The paper charges **one unit per packet per tree link crossed** and splits
the total into retransmissions (repair replies — payload-carrying) and
control packets (repair requests), further distinguishing unicast from
multicast control.  Session messages are identical under SRM and CESRM and
are excluded from the recovery-overhead comparison, exactly as in the
paper's Figure 5b categories ("Multicast Retransmissions", "CESRM Multicast
Control Pkts", "CESRM Unicast Control Pkts").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.network import CrossingCounter


@dataclass(frozen=True)
class OverheadBreakdown:
    """Link-crossing cost units by recovery-traffic category."""

    retransmissions: int
    multicast_control: int
    unicast_control: int

    @property
    def total(self) -> int:
        return self.retransmissions + self.multicast_control + self.unicast_control

    @property
    def control(self) -> int:
        return self.multicast_control + self.unicast_control

    def as_percent_of(self, baseline: "OverheadBreakdown") -> dict[str, float]:
        """Each category as a percentage of the *baseline total* — the
        normalization Figure 5b uses (CESRM's stacked bars sum to the
        percentage of SRM's total overhead)."""
        base = baseline.total
        if base == 0:
            return {
                "retransmissions": 0.0,
                "multicast_control": 0.0,
                "unicast_control": 0.0,
                "total": 0.0,
            }
        return {
            "retransmissions": 100.0 * self.retransmissions / base,
            "multicast_control": 100.0 * self.multicast_control / base,
            "unicast_control": 100.0 * self.unicast_control / base,
            "total": 100.0 * self.total / base,
        }


def overhead_breakdown(crossings: CrossingCounter) -> OverheadBreakdown:
    """Derive the Figure 5b categories from a run's link crossings."""
    return OverheadBreakdown(
        retransmissions=crossings.retransmission_crossings,
        multicast_control=crossings.multicast_control_crossings,
        unicast_control=crossings.unicast_control_crossings,
    )
