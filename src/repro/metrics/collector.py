"""The per-run metrics collector.

One :class:`MetricsCollector` is shared by all agents of a simulation run.
Agents report sends, loss detections, and recoveries; the harness combines
the collector with the network's link-crossing counts into a
:class:`repro.harness.runner.RunResult`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.net.packet import Cast, Packet, PacketKind


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed loss recovery at one host."""

    host: str
    seq: int
    latency: float
    expedited: bool
    requests_sent: int


class MetricsCollector:
    """Accumulates protocol events for one simulation run."""

    def __init__(self) -> None:
        #: (host, kind, cast) -> packets sent.
        self.sends: Counter[tuple[str, PacketKind, Cast]] = Counter()
        #: host -> losses detected.
        self.losses_detected: Counter[str] = Counter()
        #: host -> recovery records.
        self.recoveries: dict[str, list[RecoveryRecord]] = defaultdict(list)
        #: host -> duplicate repair replies received.
        self.duplicate_replies: Counter[str] = Counter()
        #: host -> packets repaired before their loss was noticed.
        self.undetected_recoveries: Counter[str] = Counter()
        #: host -> presumed-lost packets that arrived on the data path.
        self.late_arrivals: Counter[str] = Counter()
        #: host -> losses never repaired (filled by the harness at the end).
        self.unrecovered: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Agent-facing recording API
    # ------------------------------------------------------------------
    def on_send(self, host: str, packet: Packet) -> None:
        # ERQST is the only unicast kind; EREPL may be multicast or subcast
        # but is stamped by the network after this call, so classify by
        # kind rather than trusting packet.cast here.
        cast = Cast.UNICAST if packet.kind is PacketKind.ERQST else packet.cast
        self.sends[(host, packet.kind, cast)] += 1

    def on_loss_detected(self, host: str, seq: int, time: float) -> None:
        self.losses_detected[host] += 1

    def on_recovery(
        self,
        host: str,
        seq: int,
        latency: float,
        expedited: bool,
        requests_sent: int,
    ) -> None:
        self.recoveries[host].append(
            RecoveryRecord(host, seq, latency, expedited, requests_sent)
        )

    def on_duplicate_reply(self, host: str, seq: int) -> None:
        self.duplicate_replies[host] += 1

    def on_undetected_recovery(self, host: str, seq: int) -> None:
        self.undetected_recoveries[host] += 1

    def on_late_arrival(self, host: str, seq: int) -> None:
        self.late_arrivals[host] += 1

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def sends_by_host_kind(self, host: str, kind: PacketKind) -> int:
        return sum(
            n for (h, k, _), n in self.sends.items() if h == host and k is kind
        )

    def total_sends(self, kind: PacketKind) -> int:
        return sum(n for (_, k, _), n in self.sends.items() if k is kind)

    def recovery_latencies(
        self, host: str, expedited: bool | None = None
    ) -> list[float]:
        """Latencies of ``host``'s recoveries, optionally filtered by
        whether the repair arrived through the expedited path."""
        return [
            r.latency
            for r in self.recoveries.get(host, [])
            if expedited is None or r.expedited == expedited
        ]

    def recovery_count(self, host: str, expedited: bool | None = None) -> int:
        return len(self.recovery_latencies(host, expedited))

    def all_recoveries(self) -> list[RecoveryRecord]:
        out: list[RecoveryRecord] = []
        for records in self.recoveries.values():
            out.extend(records)
        return out

    def rounds_histogram(self) -> dict[int, int]:
        """How many recoveries needed 0, 1, 2, ... own request rounds.

        Round 0 means the host never fired a request of its own (another
        member's request — or an expedited recovery — repaired the loss
        first); under lossless recovery almost everything completes within
        round 0 or 1, and the tail quantifies lossy-recovery retries.
        """
        histogram: dict[int, int] = {}
        for record in self.all_recoveries():
            histogram[record.requests_sent] = (
                histogram.get(record.requests_sent, 0) + 1
            )
        return dict(sorted(histogram.items()))

    @property
    def expedited_requests_sent(self) -> int:
        """Total expedited requests across hosts (Fig. 5a denominator)."""
        return self.total_sends(PacketKind.ERQST)

    @property
    def expedited_replies_sent(self) -> int:
        """Total expedited replies across hosts (Fig. 5a numerator)."""
        return self.total_sends(PacketKind.EREPL)

    @property
    def expedited_success_rate(self) -> float:
        """#expedited replies / #expedited requests (§4.4, Fig. 5a)."""
        requests = self.expedited_requests_sent
        if requests == 0:
            return 0.0
        return self.expedited_replies_sent / requests
