"""Process memory measurement shared by the benchmark suite.

Every bench that reports memory goes through :func:`peak_rss_bytes` so
the unit handling lives in one place: ``ru_maxrss`` is kibibytes on
Linux but bytes on macOS, and the value is a process-lifetime high-water
mark — it never decreases, so a bench that wants the peak of one
workload in isolation must run that workload in a fresh process (see
``benchmarks/bench_scale.py``).
"""

from __future__ import annotations

import resource
import sys


def peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes.

    A lifetime high-water mark: measuring a phase's own peak requires a
    dedicated process, not before/after deltas.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak
    return peak * 1024


def peak_rss_mb() -> float:
    """:func:`peak_rss_bytes` in mebibytes (rounded to 0.1 MiB)."""
    return round(peak_rss_bytes() / (1024 * 1024), 1)
