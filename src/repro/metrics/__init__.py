"""Run metrics: recovery latencies, packet counts, transmission overhead.

Everything the paper's evaluation section reports is derived from three
ingredients collected here:

* per-loss recovery records (detection time → repair time, expedited or
  not) — Figures 1 and 2;
* per-host packet send counts by kind and cast — Figures 3, 4, and 5a;
* per-link crossing counts by packet category (1 unit per link, §4.4) —
  Figure 5b's transmission overhead.
"""

from repro.metrics.collector import MetricsCollector, RecoveryRecord
from repro.metrics.memory import peak_rss_bytes, peak_rss_mb
from repro.metrics.stats import mean, median, percentile, safe_ratio
from repro.metrics.overhead import OverheadBreakdown, overhead_breakdown

__all__ = [
    "MetricsCollector",
    "RecoveryRecord",
    "mean",
    "median",
    "percentile",
    "safe_ratio",
    "OverheadBreakdown",
    "overhead_breakdown",
    "peak_rss_bytes",
    "peak_rss_mb",
]
