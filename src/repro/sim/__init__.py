"""Discrete-event simulation engine.

This subpackage provides the deterministic, single-threaded simulation
substrate that every other layer is built on:

* :class:`~repro.sim.engine.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.events.Event` — a scheduled, cancellable callback.
* :class:`~repro.sim.timers.Timer` — a restartable one-shot timer.
* :class:`~repro.sim.rng.RngRegistry` — named, independently seeded random
  streams so that simulations are reproducible event-for-event.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event
from repro.sim.timers import Timer, PeriodicTimer
from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "Timer",
    "PeriodicTimer",
    "RngRegistry",
]
