"""Scheduled events for the discrete-event engine.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events are totally ordered by ``(time, sequence)`` where the sequence number
is assigned in scheduling order, so simultaneous events fire FIFO.  This
makes every simulation deterministic given the same inputs and seeds.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A cancellable callback scheduled at an absolute simulated time.

    Events are created by :meth:`repro.sim.engine.Simulator.schedule` and
    should not be instantiated directly.  Cancelling an event is O(1): the
    event is flagged and skipped when it reaches the head of the queue
    (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"
