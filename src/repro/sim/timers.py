"""Restartable timers built on top of the raw event queue.

SRM and CESRM are timer-driven protocols: request timers, reply timers,
back-off abstinence timers, reply abstinence timers, reorder-delay timers,
session timers.  :class:`Timer` gives them a uniform restart/cancel
interface; :class:`PeriodicTimer` drives fixed-period activities such as
session-message exchange and the data source's packet clock.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.events import EventKind, callback_label, callback_node
from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A one-shot timer that can be started, restarted, and cancelled.

    The callback is supplied once at construction; ``start`` (re)arms the
    timer, implicitly cancelling any previous arming.  ``expiry`` exposes the
    absolute fire time while armed.

    When the engine has a tracer attached, every arm/fire/cancel emits a
    ``timer.*`` trace event labelled with the callback (and attributed to
    the owning agent's host when the callback is an agent method).
    """

    def __init__(self, sim: Simulator, callback: Callable[..., Any], *args: Any) -> None:
        self._sim = sim
        self._callback = callback
        self._args = args
        self._event: Event | None = None

    @property
    def armed(self) -> bool:
        """True while the timer is pending."""
        return self._event is not None and self._event.pending

    @property
    def expiry(self) -> float | None:
        """Absolute simulated fire time, or None when not armed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.start_at(self._sim.now + delay)

    def start_at(self, time: float) -> None:
        """Arm (or re-arm) the timer at the absolute simulated ``time``."""
        self.cancel()
        self._event = self._sim.schedule_at(time, self._fire)
        if self._sim.tracer is not None:
            self._trace(EventKind.TIMER_SCHEDULE, at=time)

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent; safe when never started."""
        if self._event is not None:
            if self._sim.tracer is not None and self._event.pending:
                self._trace(EventKind.TIMER_CANCEL)
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        if self._sim.tracer is not None:
            self._trace(EventKind.TIMER_FIRE)
        self._callback(*self._args)

    def _trace(self, kind: str, **detail: Any) -> None:
        self._sim.tracer.emit(
            self._sim.now,
            kind,
            node=callback_node(self._callback),
            timer=callback_label(self._callback),
            **detail,
        )


class PeriodicTimer:
    """Fires a callback every ``period`` seconds until stopped.

    The first firing happens ``first_delay`` seconds after :meth:`start`
    (defaulting to one full period).  Rescheduling happens *before* the
    callback runs, so a callback may stop the timer to break the cycle.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._args = args
        self._event: Event | None = None
        self._ticks = 0

    @property
    def running(self) -> bool:
        return self._event is not None and self._event.pending

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    def start(self, first_delay: float | None = None) -> None:
        """Begin ticking; ``first_delay`` defaults to one period."""
        self.stop()
        delay = self.period if first_delay is None else first_delay
        self._event = self._sim.schedule(delay, self._fire)
        if self._sim.tracer is not None:
            self._trace(EventKind.TIMER_SCHEDULE, at=self._event.time)

    def stop(self) -> None:
        if self._event is not None:
            if self._sim.tracer is not None and self._event.pending:
                self._trace(EventKind.TIMER_CANCEL)
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = self._sim.schedule(self.period, self._fire)
        self._ticks += 1
        if self._sim.tracer is not None:
            self._trace(EventKind.TIMER_FIRE, tick=self._ticks)
        self._callback(*self._args)

    def _trace(self, kind: str, **detail: Any) -> None:
        self._sim.tracer.emit(
            self._sim.now,
            kind,
            node=callback_node(self._callback),
            timer=callback_label(self._callback),
            period=self.period,
            **detail,
        )
