"""Named, independently seeded random streams.

Protocol behaviour (request/reply jitter), trace synthesis (per-link loss
processes), and topology generation all need randomness, but reproducibility
requires that adding randomness consumption in one component never perturbs
another.  :class:`RngRegistry` derives one :class:`random.Random` stream per
name from a single master seed, so each component owns an isolated stream.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of per-name deterministic random streams.

    Streams are derived by hashing ``(master_seed, name)``, so the mapping
    is stable across runs and across Python versions (no reliance on
    ``hash()`` randomization).

    Example
    -------
    >>> a = RngRegistry(7).stream("requests")
    >>> b = RngRegistry(7).stream("requests")
    >>> a.random() == b.random()
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self.derive_seed(name))
            self._streams[name] = stream
        return stream

    def derive_seed(self, name: str) -> int:
        """Stable 64-bit seed for ``name`` under this registry's master seed."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(self.derive_seed(f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(master_seed={self.master_seed}, streams={sorted(self._streams)})"
