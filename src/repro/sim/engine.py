"""The discrete-event simulation loop.

:class:`Simulator` keeps a virtual clock and a *batched* event queue: a
binary heap of distinct timestamps plus one FIFO bucket of entries per
timestamp.  Running the simulator drains whole buckets in scheduling order
— simultaneous events cost one heap operation for the batch instead of one
``heappush``/``heappop`` (plus ``Event`` comparisons) each, which is where
the old flat-heap engine spent most of its time on hop-dense multicast
floods.  The clock only moves when an event fires, so simulated time is
completely decoupled from wall-clock time.

Two scheduling paths share the queue:

* :meth:`schedule` / :meth:`schedule_at` allocate a cancellable
  :class:`~repro.sim.events.Event` (timers, agent work);
* :meth:`schedule_raw` enqueues a bare ``(callback, args)`` pair with no
  ``Event`` allocation, for the network's per-hop arrivals, which are never
  cancelled and dominate the event count.

Cancellation stays lazy (flag and skip), but cancelled entries are now
*compacted*: each bucket sheds them the moment it is drained, and
:meth:`run` sweeps the whole queue at a fixed event cadence so a restarted
timer's corpse never outlives its bucket by much.

Determinism contract
--------------------
Given identical schedules and identical random streams (see
:class:`~repro.sim.rng.RngRegistry`), two runs produce identical event
sequences.  Batching preserves the total ``(time, scheduling-order)``
order exactly: buckets pop in time order and each bucket is FIFO.  The
engine never consults global randomness or wall-clock time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event

#: Fired-event cadence at which :meth:`Simulator.run` compacts
#: lazily-cancelled entries out of future buckets.
COMPACT_INTERVAL = 1 << 16


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now
    1.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: Heap of distinct timestamps with a pending bucket.
        self._times: list[float] = []
        #: timestamp -> FIFO list of entries (Event | (callback, args)).
        self._buckets: dict[float, list[Any]] = {}
        #: Bucket currently being drained (already popped from _buckets).
        self._bucket: list[Any] | None = None
        self._bucket_time = 0.0
        self._bucket_pos = 0
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._stopped = False
        #: Optional observability hooks (repro.obs).  Both default to None
        #: — the disabled state — so an untraced run pays only an
        #: ``is None`` branch per event; instrumented layers reach the
        #: tracer through this single plumbing point.
        self.tracer = None
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued, excluding lazily-cancelled ones."""
        count = 0
        if self._bucket is not None:
            count += sum(
                1
                for e in self._bucket[self._bucket_pos :]
                if type(e) is tuple or not e.cancelled
            )
        for bucket in self._buckets.values():
            count += sum(1 for e in bucket if type(e) is tuple or not e.cancelled)
        return count

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled until it fires.
        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time!r} before now={self._now!r}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._push(time, event)
        return event

    def schedule_raw(
        self, time: float, callback: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        """Schedule a non-cancellable ``callback(*args)`` at ``time``.

        The fast path for fire-and-forget work (the network's per-hop
        packet arrivals): no :class:`Event` is allocated and nothing is
        returned.  Ordering relative to :meth:`schedule_at` is exactly
        call order, as if an ``Event`` had been created.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time!r} before now={self._now!r}"
            )
        # Inline of _push (this is the hottest scheduling entry point).
        bucket = self._buckets.get(time)
        if bucket is not None:
            bucket.append((callback, args))
            return
        self._push(time, (callback, args))

    def _push(self, time: float, entry: Any) -> None:
        bucket = self._buckets.get(time)
        if bucket is not None:
            bucket.append(entry)
            return
        current = self._bucket
        if current is not None:
            if time == self._bucket_time:
                # The instant being drained: fires later in this very batch.
                current.append(entry)
                return
            if time < self._bucket_time:
                # Earlier than the paused drain cursor — possible only
                # between runs, after an ``until``/``max_events`` break
                # left a partially drained bucket detached.  Requeue its
                # remainder so heap order is restored.
                rest = current[self._bucket_pos :]
                if rest:
                    self._buckets[self._bucket_time] = rest
                    heapq.heappush(self._times, self._bucket_time)
                self._bucket = None
        self._buckets[time] = [entry]
        heapq.heappush(self._times, time)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _advance(self) -> float | None:
        """Move the drain cursor to the next live entry; return its time.

        Skipped cancelled entries are discarded (bucket-level compaction).
        Returns None when the queue is exhausted.  Does not fire anything.
        """
        while True:
            bucket = self._bucket
            if bucket is not None:
                pos = self._bucket_pos
                size = len(bucket)
                while pos < size:
                    entry = bucket[pos]
                    if type(entry) is tuple or not entry.cancelled:
                        self._bucket_pos = pos
                        return self._bucket_time
                    pos += 1
                self._bucket = None
            if not self._times:
                return None
            time = heapq.heappop(self._times)
            self._bucket = self._buckets.pop(time)
            self._bucket_time = time
            self._bucket_pos = 0

    def _fire_one(self) -> None:
        """Fire the entry under the drain cursor (must be live)."""
        bucket = self._bucket
        assert bucket is not None
        entry = bucket[self._bucket_pos]
        self._bucket_pos += 1
        self._now = self._bucket_time
        self._events_processed += 1
        if type(entry) is tuple:
            callback, args = entry
        else:
            entry.fired = True
            callback = entry.callback
            args = entry.args
        if self.profiler is None:
            callback(*args)
        else:
            self.profiler.record_call(callback, args)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue is exhausted.
        """
        if self._advance() is None:
            return False
        self._fire_one()
        return True

    def drain_batch(self, until: float | None = None) -> int:
        """Fire every entry of the next pending timestamp in one call.

        The batched stepping primitive: where :meth:`step` fires one entry,
        ``drain_batch`` pops the whole same-timestamp bucket — including
        zero-delay entries appended *while* it drains — and dispatches it
        grouped by callback: a consecutive run of raw (no-``Event``) entries
        sharing one callback fires through a single hoisted local, so a
        hop-dense instant pays the attribute lookups once per run instead
        of once per entry.  Entries are fired strictly in bucket (FIFO)
        order; grouping never reorders.

        Returns the number of entries fired — 0 when the queue is
        exhausted or the next bucket lies beyond ``until`` (in which case
        the clock advances to ``until``, matching :meth:`run`).

        :meth:`clear` called from inside a firing callback truncates the
        active bucket in place and detaches it; the drain re-checks both
        per entry, so stale same-timestamp entries never fire.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if self._advance() is None:
            return 0
        time = self._bucket_time
        if until is not None and time > until:
            if self._now < until:
                self._now = until
            return 0
        self._running = True
        self._stopped = False
        fired = 0
        bucket = self._bucket
        assert bucket is not None
        self._now = time
        profiler = self.profiler
        try:
            pos = self._bucket_pos
            # ``len(bucket)`` and the ``self._bucket is bucket`` identity are
            # re-read every iteration: zero-delay appends grow the batch,
            # clear() shrinks and detaches it.
            while self._bucket is bucket and pos < len(bucket):
                entry = bucket[pos]
                pos += 1
                self._bucket_pos = pos
                if type(entry) is tuple:
                    callback, args = entry
                    self._events_processed += 1
                    fired += 1
                    if profiler is None:
                        callback(*args)
                        # Grouped dispatch: drain the run of raw entries
                        # that share this callback with it held in a local.
                        while (
                            not self._stopped
                            and self._bucket is bucket
                            and pos < len(bucket)
                        ):
                            nxt = bucket[pos]
                            if type(nxt) is not tuple or nxt[0] is not callback:
                                break
                            pos += 1
                            self._bucket_pos = pos
                            self._events_processed += 1
                            fired += 1
                            callback(*nxt[1])
                    else:
                        profiler.record_call(callback, args)
                elif not entry.cancelled:
                    entry.fired = True
                    self._events_processed += 1
                    fired += 1
                    if profiler is None:
                        entry.callback(*entry.args)
                    else:
                        profiler.record_call(entry.callback, entry.args)
                if self._stopped:
                    break
            if self._bucket is bucket and self._bucket_pos >= len(bucket):
                self._bucket = None
        finally:
            self._running = False
        return fired

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` still fire.  Afterwards the clock rests at the last fired
        event's time (or at ``until`` if that is later and the queue held a
        later event).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        # The body below is :meth:`_advance` + :meth:`_fire_one` inlined:
        # at millions of events per run the two method calls per event are
        # measurable.  ``step()`` still uses the method forms; keep the
        # three drain paths behaviourally identical.
        heappop = heapq.heappop
        buckets = self._buckets
        next_compact = COMPACT_INTERVAL
        done = False
        try:
            while not done:
                # Advance the drain cursor to the next live entry.
                entry = None
                bucket = self._bucket
                pos = self._bucket_pos
                while True:
                    if bucket is not None:
                        size = len(bucket)
                        while pos < size:
                            candidate = bucket[pos]
                            if type(candidate) is tuple or not candidate.cancelled:
                                entry = candidate
                                break
                            pos += 1
                        if entry is not None:
                            break
                        self._bucket = bucket = None
                    times = self._times
                    if not times:
                        break
                    time = heappop(times)
                    bucket = buckets.pop(time)
                    self._bucket = bucket
                    self._bucket_time = time
                    pos = 0
                if entry is None:
                    break
                self._bucket_pos = pos
                time = self._bucket_time
                # Checked once per bucket: every entry in it shares ``time``,
                # including zero-delay events appended while draining.
                if until is not None and time > until:
                    if self._now < until:
                        self._now = until
                    break
                # Stop/limit checks happen before each fire — here for the
                # bucket's first entry (before the clock moves), at the loop
                # bottom for the rest.
                if self._stopped or (max_events is not None and fired >= max_events):
                    break
                self._now = time
                # Drain the selected bucket.
                while True:
                    self._bucket_pos = pos + 1
                    self._events_processed += 1
                    if type(entry) is tuple:
                        callback, args = entry
                    else:
                        entry.fired = True
                        callback = entry.callback
                        args = entry.args
                    if self.profiler is None:
                        callback(*args)
                    else:
                        self.profiler.record_call(callback, args)
                    fired += 1
                    if fired == next_compact:
                        next_compact += COMPACT_INTERVAL
                        self.compact()
                    # Next live entry in the same bucket, if any.
                    pos = self._bucket_pos
                    entry = None
                    size = len(bucket)
                    while pos < size:
                        candidate = bucket[pos]
                        if type(candidate) is tuple or not candidate.cancelled:
                            entry = candidate
                            break
                        pos += 1
                    if entry is None:
                        self._bucket = None
                        break
                    self._bucket_pos = pos
                    if self._stopped or (
                        max_events is not None and fired >= max_events
                    ):
                        done = True
                        break
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event's callback returns."""
        self._stopped = True

    def clear(self) -> None:
        """Drop every pending event without firing it."""
        self._times.clear()
        self._buckets.clear()
        bucket = self._bucket
        if bucket is not None:
            # run()'s inlined drain loop holds a direct reference to the
            # active bucket; truncate it in place so the per-event size
            # re-read sees it exhausted and the loop halts even when
            # clear() is called from inside a firing callback.
            del bucket[self._bucket_pos :]
            self._bucket = None

    def compact(self) -> None:
        """Drop lazily-cancelled entries from every future bucket.

        Draining already compacts the active bucket; this sweeps the rest,
        bounding the memory held by restarted timers' stale events.  Called
        automatically by :meth:`run` every ``COMPACT_INTERVAL`` events and
        safe to call at any point.
        """
        empty: list[float] = []
        for time, bucket in self._buckets.items():
            live = [e for e in bucket if type(e) is tuple or not e.cancelled]
            if live:
                if len(live) != len(bucket):
                    self._buckets[time] = live
            else:
                empty.append(time)
        if empty:
            for time in empty:
                del self._buckets[time]
            # Rebuild the time heap without the now-empty timestamps (the
            # active bucket's time is not in the heap by construction).
            self._times = [t for t in self._times if t in self._buckets]
            heapq.heapify(self._times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
