"""The discrete-event simulation loop.

:class:`Simulator` keeps a virtual clock and a binary heap of scheduled
:class:`~repro.sim.events.Event` objects.  Running the simulator pops events
in ``(time, scheduling-order)`` order and invokes their callbacks.  The clock
only moves when an event fires, so simulated time is completely decoupled
from wall-clock time.

Determinism contract
--------------------
Given identical schedules and identical random streams (see
:class:`~repro.sim.rng.RngRegistry`), two runs produce identical event
sequences.  The engine never consults global randomness or wall-clock time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now
    1.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._stopped = False
        #: Optional observability hooks (repro.obs).  Both default to None
        #: — the disabled state — so an untraced run pays only an
        #: ``is None`` branch per event; instrumented layers reach the
        #: tracer through this single plumbing point.
        self.tracer = None
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued, including lazily-cancelled ones."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled until it fires.
        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant (FIFO order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time!r} before now={self._now!r}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns True if an event fired, False if the queue is exhausted.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            self._events_processed += 1
            if self.profiler is None:
                event.callback(*event.args)
            else:
                self.profiler.record_call(event.callback, event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` still fire.  Afterwards the clock rests at the last fired
        event's time (or at ``until`` if that is later and the queue held a
        later event).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event's callback returns."""
        self._stopped = True

    def clear(self) -> None:
        """Drop every pending event without firing it."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
