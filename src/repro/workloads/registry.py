"""The pluggable workload registry and spec-string grammar.

A *workload* decides when each data packet is multicast and by whom —
the offered-traffic side of an experiment, orthogonal to the protocol,
the topology, and the fault plan.  Every workload family the harness can
run is described by one :class:`WorkloadSpec` (mirroring
:class:`~repro.harness.registry.ProtocolSpec`): a factory that turns the
family's parameters into a deterministic generator of
:class:`SendEvent`\\ s.  The spec-string grammar is::

    family[:key=value[,key=value...]]

e.g. ``zipf:alpha=1.1,objects=500``, ``flash_crowd:peak=20x,ramp=5s``,
``multi_source:senders=4``, or a single positional value where the
family takes one (``trace:WRN951128``).  :func:`compile_workload` parses
and validates a spec string into a :class:`Workload`, whose
:meth:`~Workload.events` method materializes the seeded event stream for
a concrete trace.

Determinism contract: event generation draws from one
:class:`~repro.sim.rng.RngRegistry` stream derived from
``(seed, trace name, canonical spec)`` and nothing else, so the same
spec + seed yields the identical stream for every protocol — workloads
offer the *same* traffic to SRM and CESRM — and registering new families
never perturbs existing ones (name-isolated streams).

A new family plugs in with one call:

.. code-block:: python

    from repro.workloads import WorkloadSpec, register_workload

    register_workload(WorkloadSpec(name="my-burst", factory=my_factory))

where ``my_factory(params)`` validates the raw parameter mapping and
returns a ``generate(trace, rng)`` callable yielding :class:`SendEvent`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.harness import specstr
from repro.harness.registries import Registry
from repro.sim.rng import RngRegistry
from repro.traces.model import LossTrace

#: ``generate(trace, rng)`` — yields the send events of one run.
Generator = Callable[[LossTrace, random.Random], Iterable["SendEvent"]]

#: ``factory(params)`` — validates raw parameters, returns a generator.
GeneratorFactory = Callable[[Mapping[str, str]], Generator]


class WorkloadError(ValueError):
    """Raised for malformed spec strings, unknown families or parameters,
    and generators that emit invalid event streams."""


@dataclass(frozen=True)
class SendEvent:
    """One data-packet transmission requested by a workload.

    ``time`` is the offset from the run's ``transmission_start``;
    ``sender`` names the multicasting host (the tree source or any
    receiver — SRM is any-source); ``seqno`` is the sender-local sequence
    number; ``obj`` tags the application object the packet belongs to
    (popularity-driven families use it, constant-rate ones leave it 0).
    """

    time: float
    sender: str
    seqno: int
    obj: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the harness needs to run one workload family."""

    #: Registry name (the spec string's ``family`` part).
    name: str
    #: Builds a generator from the raw ``key=value`` parameter mapping;
    #: must raise :class:`WorkloadError` on unknown keys or bad values.
    factory: GeneratorFactory
    #: One-line description for ``cesrm workloads`` listings.
    description: str = ""
    #: Documented parameters: ``name -> "default — meaning"``.
    params_doc: Mapping[str, str] = field(default_factory=dict)
    #: Extra metadata for listings and experiments.
    tags: tuple[str, ...] = field(default=())


#: One shared :class:`~repro.harness.registries.Registry` instance — the
#: same helper behind protocols, selection policies, and cache policies.
_REGISTRY: Registry[WorkloadSpec] = Registry("workload", error=WorkloadError)


def register_workload(spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
    """Add ``spec`` to the registry.  Re-registering an existing name is an
    error unless ``replace=True`` (tests swapping in doubles)."""
    return _REGISTRY.register(spec, replace=replace)


def unregister_workload(name: str) -> None:
    """Remove a workload family (primarily for tests cleaning up doubles)."""
    _REGISTRY.unregister(name)


def get_workload_spec(name: str) -> WorkloadSpec:
    """The spec registered under ``name``; raises :class:`WorkloadError`
    (with the known names) otherwise."""
    return _REGISTRY.get(name)


def available_workloads() -> tuple[str, ...]:
    """Registered workload family names, in registration order."""
    return _REGISTRY.names()


#: Consistent `*_names` alias matching the other registries.
workload_names = available_workloads


def all_workload_specs() -> tuple[WorkloadSpec, ...]:
    return _REGISTRY.specs()


# ----------------------------------------------------------------------
# Spec-string grammar — the shared repro.harness.specstr parser, bound
# to this surface's noun and error type.  Error wording is unchanged
# from the pre-specstr parser (pinned by tests).
# ----------------------------------------------------------------------
#: The parameter key a bare (``key=``-less) token is stored under; a
#: family taking one positional value reads it from here.
POSITIONAL = specstr.POSITIONAL


def parse_spec(spec: str) -> tuple[str, dict[str, str]]:
    """``family:key=value,...`` -> ``(family, params)``.

    A single bare token (no ``=``) is allowed as a positional value and
    stored under :data:`POSITIONAL`; everything else must be ``key=value``.
    """
    return specstr.parse_spec(spec, label="workload", error=WorkloadError)


def canonical_spec(family: str, params: Mapping[str, str]) -> str:
    """The normalized spec string: family, then parameters sorted by key
    (a positional value sorts first, rendered bare)."""
    return specstr.canonical_spec(family, params)


class Workload:
    """A compiled workload: a validated family + parameters pair that can
    materialize its deterministic event stream for any trace."""

    def __init__(self, name: str, params: Mapping[str, str], generate: Generator):
        self.name = name
        self.params = dict(params)
        self._generate = generate

    @property
    def spec(self) -> str:
        """The canonical spec string (what digests and summaries record)."""
        return canonical_spec(self.name, self.params)

    def events(self, trace: LossTrace, seed: int = 0) -> tuple[SendEvent, ...]:
        """The full, validated event stream for ``trace`` under ``seed``.

        Deterministic in ``(spec, trace, seed)``: the generator's only
        entropy source is a registry stream named by the canonical spec
        under a ``workload:<trace>`` fork, so it is isolated from every
        agent/synthesis stream by construction.
        """
        rng = RngRegistry(seed).fork(f"workload:{trace.name}").stream(self.spec)
        events = tuple(self._generate(trace, rng))
        _validate_events(events, trace, self.spec)
        return events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workload({self.spec!r})"


def compile_workload(spec: str) -> Workload:
    """Parse and validate ``spec`` into a :class:`Workload` (the single
    validation point — :class:`~repro.exec.jobs.RunJob` and the CLI both
    call this, so a typo fails before any simulation starts)."""
    family, params = parse_spec(spec)
    ws = get_workload_spec(family)
    generate = ws.factory(dict(params))
    return Workload(family, params, generate)


def _validate_events(
    events: tuple[SendEvent, ...], trace: LossTrace, spec: str
) -> None:
    """Reject streams the protocol stack cannot recover: unknown senders,
    negative/NaN times, and per-sender sequence gaps (a skipped seqno
    would register as a permanently unrepairable loss at every receiver).
    """
    if not events:
        raise WorkloadError(f"workload {spec!r} generated no events")
    hosts = set(trace.tree.hosts)
    per_sender: dict[str, set[int]] = {}
    for ev in events:
        if ev.sender not in hosts:
            raise WorkloadError(
                f"workload {spec!r} uses unknown sender {ev.sender!r}"
            )
        if not math.isfinite(ev.time) or ev.time < 0.0:
            raise WorkloadError(
                f"workload {spec!r} scheduled an event at invalid time {ev.time!r}"
            )
        seen = per_sender.setdefault(ev.sender, set())
        if ev.seqno in seen:
            raise WorkloadError(
                f"workload {spec!r} repeats seqno {ev.seqno} at {ev.sender!r}"
            )
        seen.add(ev.seqno)
    for sender, seqnos in per_sender.items():
        if seqnos != set(range(len(seqnos))):
            raise WorkloadError(
                f"workload {spec!r} leaves sequence gaps at {sender!r} "
                f"(seqnos must cover 0..{len(seqnos) - 1})"
            )


__all__ = [
    "Generator",
    "GeneratorFactory",
    "POSITIONAL",
    "SendEvent",
    "Workload",
    "WorkloadError",
    "WorkloadSpec",
    "all_workload_specs",
    "available_workloads",
    "canonical_spec",
    "compile_workload",
    "get_workload_spec",
    "parse_spec",
    "register_workload",
    "unregister_workload",
    "workload_names",
]
