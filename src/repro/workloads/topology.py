"""Generative topology families: trace names that build their own tree.

The 14 Yajnik receiver sets are measurements; this module adds the first
*generative* family so workloads can run beyond them (ROADMAP item 1's
down-payment).  A topology spec reuses the workload grammar and rides in
the ``trace`` slot of a :class:`~repro.exec.jobs.RunJob`::

    tree:depth=3,fanout=4              # 64 receivers, balanced
    tree:depth=2,fanout=2,loss=0.08    # lossier variant
    cesrm run --trace tree:depth=3,fanout=2 --workload zipf:alpha=1.1

Names containing ``:`` are routed here (:func:`is_topology_spec`); plain
names keep resolving through :func:`~repro.traces.yajnik.trace_meta`, so
every pre-existing spec string is untouched.  The tree comes from
:func:`~repro.net.topology.build_balanced_tree` (and therefore carries
the integer-indexed :class:`~repro.net.index.TopologyIndex` like every
other tree); losses are synthesized by the calibrated Gilbert machinery
over the prebuilt tree (:func:`~repro.traces.synthesize.synthesize_on_tree`),
deterministic in ``(spec, seed, max_packets)``.
"""

from __future__ import annotations

from repro.net.topology import MulticastTree, build_balanced_tree
from repro.traces.model import SyntheticTrace
from repro.traces.synthesize import SynthesisParams, synthesize_on_tree
from repro.workloads.registry import (
    WorkloadError,
    canonical_spec,
    parse_spec,
)

#: Registered generative topology families (family -> builder).
TOPOLOGY_FAMILIES = ("tree",)

#: Defaults for the ``tree`` family (also the documented grammar).
TREE_DEFAULTS = {
    "depth": "3",
    "fanout": "2",
    "loss": "0.05",
    "period": "0.08",
    "packets": "1000",
}


def is_topology_spec(name: str) -> bool:
    """True when ``name`` is a generative topology spec rather than a
    Yajnik trace name (the router: a ``family:`` prefix we know)."""
    family, _, rest = name.partition(":")
    return bool(rest) and family.strip() in TOPOLOGY_FAMILIES


def parse_topology_spec(spec: str) -> dict[str, str]:
    """Validate a ``tree:`` spec and return its full parameter mapping
    (defaults filled in, unknown keys rejected)."""
    family, params = parse_spec(spec)
    if family not in TOPOLOGY_FAMILIES:
        raise WorkloadError(
            f"unknown topology family {family!r}; known: {TOPOLOGY_FAMILIES}"
        )
    unknown = set(params) - set(TREE_DEFAULTS)
    if unknown:
        raise WorkloadError(
            f"unknown parameter(s) {sorted(unknown)} for topology {family!r}"
        )
    merged = dict(TREE_DEFAULTS)
    merged.update(params)
    try:
        depth = int(merged["depth"])
        fanout = int(merged["fanout"])
        packets = int(merged["packets"])
        loss = float(merged["loss"])
        period = float(merged["period"])
    except ValueError as exc:
        raise WorkloadError(f"malformed topology spec {spec!r}: {exc}") from None
    if depth < 1 or fanout < 1:
        raise WorkloadError(f"topology {spec!r}: depth and fanout must be >= 1")
    if fanout ** depth > 4096:
        raise WorkloadError(
            f"topology {spec!r}: {fanout ** depth} receivers is unreasonably large"
        )
    if not (0.0 < loss < 1.0):
        raise WorkloadError(f"topology {spec!r}: loss must be in (0, 1)")
    if period <= 0 or packets < 1:
        raise WorkloadError(f"topology {spec!r}: period/packets must be positive")
    return merged


def build_topology(spec: str) -> MulticastTree:
    """Build the multicast tree a topology spec describes."""
    params = parse_topology_spec(spec)
    return build_balanced_tree(
        branching=int(params["fanout"]), depth=int(params["depth"])
    )


def synthesize_topology_trace(
    spec: str,
    seed: int = 0,
    max_packets: int | None = None,
) -> SyntheticTrace:
    """Synthesize a calibrated loss trace over a generative topology.

    The trace is named by the *canonical* spec so equivalent spellings
    (parameter order) share one identity; the loss target is
    ``loss · packets · receivers``, scaled down with ``max_packets``
    exactly like the Yajnik replay caps.
    """
    params = parse_topology_spec(spec)
    tree = build_topology(spec)
    n_packets = int(params["packets"])
    if max_packets is not None and max_packets < n_packets:
        n_packets = max_packets
    target = max(1, round(float(params["loss"]) * n_packets * len(tree.receivers)))
    family, raw = parse_spec(spec)
    synth_params = SynthesisParams(
        name=canonical_spec(family, raw),
        n_receivers=len(tree.receivers),
        tree_depth=tree.depth,
        period=float(params["period"]),
        n_packets=n_packets,
        target_losses=target,
    )
    return synthesize_on_tree(tree, synth_params, seed=seed)


__all__ = [
    "TOPOLOGY_FAMILIES",
    "TREE_DEFAULTS",
    "build_topology",
    "is_topology_spec",
    "parse_topology_spec",
    "synthesize_topology_trace",
]
