"""Compatibility shim: generative topologies now live in
:mod:`repro.net.families`.

The first generative family (``tree:``) grew up here before topology
families became a registry; every public name keeps working, and the
historical contract — these helpers raise
:class:`~repro.workloads.registry.WorkloadError` — is preserved by
translating :class:`~repro.net.families.TopologyError` at the boundary.
New call sites should import from :mod:`repro.net.families` directly
(and catch ``TopologyError``).
"""

from __future__ import annotations

from repro.net import families as _families
from repro.net.families import TREE_DEFAULTS, TopologyError, is_topology_spec
from repro.net.topology import MulticastTree
from repro.traces.model import SyntheticTrace
from repro.workloads.registry import WorkloadError

#: Registered generative topology families, in registration order.
TOPOLOGY_FAMILIES = _families.topology_names()


def parse_topology_spec(spec: str) -> dict[str, str]:
    """Validate a topology spec and return its full parameter mapping
    (defaults filled in, unknown keys rejected)."""
    try:
        return _families.parse_topology_spec(spec)
    except TopologyError as exc:
        raise WorkloadError(str(exc)) from None


def build_topology(spec: str) -> MulticastTree:
    """Build the multicast tree a topology spec describes."""
    try:
        return _families.build_topology(spec)
    except TopologyError as exc:
        raise WorkloadError(str(exc)) from None


def synthesize_topology_trace(
    spec: str,
    seed: int = 0,
    max_packets: int | None = None,
) -> SyntheticTrace:
    """Synthesize a loss trace over a generative topology (see
    :func:`repro.net.families.synthesize_topology_trace`)."""
    try:
        return _families.synthesize_topology_trace(
            spec, seed=seed, max_packets=max_packets
        )
    except TopologyError as exc:
        raise WorkloadError(str(exc)) from None


__all__ = [
    "TOPOLOGY_FAMILIES",
    "TREE_DEFAULTS",
    "build_topology",
    "is_topology_spec",
    "parse_topology_spec",
    "synthesize_topology_trace",
]
