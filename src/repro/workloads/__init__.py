"""repro.workloads — declarative workload/scenario DSL.

``repro.workloads`` turns a spec string like ``zipf:alpha=1.1,objects=500``
into a seeded, deterministic stream of send events the sim engine drains,
through a pluggable registry mirroring the protocol registry.  See
``docs/workloads.md`` for the grammar and the extension recipe.

Importing this package registers the built-in families (cbr, poisson,
zipf, flash_crowd, diurnal, multi_source, trace) and exposes the
generative topology helpers (``tree:depth=D,fanout=F``).
"""

from repro.workloads.registry import (
    POSITIONAL,
    SendEvent,
    Workload,
    WorkloadError,
    WorkloadSpec,
    all_workload_specs,
    available_workloads,
    canonical_spec,
    compile_workload,
    get_workload_spec,
    parse_spec,
    register_workload,
    unregister_workload,
    workload_names,
)
from repro.workloads.generators import DEFAULT_WORKLOAD
from repro.workloads.runtime import (
    events_horizon,
    schedule_events,
    workload_run_stats,
)
from repro.workloads.topology import (
    TOPOLOGY_FAMILIES,
    build_topology,
    is_topology_spec,
    parse_topology_spec,
    synthesize_topology_trace,
)

__all__ = [
    "DEFAULT_WORKLOAD",
    "POSITIONAL",
    "SendEvent",
    "TOPOLOGY_FAMILIES",
    "Workload",
    "WorkloadError",
    "WorkloadSpec",
    "all_workload_specs",
    "available_workloads",
    "build_topology",
    "canonical_spec",
    "compile_workload",
    "events_horizon",
    "get_workload_spec",
    "is_topology_spec",
    "parse_spec",
    "parse_topology_spec",
    "register_workload",
    "schedule_events",
    "synthesize_topology_trace",
    "unregister_workload",
    "workload_names",
    "workload_run_stats",
]
