"""Runner-side glue: scheduling a workload and summarizing what it did.

Kept separate from the registry so :mod:`repro.harness.runner` imports
one narrow seam.  :func:`schedule_events` turns the compiled stream into
engine callbacks (emitting :data:`~repro.obs.events.EventKind.WORKLOAD_SEND`
on traced runs so a timeline reader can see the generation alongside the
recovery it caused); :func:`workload_run_stats` reduces the run into the
per-workload metrics block :class:`~repro.exec.summary.RunSummary`
records: offered load, expedited fraction, recovery-latency percentiles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.stats import percentile
from repro.workloads.registry import SendEvent, Workload, WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collector import MetricsCollector
    from repro.sim.engine import Simulator
    from repro.srm.agent import SrmAgent
    from repro.traces.model import LossTrace


def _workload_send(sim: "Simulator", agent: "SrmAgent", event: SendEvent) -> None:
    """One scheduled workload transmission (engine callback)."""
    if sim.tracer is not None:
        from repro.obs.events import EventKind

        sim.tracer.emit(
            sim.now,
            EventKind.WORKLOAD_SEND,
            node=agent.host_id,
            source=agent.host_id,
            seqno=event.seqno,
            obj=event.obj,
        )
    agent.send_data(event.seqno)


def schedule_events(
    sim: "Simulator",
    agents: dict[str, "SrmAgent"],
    events: tuple[SendEvent, ...],
    t0: float,
) -> None:
    """Schedule every workload event at ``t0 + event.time``."""
    for event in events:
        agent = agents.get(event.sender)
        if agent is None:  # defense in depth; compile already validated
            raise WorkloadError(f"no agent at workload sender {event.sender!r}")
        sim.schedule_at(t0 + event.time, _workload_send, sim, agent, event)


def events_horizon(events: tuple[SendEvent, ...], period: float) -> float:
    """The data phase's length: the last transmission plus one period
    (mirrors the legacy ``n_packets * period`` end-of-data point)."""
    if not events:
        return 0.0
    return max(event.time for event in events) + period


def workload_run_stats(
    workload: Workload,
    events: tuple[SendEvent, ...],
    metrics: "MetricsCollector",
    trace: "LossTrace",
) -> dict:
    """The ``RunSummary.workload`` block for one completed run."""
    senders = sorted({event.sender for event in events})
    duration = events_horizon(events, trace.period)
    records = metrics.all_recoveries()
    latencies = sorted(record.latency for record in records)
    expedited = sum(1 for record in records if record.expedited)
    stats: dict = {
        "spec": workload.spec,
        "family": workload.name,
        "events": len(events),
        "senders": senders,
        "objects": len({event.obj for event in events}),
        "duration": duration,
        "offered_load_pps": (len(events) / duration) if duration > 0 else 0.0,
        "recoveries": len(records),
        "expedited_fraction": (expedited / len(records)) if records else 0.0,
    }
    if latencies:
        stats["latency_p50"] = percentile(latencies, 50)
        stats["latency_p90"] = percentile(latencies, 90)
        stats["latency_p99"] = percentile(latencies, 99)
    return stats


__all__ = [
    "events_horizon",
    "schedule_events",
    "workload_run_stats",
]
