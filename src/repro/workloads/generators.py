"""The built-in workload families.

Each family is a :class:`~repro.workloads.registry.WorkloadSpec` whose
factory validates the raw ``key=value`` parameters once (at compile
time) and returns a pure ``generate(trace, rng)`` callable.  All rates
are expressed relative to the trace's nominal packet period, so a
workload composes with any trace or topology without re-tuning: the
trace still fixes *how many* packets are sent (``trace.n_packets``) and
what the network drops; the workload decides *when* and *by whom*.

Families shipped (the ISSUE's grammar):

``cbr``
    The legacy constant-bit-rate schedule — packet ``i`` at ``i·period``
    from the source (``rate=2`` doubles the pace).
``poisson``
    Memoryless arrivals at ``rate`` packets/s (default ``1/period``).
``zipf``
    Zipf-popular objects sent as bursty back-to-back trains — the
    temporally-local traffic CESRM's recovery cache thrives on.
``flash_crowd``
    Rate ramps to ``peak``× over ``ramp`` seconds mid-run, holds, and
    ramps back down.
``diurnal``
    Sinusoidal rate between ``min``× and 1× with cycle ``period``.
``multi_source``
    ``senders`` hosts take round-robin turns multicasting (any-source
    SRM; each sender numbers its own stream from 0).
``trace``
    Pace with the packet period of the *named* Yajnik trace — replay
    WRN951128's timing over any topology.
"""

from __future__ import annotations

import math
import random
from typing import Mapping

from repro.harness import specstr
from repro.traces.model import LossTrace
from repro.workloads.registry import (
    POSITIONAL,
    SendEvent,
    WorkloadError,
    WorkloadSpec,
    register_workload,
)

#: The family :class:`~repro.exec.jobs.RunJob` treats as the implicit
#: default: ``workload=""`` runs the same source-paced schedule the
#: pre-workload harness hard-coded (and stays byte-identical to it).
DEFAULT_WORKLOAD = "cbr"


# ----------------------------------------------------------------------
# Parameter coercion — the shared repro.harness.specstr helpers, bound
# to this surface's noun and error type (messages unchanged, pinned by
# tests).
# ----------------------------------------------------------------------
def _consume(params: dict, key: str, default: str | None = None) -> str | None:
    return specstr.consume(params, key, default)


def _reject_unknown(params: Mapping[str, str], family: str) -> None:
    specstr.reject_unknown(params, f"workload {family!r}", WorkloadError)


def _as_float(value: str, family: str, key: str) -> float:
    """Parse a number, tolerating the grammar's unit suffixes: ``20x``
    (multiplier), ``5s`` (seconds), ``40ms`` (milliseconds)."""
    return specstr.coerce_float(value, f"workload {family!r}", key, WorkloadError)


def _float_param(
    params: dict, family: str, key: str, default: float,
    minimum: float | None = None,
) -> float:
    return specstr.float_param(
        params, f"workload {family!r}", key, default, minimum, WorkloadError
    )


def _int_param(
    params: dict, family: str, key: str, default: int, minimum: int = 1
) -> int:
    return specstr.int_param(
        params, f"workload {family!r}", key, default, minimum, WorkloadError
    )


# ----------------------------------------------------------------------
# cbr — the legacy schedule, made explicit
# ----------------------------------------------------------------------
def _cbr_factory(params: dict):
    rate = _float_param(params, "cbr", "rate", 1.0, minimum=1e-9)
    _reject_unknown(params, "cbr")

    def generate(trace: LossTrace, rng: random.Random):
        src = trace.tree.source
        # rate == 1 reproduces the hard-coded ``seq * period`` schedule
        # float for float, so a cbr run differs from a default run only
        # by carrying workload metadata.
        step = trace.period if rate == 1.0 else trace.period / rate
        for seq in range(trace.n_packets):
            yield SendEvent(seq * step, src, seq)

    return generate


# ----------------------------------------------------------------------
# poisson — memoryless arrivals
# ----------------------------------------------------------------------
def _poisson_factory(params: dict):
    rate = _consume(params, "rate")
    _reject_unknown(params, "poisson")
    pps = None if rate is None else _as_float(rate, "poisson", "rate")
    if pps is not None and pps <= 0:
        raise WorkloadError(f"workload 'poisson': rate={pps!r} must be > 0")

    def generate(trace: LossTrace, rng: random.Random):
        src = trace.tree.source
        lam = pps if pps is not None else 1.0 / trace.period
        t = 0.0
        for seq in range(trace.n_packets):
            yield SendEvent(t, src, seq)
            t += rng.expovariate(lam)

    return generate


# ----------------------------------------------------------------------
# zipf — popularity-skewed object trains (temporal locality)
# ----------------------------------------------------------------------
def _zipf_factory(params: dict):
    alpha = _float_param(params, "zipf", "alpha", 1.1, minimum=0.0)
    objects = _int_param(params, "zipf", "objects", 100)
    train = _float_param(params, "zipf", "train", 8.0, minimum=1.0)
    burst = _float_param(params, "zipf", "burst", 4.0, minimum=1.0)
    _reject_unknown(params, "zipf")

    # Inverse-CDF table for the Zipf(alpha) popularity of object ranks.
    weights = [1.0 / (rank ** alpha) for rank in range(1, objects + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard float undershoot

    def draw_object(rng: random.Random) -> int:
        u = rng.random()
        lo, hi = 0, objects - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def generate(trace: LossTrace, rng: random.Random):
        src = trace.tree.source
        period = trace.period
        spacing = period / burst  # intra-train pace
        n = trace.n_packets
        seq = 0
        t = 0.0
        while seq < n:
            obj = draw_object(rng)
            # Geometric train length with the requested mean: trains of
            # packets for one hot object arrive back-to-back, then the
            # source idles so the long-run rate stays ~1/period.
            length = 1
            p_continue = 1.0 - 1.0 / train
            while seq + length < n and rng.random() < p_continue:
                length += 1
            for _ in range(length):
                yield SendEvent(t, src, seq, obj=obj)
                seq += 1
                t += spacing
            t += length * (period - spacing)

    return generate


# ----------------------------------------------------------------------
# flash_crowd — a mid-run surge
# ----------------------------------------------------------------------
def _flash_crowd_factory(params: dict):
    peak = _float_param(params, "flash_crowd", "peak", 10.0, minimum=1.0)
    ramp = _float_param(params, "flash_crowd", "ramp", 5.0, minimum=0.0)
    hold = _float_param(params, "flash_crowd", "hold", -1.0)
    start = _float_param(params, "flash_crowd", "start", -1.0)
    _reject_unknown(params, "flash_crowd")

    def generate(trace: LossTrace, rng: random.Random):
        src = trace.tree.source
        period = trace.period
        nominal = trace.n_packets * period
        surge_at = start if start >= 0 else 0.4 * nominal
        surge_hold = hold if hold >= 0 else ramp

        def factor(t: float) -> float:
            dt = t - surge_at
            if dt < 0 or dt > 2 * ramp + surge_hold:
                return 1.0
            if dt < ramp:
                return 1.0 + (peak - 1.0) * (dt / ramp if ramp > 0 else 1.0)
            if dt < ramp + surge_hold:
                return peak
            down = dt - ramp - surge_hold
            return peak - (peak - 1.0) * (down / ramp if ramp > 0 else 1.0)

        t = 0.0
        for seq in range(trace.n_packets):
            yield SendEvent(t, src, seq)
            t += period / factor(t)

    return generate


# ----------------------------------------------------------------------
# diurnal — sinusoidal load cycle
# ----------------------------------------------------------------------
def _diurnal_factory(params: dict):
    cycle = _float_param(params, "diurnal", "period", 60.0, minimum=1e-6)
    floor = _float_param(params, "diurnal", "min", 0.2, minimum=1e-6)
    phase = _float_param(params, "diurnal", "phase", 0.0)
    _reject_unknown(params, "diurnal")
    if floor > 1.0:
        raise WorkloadError(f"workload 'diurnal': min={floor!r} must be <= 1")

    def generate(trace: LossTrace, rng: random.Random):
        src = trace.tree.source
        period = trace.period
        t = 0.0
        for seq in range(trace.n_packets):
            yield SendEvent(t, src, seq)
            swing = 0.5 - 0.5 * math.cos(2 * math.pi * (t / cycle + phase))
            t += period / (floor + (1.0 - floor) * swing)

    return generate


# ----------------------------------------------------------------------
# multi_source — any-source SRM traffic
# ----------------------------------------------------------------------
def _multi_source_factory(params: dict):
    senders = _int_param(params, "multi_source", "senders", 2)
    _reject_unknown(params, "multi_source")

    def generate(trace: LossTrace, rng: random.Random):
        tree = trace.tree
        hosts = [tree.source, *tree.receivers]
        k = min(senders, len(hosts))
        pool = hosts[:k]
        counts = {host: 0 for host in pool}
        for i in range(trace.n_packets):
            sender = pool[i % k]
            yield SendEvent(i * trace.period, sender, counts[sender])
            counts[sender] += 1

    return generate


# ----------------------------------------------------------------------
# trace — pace with a named Yajnik trace
# ----------------------------------------------------------------------
def _trace_factory(params: dict):
    name = _consume(params, "name") or _consume(params, POSITIONAL)
    _reject_unknown(params, "trace")
    if not name:
        raise WorkloadError(
            "workload 'trace' needs the source trace name, e.g. trace:WRN951128"
        )
    from repro.traces.yajnik import trace_meta

    try:
        meta = trace_meta(name)
    except KeyError as exc:
        raise WorkloadError(str(exc)) from None

    def generate(trace: LossTrace, rng: random.Random):
        src = trace.tree.source
        for seq in range(trace.n_packets):
            yield SendEvent(seq * meta.period, src, seq)

    return generate


# ----------------------------------------------------------------------
# Registration (listing order = the grammar examples' order)
# ----------------------------------------------------------------------
register_workload(
    WorkloadSpec(
        name="cbr",
        factory=_cbr_factory,
        description="constant rate from the source (the implicit default)",
        params_doc={"rate": "1 — pace multiplier over 1/period"},
    )
)
register_workload(
    WorkloadSpec(
        name="poisson",
        factory=_poisson_factory,
        description="memoryless arrivals at a fixed mean rate",
        params_doc={"rate": "1/period — mean packets per second"},
    )
)
register_workload(
    WorkloadSpec(
        name="zipf",
        factory=_zipf_factory,
        description="Zipf-popular objects in back-to-back trains (locality)",
        params_doc={
            "alpha": "1.1 — Zipf skew exponent",
            "objects": "100 — distinct objects",
            "train": "8 — mean packets per object train",
            "burst": "4 — intra-train speedup over 1/period",
        },
        tags=("locality",),
    )
)
register_workload(
    WorkloadSpec(
        name="flash_crowd",
        factory=_flash_crowd_factory,
        description="rate surges to peak× mid-run, holds, ramps back",
        params_doc={
            "peak": "10x — surge rate multiplier",
            "ramp": "5s — ramp-up/-down duration",
            "hold": "=ramp — plateau duration",
            "start": "0.4·duration — surge start (seconds)",
        },
        tags=("bursty",),
    )
)
register_workload(
    WorkloadSpec(
        name="diurnal",
        factory=_diurnal_factory,
        description="sinusoidal rate cycle between min× and 1×",
        params_doc={
            "period": "60s — cycle length",
            "min": "0.2 — trough rate fraction",
            "phase": "0 — cycle phase offset (fraction)",
        },
    )
)
register_workload(
    WorkloadSpec(
        name="multi_source",
        factory=_multi_source_factory,
        description="round-robin any-source traffic from N hosts",
        params_doc={"senders": "2 — multicasting hosts (source + receivers)"},
        tags=("any-source",),
    )
)
register_workload(
    WorkloadSpec(
        name="trace",
        factory=_trace_factory,
        description="pace with the named Yajnik trace's packet period",
        params_doc={"name": "(required) — Table 1 trace, e.g. WRN951128"},
    )
)


__all__ = ["DEFAULT_WORKLOAD"]
