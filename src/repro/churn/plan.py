"""The ``churn:`` spec — a declarative membership-churn process.

One family, one grammar (shared with every other harness surface via
:mod:`repro.harness.specstr`)::

    churn:rate=0.5[,leave=0.5][,start=0][,until=30s][,floor=2]

``rate`` is the only required parameter: the intensity (events per
simulated second) of a Poisson process of membership events.  Each event
is a *leave* with probability ``leave`` (a live receiver fails and its
subtree edge is detached) and a *join* otherwise (a brand-new receiver
attaches under a seeded-chosen router and starts a protocol agent).
``start``/``until`` bound the active window (``until`` defaults to the
end of the run); ``floor`` is the minimum live membership — a leave that
would shrink the group below it is skipped (and counted).

Like fault plans and workloads, churn is part of a run's *identity*: it
folds into :class:`~repro.exec.jobs.RunJob` digests, and the empty spec
(``""``) means "no churn" and leaves every byte of a run unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.specstr import (
    canonical_spec,
    consume,
    float_param,
    int_param,
    parse_spec,
    reject_unknown,
)


class ChurnError(ValueError):
    """Raised for malformed or unsatisfiable ``churn:`` specs."""


#: The one registered family name.
CHURN_FAMILY = "churn"

#: Default parameter values (as spec-grammar strings, for listings).
CHURN_DEFAULTS = {
    "leave": "0.5",
    "start": "0",
    "until": "end",
    "floor": "2",
}


@dataclass(frozen=True)
class ChurnPlan:
    """A compiled, validated churn process.

    ``spec`` is the canonical spec string (the digest/identity form);
    ``until`` is ``None`` when the process runs to the end of the data
    transmission.
    """

    spec: str
    rate: float
    leave: float
    start: float
    until: float | None
    floor: int

    @property
    def empty(self) -> bool:
        return not self.spec

    def horizon(self, end_time: float) -> float:
        """The instant the process stops generating events."""
        return end_time if self.until is None else min(self.until, end_time)


#: The no-churn plan: what an empty spec compiles to.
EMPTY_PLAN = ChurnPlan(spec="", rate=0.0, leave=0.5, start=0.0, until=None, floor=2)


def compile_churn(spec: str) -> ChurnPlan:
    """Parse and validate a ``churn:`` spec (empty string -> no churn)."""
    if not spec or not spec.strip():
        return EMPTY_PLAN
    family, params = parse_spec(spec, label="churn", error=ChurnError)
    if family != CHURN_FAMILY:
        raise ChurnError(
            f"unknown churn family {family!r}; only {CHURN_FAMILY!r} exists"
        )
    where = f"churn {spec!r}"
    raw = dict(params)
    raw_rate = consume(raw, "rate")
    if raw_rate is None:
        raise ChurnError(f"{where}: missing required parameter 'rate'")
    rate = float_param({"rate": raw_rate}, where, "rate", 0.0, error=ChurnError)
    if rate <= 0.0:
        raise ChurnError(f"{where}: rate={rate!r} must be > 0")
    leave = float_param(raw, where, "leave", 0.5, minimum=0.0, error=ChurnError)
    if leave > 1.0:
        raise ChurnError(f"{where}: leave={leave!r} must be <= 1")
    start = float_param(raw, where, "start", 0.0, minimum=0.0, error=ChurnError)
    raw_until = consume(raw, "until")
    until: float | None = None
    if raw_until is not None and raw_until != "end":
        until = float_param(
            {"until": raw_until}, where, "until", 0.0, error=ChurnError
        )
        if until <= start:
            raise ChurnError(f"{where}: until={until!r} must be > start={start!r}")
    floor = int_param(raw, where, "floor", 2, minimum=1, error=ChurnError)
    reject_unknown(raw, where, error=ChurnError)
    return ChurnPlan(
        spec=canonical_spec(family, params),
        rate=rate,
        leave=leave,
        start=start,
        until=until,
        floor=floor,
    )


def validate_churn(spec: str) -> str:
    """Eager-validation helper for CLI flags, experiment contexts, and
    sweep grids: compile (raising :class:`ChurnError` on bad input) and
    return the spec unchanged so call sites keep the user's spelling."""
    compile_churn(spec)
    return spec


__all__ = [
    "CHURN_DEFAULTS",
    "CHURN_FAMILY",
    "ChurnError",
    "ChurnPlan",
    "EMPTY_PLAN",
    "compile_churn",
    "validate_churn",
]
