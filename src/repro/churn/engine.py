"""Execute a :class:`~repro.churn.plan.ChurnPlan` against one wired run.

Modeled on :class:`~repro.faults.inject.FaultInjector`: the whole event
schedule compiles onto the simulator's timer wheel at :meth:`install`
time from a dedicated ``churn:schedule`` RNG stream, so a plan's effects
are a pure function of (plan, seed, topology).  Fire-time draws (victim
and attachment-point selection, which depend on the membership at that
instant) come from a second ``churn:events`` stream; the event order is
itself deterministic, so the whole process is too.

A *leave* crashes the member's agent (it stops answering and recovering,
exactly like a :class:`~repro.faults.plan.NodeCrash`) and detaches its
tree edge in place via :meth:`~repro.net.network.Network.detach_subtree`
— the incremental :class:`~repro.net.index.TopologyIndex` patch, not a
rebuild.  A *join* grows the tree under a seeded-chosen router via
:meth:`~repro.net.network.Network.attach_receiver`, builds a fresh agent
through the runner's agent factory, and resynchronizes the joiner's
primary-stream high-water mark so pre-join history is not mistaken for
loss (a late joiner recovers forward, not backward — §3.3's dynamic
membership, made executable).
"""

from __future__ import annotations

from typing import Callable, MutableMapping

from repro.churn.plan import ChurnPlan
from repro.net.topology import NodeKind
from repro.obs.events import EventKind
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Joiners are named ``j1, j2, ...`` — a prefix no topology family uses.
JOIN_PREFIX = "j"


class ChurnEngine:
    """Executes one churn plan against one wired simulation."""

    def __init__(
        self,
        plan: ChurnPlan,
        sim: Simulator,
        network,
        registry: RngRegistry,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.network = network
        self.registry = registry
        self._agents: MutableMapping[str, object] = {}
        self._agent_factory: Callable[[str], object] | None = None
        self._source_agent = None
        self._routers: list[str] = []
        self._installed = False
        # -- counters (surfaced via stats() on churn runs) -------------
        self.scheduled = 0
        self.joins = 0
        self.leaves = 0
        self.skipped_floor = 0

    # ------------------------------------------------------------------
    # Plan compilation
    # ------------------------------------------------------------------
    def install(
        self,
        agents: MutableMapping[str, object],
        end_time: float,
        agent_factory: Callable[[str], object],
        source_agent,
    ) -> None:
        """Draw the Poisson event schedule and put it on the timer wheel.

        ``agents`` is the run's *live* host->agent mapping (not a copy):
        joiners are added to it so end-of-run finalization sees them.
        """
        if self._installed:
            raise RuntimeError("churn plan already installed")
        self._installed = True
        if self.plan.empty:
            return
        self._agents = agents
        self._agent_factory = agent_factory
        self._source_agent = source_agent
        tree = self.network.tree
        self._routers = [
            node for node in tree.nodes if tree.kind(node) is NodeKind.ROUTER
        ] or [tree.source]
        self._rng = self.registry.stream("churn:events")
        schedule_rng = self.registry.stream("churn:schedule")
        horizon = self.plan.horizon(end_time)
        t = self.plan.start
        while True:
            t += schedule_rng.expovariate(self.plan.rate)
            if t >= horizon:
                break
            is_leave = schedule_rng.random() < self.plan.leave
            self.scheduled += 1
            self.sim.schedule_at(t, self._fire, is_leave)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _fire(self, is_leave: bool) -> None:
        if is_leave:
            self._leave()
        else:
            self._join()

    def _leave(self) -> None:
        members = self.network.tree.current_receivers()
        if len(members) <= self.plan.floor:
            self.skipped_floor += 1
            return
        victim = members[self._rng.randrange(len(members))]
        self._agents[victim].fail()
        self.network.detach_subtree(victim)
        self.leaves += 1
        self._emit(EventKind.CHURN_LEAVE, node=victim)

    def _join(self) -> None:
        name = f"{JOIN_PREFIX}{self.joins + 1}"
        router = self._routers[self._rng.randrange(len(self._routers))]
        self.network.attach_receiver(name, router)
        agent = self._agent_factory(name)
        self._agents[name] = agent
        # Late-join resync: the joiner's high-water mark for the primary
        # stream starts at the source's own, so everything sent before it
        # joined reads as history, not loss.
        source = self._source_agent
        sent_up_to = source.source_state(source.host_id).stream.max_seq
        if sent_up_to >= 0:
            agent.source_state(source.host_id).stream.max_seq = sent_up_to
        agent.start(
            session_offset=self._rng.uniform(0.0, agent.session_period)
        )
        self.joins += 1
        self._emit(EventKind.CHURN_JOIN, node=name, router=router)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Churn counters for :class:`~repro.exec.summary.RunSummary`
        (attached only on churn runs, keeping churn-free bytes unchanged)."""
        return {
            "spec": self.plan.spec,
            "rate": self.plan.rate,
            "scheduled": self.scheduled,
            "joins": self.joins,
            "leaves": self.leaves,
            "skipped_floor": self.skipped_floor,
            "final_receivers": len(self.network.tree.current_receivers()),
        }

    def _emit(self, kind: str, **detail) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim.now, kind, **detail)


__all__ = ["ChurnEngine", "JOIN_PREFIX"]
