"""Membership churn as a first-class run axis (§3.3, §5).

The paper motivates CESRM's per-source caches with *dynamic* multicast
groups: members come and go mid-transmission.  This package makes that an
executable, seeded axis of every run — a ``churn:rate=...`` spec compiles
to a Poisson join/leave process that patches the live topology in place
(through the incremental :class:`~repro.net.index.TopologyIndex`
operations) while the protocol runs.

* :mod:`repro.churn.plan` — the spec grammar and compiled plan.
* :mod:`repro.churn.engine` — the runtime executor (FaultInjector-style).
"""

from repro.churn.engine import ChurnEngine, JOIN_PREFIX
from repro.churn.plan import (
    CHURN_DEFAULTS,
    CHURN_FAMILY,
    ChurnError,
    ChurnPlan,
    EMPTY_PLAN,
    compile_churn,
    validate_churn,
)

__all__ = [
    "CHURN_DEFAULTS",
    "CHURN_FAMILY",
    "ChurnEngine",
    "ChurnError",
    "ChurnPlan",
    "EMPTY_PLAN",
    "JOIN_PREFIX",
    "compile_churn",
    "validate_churn",
]
