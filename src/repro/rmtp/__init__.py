"""RMTP — Reliable Multicast Transport Protocol (simplified).

The third recovery architecture of the paper's landscape (§1 cites it as
[9]/[14]: Lin & Paul, INFOCOM '96; Paul et al., JSAC '97): a *sender/
designated-receiver driven*, ACK-based hierarchy, in contrast to SRM's
receiver-driven multicast NACKs and LMS/CESRM-router's router assistance.

Receivers are organized into **local regions**, each served by a
**designated receiver (DR)**: members periodically unicast *status
messages* (an ACK carrying their reception bitmap) to their DR, which
unicasts retransmissions of whatever they are missing; DRs send their own
status up to the sender.  Recovery is driven entirely by the periodic
status cycle — no loss-triggered requests, no suppression — so latency is
bounded below by the status period, duplicate repairs are structurally
impossible, and control traffic is steady unicast.

This simplified implementation keeps RMTP's recovery architecture (two-
level DR hierarchy, periodic window-status ACKs, DR-cached unicast
retransmission) and drops its flow/congestion control, which the paper's
comparison does not exercise.
"""

from repro.rmtp.fabric import RmtpFabric
from repro.rmtp.agent import RmtpAgent

__all__ = ["RmtpFabric", "RmtpAgent"]
