"""The (simplified) RMTP protocol agent.

Recovery is driven by the periodic status cycle:

* every ``status_period`` each receiver unicasts an :class:`ACK` status
  message to its status parent (its region's designated receiver, or the
  sender for DRs themselves), listing the sequence numbers it is missing
  (capped per message — the window);
* the status parent unicasts retransmissions (``REPL``) of every listed
  packet it holds, deduplicating repeats within a short hold window;
* a DR missing a packet simply lists it in its own upstream status — the
  sender repairs the DR, and the DR's next answer repairs the member.

There are no loss-triggered requests and no suppression: loss *detection*
(for latency accounting) reuses the SRM machinery, but the request timer
is never armed.  Latency is therefore bounded below by the status period,
and repairs are never duplicated — RMTP trades recovery speed for
tightly-controlled overhead, the opposite corner of the design space from
SRM's multicast storms and CESRM's cached immediacy.
"""

from __future__ import annotations

import random

from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import CONTROL_BYTES, PAYLOAD_BYTES, Packet, PacketKind
from repro.rmtp.fabric import RmtpFabric
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.srm.agent import SrmAgent
from repro.srm.constants import SrmParams
from repro.srm.state import ReplyState


class RmtpAgent(SrmAgent):
    """An RMTP endpoint: periodic status to a designated receiver."""

    protocol_name = "rmtp"

    #: Maximum missing sequence numbers listed per status message.
    STATUS_WINDOW = 64

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_id: str,
        source: str,
        params: SrmParams,
        rng: random.Random,
        metrics: MetricsCollector,
        fabric: RmtpFabric,
        status_period: float = 0.2,
        session_period: float = 1.0,
        detect_on_request: bool = True,
    ) -> None:
        super().__init__(
            sim=sim,
            network=network,
            host_id=host_id,
            source=source,
            params=params,
            rng=rng,
            metrics=metrics,
            session_period=session_period,
            detect_on_request=detect_on_request,
        )
        self.fabric = fabric
        self.status_period = status_period
        self.statuses_sent = 0
        self.repairs_sent = 0
        self._status_timer = PeriodicTimer(sim, status_period, self._send_status)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, session_offset: float = 0.0) -> None:
        super().start(session_offset)
        if self.host_id != self.primary_source:
            # stagger statuses the same way sessions are staggered
            self._status_timer.start(first_delay=session_offset + self.status_period)

    def stop(self) -> None:
        self._status_timer.stop()
        super().stop()

    def fail(self) -> None:
        self._status_timer.stop()
        super().fail()

    def restart(self) -> None:
        was_failed = self.failed
        super().restart()
        if was_failed and self.host_id != self.primary_source:
            self._status_timer.start()

    # ------------------------------------------------------------------
    # Loss detection without request scheduling
    # ------------------------------------------------------------------
    def _detect_loss(self, seq, initial_backoff=0, src=None):
        src = src or self.primary_source
        super()._detect_loss(seq, initial_backoff, src)
        state = self.source_state(src).request_states.get(seq)
        if state is not None:
            state.timer.cancel()  # recovery rides the status cycle instead

    # ------------------------------------------------------------------
    # Status cycle
    # ------------------------------------------------------------------
    def _send_status(self) -> None:
        parent = self.fabric.status_parent(self.host_id)
        if parent == self.host_id:
            return
        for src in self.known_sources():
            if src == self.host_id:
                continue
            state = self.source_state(src)
            missing = sorted(state.request_states)[: self.STATUS_WINDOW]
            if not missing:
                continue
            packet = Packet(
                kind=PacketKind.ACK,
                origin=self.host_id,
                source=src,
                seqno=missing[0],
                size_bytes=CONTROL_BYTES,
                requestor=self.host_id,
                requestor_dist=self._distance_to(src),
                payload={"missing": missing, "max": state.stream.max_seq},
            )
            self.metrics.on_send(self.host_id, packet)
            self.statuses_sent += 1
            self.net.unicast(parent, packet)

    def receive(self, packet: Packet) -> None:
        if not self.failed and packet.kind is PacketKind.ACK:
            self._on_status(packet)
            return
        super().receive(packet)

    def _on_status(self, packet: Packet) -> None:
        src = packet.source
        member = packet.requestor or packet.origin
        state = self.source_state(src)
        payload = packet.payload or {}
        self._advance_stream(src, payload.get("max", -1))
        for seq in payload.get("missing", ()):
            if not state.stream.has(seq):
                # we share the loss: our own next status will fetch it
                if (
                    src != self.host_id
                    and seq not in state.request_states
                ):
                    self._detect_loss(seq, src=src)
                continue
            reply_state = state.reply_states.get(seq)
            if reply_state is not None and reply_state.pending(self.sim.now):
                continue  # just repaired it (dedup window)
            repair = Packet(
                kind=PacketKind.REPL,
                origin=self.host_id,
                source=src,
                seqno=seq,
                size_bytes=PAYLOAD_BYTES,
                requestor=member,
                requestor_dist=packet.requestor_dist,
                replier=self.host_id,
                replier_dist=self.distances.get_or(
                    member, self.params.default_distance
                ),
            )
            self.metrics.on_send(self.host_id, repair)
            self.repairs_sent += 1
            self.net.unicast(member, repair)
            if reply_state is None:
                reply_state = ReplyState()
                state.reply_states[seq] = reply_state
            reply_state.replies_sent += 1
            # hold briefly: repeated statuses inside one round trip to the
            # member do not earn duplicate repairs
            reply_state.hold_until = self.sim.now + 2.0 * self.distances.get_or(
                member, self.params.default_distance
            )

    # ------------------------------------------------------------------
    # RMTP never multicasts requests; foreign RQSTs cannot occur.
    # ------------------------------------------------------------------
    def _on_request(self, packet: Packet) -> None:  # pragma: no cover
        raise AssertionError("RMTP never produces multicast repair requests")
