"""RMTP region planning: local regions and designated receivers.

RMTP groups receivers into local regions aligned with the network
topology.  Here each subtree hanging off the tree's first branching point
becomes a region; its **designated receiver (DR)** is the receiver closest
to the region's root router (ties broken lexicographically).  DRs answer
their region members' status messages and send their own status to the
sender; members of degenerate regions (a region whose only receiver is the
DR itself) report straight to the sender as well.
"""

from __future__ import annotations

from repro.net.topology import MulticastTree


class RmtpFabric:
    """Region and designated-receiver assignment for a multicast tree."""

    def __init__(self, tree: MulticastTree) -> None:
        self.tree = tree
        #: region root router -> designated receiver.
        self.designated: dict[str, str] = {}
        #: receiver -> the host its status messages go to (DR or sender).
        self.parent_of: dict[str, str] = {}

        regions = self._region_roots()
        for root in regions:
            members = sorted(tree.subtree_receivers(root))
            dr = min(members, key=lambda r: (tree.hop_distance(root, r), r))
            self.designated[root] = dr
            for member in members:
                self.parent_of[member] = dr if member != dr else tree.source
        # receivers outside every region (possible when the source's first
        # branching point is a receiver's parent) report to the sender
        for receiver in tree.receivers:
            self.parent_of.setdefault(receiver, tree.source)

    def _region_roots(self) -> list[str]:
        """The children of the tree's first branching node (following the
        chain down from the source until the tree fans out)."""
        node = self.tree.source
        while True:
            children = self.tree.children(node)
            if len(children) != 1:
                break
            node = children[0]
        return [child for child in self.tree.children(node)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def status_parent(self, receiver: str) -> str:
        """Where ``receiver`` sends its status messages."""
        return self.parent_of[receiver]

    def designated_receivers(self) -> set[str]:
        return set(self.designated.values())

    def region_members(self, dr: str) -> list[str]:
        """The receivers whose status parent is ``dr``."""
        return [r for r, parent in self.parent_of.items() if parent == dr]
