"""Declarative, seeded, fully deterministic fault plans.

A :class:`FaultPlan` is a typed list of fault events — link outages
(scheduled windows or seeded flapping), node crashes and restarts, tree
partitions, packet duplication, bounded reordering, and session-report
suppression — that the :class:`~repro.faults.inject.FaultInjector`
compiles onto a run's timer wheel and network layer.

Determinism contract
--------------------
A plan carries **no randomness of its own**: stochastic events (flapping,
duplication, reordering) name only rates/bounds, and every sample is
drawn from the run's :class:`~repro.sim.rng.RngRegistry` under a
``fault:``-prefixed stream name.  The same plan + the same run seed
therefore yields a byte-identical :class:`~repro.exec.summary.RunSummary`,
and a plan folds losslessly into the :class:`~repro.exec.jobs.RunJob`
digest (fault runs are cacheable).  An **empty** plan compiles to nothing
at all, so fault-free runs stay bit-identical to a build without the
fault layer.

Wire format
-----------
``FaultPlan.to_dict()`` is plain JSON data (``{"events": [{"type": ...,
...}, ...]}``); ``from_dict``/``load`` invert it.  See ``docs/faults.md``
for the schema and CLI usage (``cesrm run --faults plan.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Iterator


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one typed entry of a :class:`FaultPlan`."""

    #: Wire-format discriminator; each concrete event defines its own.
    type_name: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        data = {"type": self.type_name}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Take the (bidirectional) tree link ``u — v`` down at ``at``; bring
    it back ``duration`` seconds later (None = stays down forever)."""

    u: str
    v: str
    at: float
    duration: float | None = None

    type_name: ClassVar[str] = "link-down"

    def __post_init__(self) -> None:
        _require(self.at >= 0, "link-down: at must be non-negative")
        _require(
            self.duration is None or self.duration > 0,
            "link-down: duration must be positive when set",
        )


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """A flapping link: starting at ``start``, alternate sampled up/down
    windows (exponential with means ``mean_up`` / ``mean_down``) until
    ``end`` (None = end of run).  Samples come from the run registry's
    ``fault:flap:<u>-<v>`` stream, so the outage schedule is a pure
    function of the plan and the run seed."""

    u: str
    v: str
    mean_up: float
    mean_down: float
    start: float = 0.0
    end: float | None = None

    type_name: ClassVar[str] = "link-flap"

    def __post_init__(self) -> None:
        _require(self.mean_up > 0, "link-flap: mean_up must be positive")
        _require(self.mean_down > 0, "link-flap: mean_down must be positive")
        _require(self.start >= 0, "link-flap: start must be non-negative")
        _require(
            self.end is None or self.end > self.start,
            "link-flap: end must be after start",
        )


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Partition the subtree rooted at ``node`` from the rest of the tree
    (cut its uplink) at ``at``; heal after ``duration`` seconds."""

    node: str
    at: float
    duration: float | None = None

    type_name: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        _require(self.at >= 0, "partition: at must be non-negative")
        _require(
            self.duration is None or self.duration > 0,
            "partition: duration must be positive when set",
        )


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Crash the agent at ``host`` at ``at``: it stops sending, replying,
    and recovering, and silently drops everything delivered to it.  With
    ``restart_after`` set, the host comes back that many seconds later
    (keeping its pre-crash reception state, like a process restart from a
    warm buffer)."""

    host: str
    at: float
    restart_after: float | None = None

    type_name: ClassVar[str] = "node-crash"

    def __post_init__(self) -> None:
        _require(self.at >= 0, "node-crash: at must be non-negative")
        _require(
            self.restart_after is None or self.restart_after > 0,
            "node-crash: restart_after must be positive when set",
        )


@dataclass(frozen=True)
class PacketDuplicate(FaultEvent):
    """Duplicate packets on every directed hop with probability ``rate``
    inside ``[start, end)`` (end None = end of run).  ``kind`` restricts
    the rule to one :class:`~repro.net.packet.PacketKind` value (e.g.
    ``"data"``); None applies to every kind."""

    rate: float
    kind: str | None = None
    start: float = 0.0
    end: float | None = None

    type_name: ClassVar[str] = "packet-duplicate"

    def __post_init__(self) -> None:
        _require(0.0 < self.rate <= 1.0, "packet-duplicate: rate must be in (0, 1]")
        _require(self.start >= 0, "packet-duplicate: start must be non-negative")
        _require(
            self.end is None or self.end > self.start,
            "packet-duplicate: end must be after start",
        )


@dataclass(frozen=True)
class PacketReorder(FaultEvent):
    """Delay packets on every directed hop with probability ``rate`` by an
    extra uniform ``(0, max_delay]`` seconds inside ``[start, end)`` —
    bounded reordering (a delayed packet can fall behind at most
    ``max_delay`` worth of later traffic)."""

    rate: float
    max_delay: float
    kind: str | None = None
    start: float = 0.0
    end: float | None = None

    type_name: ClassVar[str] = "packet-reorder"

    def __post_init__(self) -> None:
        _require(0.0 < self.rate <= 1.0, "packet-reorder: rate must be in (0, 1]")
        _require(self.max_delay > 0, "packet-reorder: max_delay must be positive")
        _require(self.start >= 0, "packet-reorder: start must be non-negative")
        _require(
            self.end is None or self.end > self.start,
            "packet-reorder: end must be after start",
        )


@dataclass(frozen=True)
class SessionSuppress(FaultEvent):
    """Mute ``host``'s session reports from ``at`` for ``duration``
    seconds: the host keeps receiving and recovering, but its periodic
    session messages are swallowed — peers lose its sequence reports and
    distance echoes (the paper's secondary loss-detection channel)."""

    host: str
    at: float
    duration: float

    type_name: ClassVar[str] = "session-suppress"

    def __post_init__(self) -> None:
        _require(self.at >= 0, "session-suppress: at must be non-negative")
        _require(self.duration > 0, "session-suppress: duration must be positive")


#: Wire-format dispatch: type discriminator -> event class.
EVENT_TYPES: dict[str, type[FaultEvent]] = {
    cls.type_name: cls
    for cls in (
        LinkDown,
        LinkFlap,
        Partition,
        NodeCrash,
        PacketDuplicate,
        PacketReorder,
        SessionSuppress,
    )
}


def event_from_dict(data: dict[str, Any]) -> FaultEvent:
    """Decode one event from its wire form (``{"type": ..., ...}``)."""
    payload = dict(data)
    type_name = payload.pop("type", None)
    cls = EVENT_TYPES.get(type_name)
    if cls is None:
        raise ValueError(
            f"unknown fault event type {type_name!r}; "
            f"known: {sorted(EVENT_TYPES)}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"unknown fields {sorted(unknown)} for fault event {type_name!r}"
        )
    return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault events.

    The empty plan is the identity: it compiles to nothing and leaves the
    run byte-identical to one without a fault layer, and it serializes to
    nothing inside a :class:`~repro.exec.jobs.RunJob` (so fault-free job
    digests are unchanged).
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a fault event: {event!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def of_type(self, cls: type[FaultEvent]) -> list[FaultEvent]:
        return [e for e in self.events if isinstance(e, cls)]

    @property
    def crashes_hosts(self) -> bool:
        """True when the plan contains any node-crash event (agents then
        arm replier-failure cache eviction)."""
        return any(isinstance(e, NodeCrash) for e in self.events)

    def describe(self) -> str:
        """One human-readable line per event (the ``cesrm faults`` view)."""
        if self.empty:
            return "fault plan: empty (no faults injected)"
        lines = [f"fault plan: {len(self.events)} event(s)"]
        for event in self.events:
            detail = ", ".join(
                f"{f.name}={getattr(event, f.name)!r}"
                for f in fields(event)
                if getattr(event, f.name) is not None
            )
            lines.append(f"  {event.type_name:>18s}  {detail}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"events"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields {sorted(unknown)}")
        return cls(
            events=tuple(event_from_dict(row) for row in data.get("events", ()))
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def sample_plan() -> FaultPlan:
    """A small didactic plan (the ``cesrm faults --sample`` output): one
    uplink partition, one receiver crash with restart, a mild duplication
    storm, and one muted host.  Host names follow the synthesized-tree
    convention (``s``, routers ``x1..``, receivers ``r1..``), so the plan
    runs against any Yajnik trace."""
    return FaultPlan(
        events=(
            Partition(node="r1", at=6.0, duration=2.0),
            NodeCrash(host="r2", at=8.0, restart_after=10.0),
            PacketDuplicate(rate=0.01, start=4.0, end=12.0),
            SessionSuppress(host="r3", at=5.0, duration=3.0),
        )
    )


__all__ = [
    "FaultEvent",
    "FaultPlan",
    "LinkDown",
    "LinkFlap",
    "Partition",
    "NodeCrash",
    "PacketDuplicate",
    "PacketReorder",
    "SessionSuppress",
    "EVENT_TYPES",
    "event_from_dict",
    "sample_plan",
]
