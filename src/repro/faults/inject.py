"""Compile a :class:`~repro.faults.plan.FaultPlan` onto a wired run.

The :class:`FaultInjector` is the single authority for everything that can
go wrong on the wire.  It owns two mechanisms:

* **Scheduled events** — link outages, partitions, crashes/restarts, and
  session muting compile onto the run's timer wheel at
  :meth:`FaultInjector.install` time; each fires as an ordinary simulator
  event (and emits a ``fault.*`` trace event when the run is traced).
* **Hop rules** — per-hop packet interference.  The network consults
  :meth:`FaultInjector.on_hop` on every directed link crossing; rules are
  applied in installation order, the first *drop* wins, and duplicate /
  extra-delay effects accumulate.  Trace-driven data drops and the lossy
  recovery ablation are expressed as hop rules too (see
  :func:`trace_drop_rule` / :func:`recovery_loss_rule`), so plan-driven and
  trace-driven interference share one primitive instead of parallel code
  paths.

Determinism: every stochastic rule owns a named
:class:`~repro.sim.rng.RngRegistry` stream (``fault:...``), and the hop
sequence is itself deterministic, so a plan's effects are a pure function
of (plan, seed).  An empty plan installs nothing and adds no draws.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Mapping

from repro.faults.plan import (
    FaultPlan,
    LinkDown,
    LinkFlap,
    NodeCrash,
    Partition,
    PacketDuplicate,
    PacketReorder,
    SessionSuppress,
)
from repro.net.packet import Packet, PacketKind
from repro.net.topology import LinkId
from repro.obs.events import EventKind
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class HopEffect:
    """The merged outcome of every hop rule for one link crossing."""

    __slots__ = ("drop", "duplicate", "extra_delay")

    def __init__(
        self, drop: bool = False, duplicate: bool = False, extra_delay: float = 0.0
    ) -> None:
        self.drop = drop
        self.duplicate = duplicate
        self.extra_delay = extra_delay


#: Shared terminal effect: the packet dies on this hop.
DROP = HopEffect(drop=True)

#: A hop rule: ``(now, u, v, packet) -> HopEffect | None`` (None = no
#: opinion).  A returned effect with ``drop`` set is terminal; other
#: effects merge (duplicate ORs, extra delays add).
HopRule = Callable[[float, str, str, Packet], HopEffect | None]


def trace_drop_rule(link_combos: Mapping[int, frozenset[LinkId]]) -> HopRule:
    """The trace replay as a hop rule: data packet ``i`` dies on exactly
    the links of the trace's link representation (§4.3)."""
    empty: frozenset[LinkId] = frozenset()

    def rule(now: float, u: str, v: str, packet: Packet) -> HopEffect | None:
        if packet.kind is PacketKind.DATA and (u, v) in link_combos.get(
            packet.seqno, empty
        ):
            return DROP
        return None

    # Declares the rule a pure function of DATA packets only: the network's
    # hot path may skip consulting the injector for other kinds entirely.
    rule.data_only = True
    # Exposes the drop table itself: the vector kernel batches these
    # deterministic per-seqno drops as one array membership test instead
    # of a per-hop call (repro.net.vector).
    rule.link_combos = link_combos
    return rule


def recovery_loss_rule(
    link_rates: Mapping[LinkId, float], rng: random.Random
) -> HopRule:
    """The lossy-recovery ablation as a hop rule: recovery traffic (never
    data, never session messages) Bernoulli-drops at the per-link rates."""

    def rule(now: float, u: str, v: str, packet: Packet) -> HopEffect | None:
        kind = packet.kind
        if kind is PacketKind.DATA or kind is PacketKind.SESSION:
            return None
        rate = link_rates.get((u, v)) or link_rates.get((v, u)) or 0.0
        if rate > 0.0 and rng.random() < rate:
            return DROP
        return None

    return rule


class _WindowedRule:
    """Shared machinery for plan-driven stochastic hop rules: active only
    inside ``[start, end)`` and (optionally) for one packet kind, drawing
    from a dedicated ``fault:`` stream."""

    def __init__(
        self,
        rate: float,
        kind: str | None,
        start: float,
        end: float | None,
        rng: random.Random,
    ) -> None:
        self.rate = rate
        self.kind = kind
        self.start = start
        self.end = math.inf if end is None else end
        self.rng = rng

    def _hit(self, now: float, packet: Packet) -> bool:
        if now < self.start or now >= self.end:
            return False
        if self.kind is not None and packet.kind.value != self.kind:
            return False
        return self.rng.random() < self.rate


class _DuplicateRule(_WindowedRule):
    def __call__(self, now: float, u: str, v: str, packet: Packet) -> HopEffect | None:
        if self._hit(now, packet):
            return HopEffect(duplicate=True)
        return None


class _ReorderRule(_WindowedRule):
    def __init__(self, max_delay: float, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_delay = max_delay

    def __call__(self, now: float, u: str, v: str, packet: Packet) -> HopEffect | None:
        if self._hit(now, packet):
            return HopEffect(extra_delay=self.rng.uniform(0.0, self.max_delay))
        return None


class FaultInjector:
    """Executes a :class:`FaultPlan` against one wired simulation.

    Construction wires the injector to the engine and network (the network
    calls :meth:`on_hop` for every link crossing once assigned to
    ``network.faults``); :meth:`install` validates the plan against the
    topology and compiles its scheduled events onto the timer wheel.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: Simulator,
        network,
        registry: RngRegistry,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.network = network
        self.registry = registry
        self._hop_rules: list[HopRule] = []
        #: True while every installed hop rule is tagged ``data_only`` (a
        #: pure function of DATA packets): together with an empty ``_down``
        #: this lets the network skip :meth:`on_hop` for control traffic.
        self._rules_data_only = True
        #: directed link -> number of active outages covering it.
        self._down: dict[tuple[str, str], int] = {}
        self._agents: dict = {}
        self._crash_hook: Callable[[str], None] | None = None
        self._installed = False
        # -- counters (surfaced via stats() on fault runs) -------------
        self.link_outages = 0
        self.packets_blocked = 0
        self.crashes = 0
        self.restarts = 0
        self.packets_duplicated = 0
        self.packets_delayed = 0

    # ------------------------------------------------------------------
    # Hop rules
    # ------------------------------------------------------------------
    def add_hop_rule(self, rule: HopRule) -> None:
        """Append a hop rule (applied in installation order)."""
        self._hop_rules.append(rule)
        if not getattr(rule, "data_only", False):
            self._rules_data_only = False

    def on_hop(self, u: str, v: str, packet: Packet) -> HopEffect | None:
        """The network's per-crossing consultation point."""
        if self._down and self._down.get((u, v), 0) > 0:
            self.packets_blocked += 1
            return DROP
        merged: HopEffect | None = None
        now = self.sim._now
        for rule in self._hop_rules:
            effect = rule(now, u, v, packet)
            if effect is None:
                continue
            if effect.drop:
                return DROP
            if merged is None:
                merged = HopEffect()
            if effect.duplicate:
                merged.duplicate = True
                self.packets_duplicated += 1
                self._emit(EventKind.FAULT_DUPLICATE, packet=packet, link=f"{u}->{v}")
            if effect.extra_delay:
                merged.extra_delay += effect.extra_delay
                self.packets_delayed += 1
                self._emit(
                    EventKind.FAULT_REORDER,
                    packet=packet,
                    link=f"{u}->{v}",
                    delay=effect.extra_delay,
                )
        return merged

    # ------------------------------------------------------------------
    # Plan compilation
    # ------------------------------------------------------------------
    def install(
        self,
        agents: Mapping[str, object],
        end_time: float,
        on_host_crash: Callable[[str], None] | None = None,
    ) -> None:
        """Validate the plan against the wired world and schedule it.

        ``on_host_crash`` is the protocol's crash hook from its
        :class:`~repro.harness.registry.ProtocolSpec` (e.g. LMS records the
        crash against its router fabric for redesignation).
        """
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        self._agents = dict(agents)
        self._crash_hook = on_host_crash
        if self.plan.empty:
            return
        if self.plan.crashes_hosts:
            # Replier crashes make cached pairs go stale: arm the CESRM
            # eviction path so a failed expedited recovery forgets the pair.
            for agent in self._agents.values():
                if hasattr(agent, "evict_on_failure"):
                    agent.evict_on_failure = True
        for index, event in enumerate(self.plan):
            if isinstance(event, LinkDown):
                self._check_link(event.u, event.v)
                self._schedule_outage(
                    event.u, event.v, event.at, event.duration,
                    EventKind.FAULT_LINK_DOWN, EventKind.FAULT_LINK_UP,
                )
            elif isinstance(event, LinkFlap):
                self._check_link(event.u, event.v)
                self._schedule_flap(event, end_time)
            elif isinstance(event, Partition):
                parent = self.network.tree.parent(event.node)
                if parent is None:
                    raise ValueError(
                        f"partition: {event.node!r} is the root; it has no uplink"
                    )
                self._schedule_outage(
                    parent, event.node, event.at, event.duration,
                    EventKind.FAULT_PARTITION, EventKind.FAULT_HEAL,
                )
            elif isinstance(event, NodeCrash):
                self._check_host(event.host, "node-crash")
                self.sim.schedule_at(event.at, self._crash, event.host)
                if event.restart_after is not None:
                    self.sim.schedule_at(
                        event.at + event.restart_after, self._restart, event.host
                    )
            elif isinstance(event, SessionSuppress):
                self._check_host(event.host, "session-suppress")
                self.sim.schedule_at(event.at, self._mute, event.host)
                self.sim.schedule_at(
                    event.at + event.duration, self._unmute, event.host
                )
            elif isinstance(event, PacketDuplicate):
                self.add_hop_rule(
                    _DuplicateRule(
                        event.rate, event.kind, event.start, event.end,
                        self.registry.stream(f"fault:duplicate:{index}"),
                    )
                )
            elif isinstance(event, PacketReorder):
                self.add_hop_rule(
                    _ReorderRule(
                        event.max_delay,
                        event.rate, event.kind, event.start, event.end,
                        self.registry.stream(f"fault:reorder:{index}"),
                    )
                )
            else:  # pragma: no cover - exhaustive over plan event types
                raise TypeError(f"unhandled fault event {event!r}")

    def _check_link(self, u: str, v: str) -> None:
        tree = self.network.tree
        if tree.parent(v) != u and tree.parent(u) != v:
            raise ValueError(f"no tree link between {u!r} and {v!r}")

    def _check_host(self, host: str, what: str) -> None:
        if host not in self._agents:
            raise ValueError(f"{what}: no agent at host {host!r}")

    # ------------------------------------------------------------------
    # Scheduled-event handlers
    # ------------------------------------------------------------------
    def _schedule_outage(
        self,
        u: str,
        v: str,
        at: float,
        duration: float | None,
        down_kind: str,
        up_kind: str,
    ) -> None:
        self.sim.schedule_at(at, self._link_down, u, v, down_kind)
        if duration is not None:
            self.sim.schedule_at(at + duration, self._link_up, u, v, up_kind)

    def _schedule_flap(self, event: LinkFlap, end_time: float) -> None:
        rng = self.registry.stream(f"fault:flap:{event.u}-{event.v}")
        horizon = end_time if event.end is None else min(event.end, end_time)
        t = event.start
        while True:
            down_at = t + rng.expovariate(1.0 / event.mean_up)
            if down_at >= horizon:
                break
            up_at = down_at + rng.expovariate(1.0 / event.mean_down)
            self._schedule_outage(
                event.u, event.v, down_at, up_at - down_at,
                EventKind.FAULT_LINK_DOWN, EventKind.FAULT_LINK_UP,
            )
            t = up_at
            if t >= horizon:
                break

    def _link_down(self, u: str, v: str, kind: str) -> None:
        for pair in ((u, v), (v, u)):
            self._down[pair] = self._down.get(pair, 0) + 1
        self.link_outages += 1
        self._emit(kind, link=f"{u}-{v}")

    def _link_up(self, u: str, v: str, kind: str) -> None:
        for pair in ((u, v), (v, u)):
            count = self._down.get(pair, 0) - 1
            if count > 0:
                self._down[pair] = count
            else:
                self._down.pop(pair, None)
        self._emit(kind, link=f"{u}-{v}")

    def _crash(self, host: str) -> None:
        self._agents[host].fail()
        self.crashes += 1
        if self._crash_hook is not None:
            self._crash_hook(host)
        self._emit(EventKind.FAULT_CRASH, node=host)

    def _restart(self, host: str) -> None:
        self._agents[host].restart()
        self.restarts += 1
        self._emit(EventKind.FAULT_RESTART, node=host)

    def _mute(self, host: str) -> None:
        self._agents[host].session_muted = True
        self._emit(EventKind.FAULT_SESSION_MUTE, node=host)

    def _unmute(self, host: str) -> None:
        self._agents[host].session_muted = False
        self._emit(EventKind.FAULT_SESSION_UNMUTE, node=host)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_link_down(self, u: str, v: str) -> bool:
        return self._down.get((u, v), 0) > 0

    def is_host_down(self, host: str) -> bool:
        agent = self._agents.get(host)
        return bool(agent is not None and getattr(agent, "failed", False))

    def stats(self) -> dict:
        """Injection counters for :class:`~repro.exec.summary.RunSummary`
        (attached only on fault runs, keeping fault-free bytes unchanged)."""
        suppressed = sum(
            getattr(agent, "sessions_suppressed", 0)
            for agent in self._agents.values()
        )
        cache_evictions = sum(
            cache.evictions
            for agent in self._agents.values()
            for cache in getattr(agent, "caches", {}).values()
        )
        return {
            "plan_events": len(self.plan),
            "link_outages": self.link_outages,
            "packets_blocked": self.packets_blocked,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "packets_duplicated": self.packets_duplicated,
            "packets_delayed": self.packets_delayed,
            "sessions_suppressed": suppressed,
            "cache_evictions": cache_evictions,
        }

    def _emit(self, kind: str, packet: Packet | None = None, **detail) -> None:
        tracer = self.sim.tracer
        if tracer is None:
            return
        if packet is not None:
            tracer.emit(
                self.sim.now,
                kind,
                source=packet.source,
                seqno=packet.seqno,
                pkt=packet.kind.value,
                **detail,
            )
        else:
            tracer.emit(self.sim.now, kind, **detail)


__all__ = [
    "DROP",
    "FaultInjector",
    "HopEffect",
    "HopRule",
    "recovery_loss_rule",
    "trace_drop_rule",
]
