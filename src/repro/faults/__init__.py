"""Deterministic fault injection (link outages, crashes, packet chaos).

Public surface: :class:`FaultPlan` (declarative, JSON-round-trippable fault
schedules) and :class:`FaultInjector` (compiles a plan onto one wired run).
See ``docs/faults.md``.
"""

from repro.faults.inject import (
    DROP,
    FaultInjector,
    HopEffect,
    HopRule,
    recovery_loss_rule,
    trace_drop_rule,
)
from repro.faults.plan import (
    EVENT_TYPES,
    FaultEvent,
    FaultPlan,
    LinkDown,
    LinkFlap,
    NodeCrash,
    PacketDuplicate,
    PacketReorder,
    Partition,
    SessionSuppress,
    event_from_dict,
    sample_plan,
)
from repro.faults.spec import (
    FaultSpecError,
    compile_fault_plan,
    is_fault_spec,
    parse_fault_event,
)

__all__ = [
    "DROP",
    "EVENT_TYPES",
    "FaultSpecError",
    "compile_fault_plan",
    "is_fault_spec",
    "parse_fault_event",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HopEffect",
    "HopRule",
    "LinkDown",
    "LinkFlap",
    "NodeCrash",
    "PacketDuplicate",
    "PacketReorder",
    "Partition",
    "SessionSuppress",
    "event_from_dict",
    "recovery_loss_rule",
    "sample_plan",
    "trace_drop_rule",
]
