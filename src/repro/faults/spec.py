"""Fault-plan spec strings: declarative plans without a JSON file.

Fault plans have always been typed event lists (:mod:`repro.faults.plan`)
loaded from JSON.  This module gives them the same
``family:key=value,...`` spec grammar as workloads, topologies, and
cache policies — one event per spec, ``;``-joined into a plan::

    node-crash:host=r2,at=5s,restart_after=3s
    link-flap:u=s,v=r1,mean_up=2s,mean_down=500ms,start=1s
    node-crash:host=r2,at=5s;packet-duplicate:rate=0.05

Families are exactly the registered event ``type_name``\\ s; keys are
the event dataclass's fields, coerced by annotation (floats accept the
grammar's ``s``/``ms``/``x`` suffixes; everything else stays a string).
The CLI's ``--faults`` flag and the sweep grid's ``faults`` axis accept
these specs anywhere a plan path was accepted before.
"""

from __future__ import annotations

import dataclasses

from repro.faults.plan import EVENT_TYPES, FaultEvent, FaultPlan
from repro.harness import specstr


class FaultSpecError(ValueError):
    """Raised for malformed fault spec strings."""


def is_fault_spec(text: str) -> bool:
    """Heuristic used where a string may be a plan *path* or a spec:
    ``family:`` prefixes naming a registered event type are specs."""
    family = text.split(";", 1)[0].partition(":")[0].strip()
    return family in EVENT_TYPES


def parse_fault_event(spec: str) -> FaultEvent:
    """One ``family:key=value,...`` spec -> a validated fault event."""
    family, params = specstr.parse_spec(spec, label="fault", error=FaultSpecError)
    event_cls = EVENT_TYPES.get(family)
    if event_cls is None:
        raise FaultSpecError(
            f"unknown fault {family!r}; known: {tuple(sorted(EVENT_TYPES))}"
        )
    where = f"fault {family!r}"
    kwargs: dict[str, object] = {}
    fields = {f.name: f for f in dataclasses.fields(event_cls)}
    for key, raw in params.items():
        f = fields.get(key)
        if f is None or key == specstr.POSITIONAL:
            raise FaultSpecError(
                f"unknown parameter(s) {[key]} for {where}"
            )
        # Annotations are strings (PEP 563 in plan.py): float fields —
        # including `float | None` — take the suffix-aware number parser.
        if "float" in str(f.type):
            kwargs[key] = specstr.coerce_float(raw, where, key, FaultSpecError)
        else:
            kwargs[key] = raw
    try:
        return event_cls(**kwargs)
    except TypeError:
        missing = [
            f.name
            for f in dataclasses.fields(event_cls)
            if f.default is dataclasses.MISSING and f.name not in kwargs
        ]
        raise FaultSpecError(
            f"{where} is missing required parameter(s) {missing}"
        ) from None
    except ValueError as exc:
        # Event __post_init__ validation (negative times, bad rates, ...)
        raise FaultSpecError(f"{where}: {exc}") from None


def compile_fault_plan(spec: str) -> FaultPlan:
    """A ``;``-separated list of event specs -> a validated
    :class:`FaultPlan` (the single validation point for spec-string
    fault plans — the CLI and the sweep compiler both call this)."""
    if not spec.strip():
        raise FaultSpecError("empty fault spec")
    events = tuple(
        parse_fault_event(part) for part in spec.split(";") if part.strip()
    )
    return FaultPlan(events=events)


__all__ = [
    "FaultSpecError",
    "compile_fault_plan",
    "is_fault_spec",
    "parse_fault_event",
]
