"""The shared ``family:key=value,...`` spec-string grammar.

Four harness surfaces speak the same mini-language — workloads
(``zipf:alpha=1.1,objects=500``), generative topologies
(``tree:depth=3,fanout=2``), fault events (``node-crash:host=r2,at=5s``),
and cache policies (``ttl:capacity=16,ttl=30s``).  This module is the
single parser and the single set of typed coercions behind all of them::

    family[:key=value[,key=value...]]

A single bare token (no ``=``) is a positional value, stored under
:data:`POSITIONAL`.  Unit suffixes are uniform across surfaces: ``5s``
(seconds), ``40ms`` (milliseconds), ``20x`` (multiplier).

Every caller keeps its own error type (``WorkloadError``, ``CacheError``,
...) and noun ("workload", "cache policy") — pass them as ``error`` and
``label``/``where`` so messages stay domain-specific while the grammar
stays in one place.  The wording below is pinned by tests: it predates
this module (it was ``repro.workloads.registry.parse_spec``) and summary
digests and CLI output depend on canonical spec strings not changing.
"""

from __future__ import annotations

import math
from typing import Mapping, MutableMapping

#: The parameter key a bare (``key=``-less) token is stored under; a
#: family taking one positional value reads it from here.
POSITIONAL = ""


class SpecError(ValueError):
    """Default error for malformed spec strings; callers usually pass
    their own subclass of :class:`ValueError` via ``error=``."""


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def parse_spec(
    spec: str,
    *,
    label: str = "spec",
    error: type[Exception] = SpecError,
) -> tuple[str, dict[str, str]]:
    """``family:key=value,...`` -> ``(family, params)``.

    A single bare token (no ``=``) is allowed as a positional value and
    stored under :data:`POSITIONAL`; everything else must be
    ``key=value``.  ``label`` names the surface in error messages
    ("workload", "fault", "cache policy"); ``error`` is the exception
    class raised.
    """
    spec = spec.strip()
    if not spec:
        raise error(f"empty {label} spec")
    family, sep, rest = spec.partition(":")
    family = family.strip()
    if not family:
        raise error(f"{label} spec {spec!r} has no family name")
    if sep and not rest.strip():
        raise error(f"{label} spec {spec!r} has a trailing ':'")
    params: dict[str, str] = {}
    if rest.strip():
        for token in rest.split(","):
            token = token.strip()
            if not token:
                raise error(f"empty parameter in {label} spec {spec!r}")
            key, eq, value = token.partition("=")
            key, value = key.strip(), value.strip()
            if not eq:
                if POSITIONAL in params:
                    raise error(
                        f"{label} spec {spec!r} has more than one positional value"
                    )
                params[POSITIONAL] = key
                continue
            if not key or not value:
                raise error(
                    f"malformed parameter {token!r} in {label} spec {spec!r}"
                )
            if key in params:
                raise error(
                    f"duplicate parameter {key!r} in {label} spec {spec!r}"
                )
            params[key] = value
    return family, params


def canonical_spec(family: str, params: Mapping[str, str]) -> str:
    """The normalized spec string: family, then parameters sorted by key
    (a positional value sorts first, rendered bare)."""
    if not params:
        return family
    parts = []
    for key in sorted(params):
        value = params[key]
        parts.append(value if key == POSITIONAL else f"{key}={value}")
    return f"{family}:{','.join(parts)}"


# ----------------------------------------------------------------------
# Typed coercions
# ----------------------------------------------------------------------
def consume(
    params: MutableMapping[str, str], key: str, default: str | None = None
) -> str | None:
    """Pop ``key`` from the raw parameter mapping (so leftovers can be
    rejected as unknown afterwards)."""
    value = params.pop(key, None)
    return default if value is None else value


def reject_unknown(
    params: Mapping[str, str],
    where: str,
    error: type[Exception] = SpecError,
) -> None:
    """Raise on any parameter the family did not :func:`consume`.
    ``where`` reads like ``"workload 'zipf'"``."""
    if params:
        raise error(f"unknown parameter(s) {sorted(params)} for {where}")


def coerce_float(
    value: str, where: str, key: str, error: type[Exception] = SpecError
) -> float:
    """Parse a number, tolerating the grammar's unit suffixes: ``20x``
    (multiplier), ``5s`` (seconds), ``40ms`` (milliseconds)."""
    text = value.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        text, scale = text[:-2], 1e-3
    elif text.endswith(("x", "s")):
        text = text[:-1]
    try:
        out = scale * float(text)
    except ValueError:
        raise error(
            f"{where}: parameter {key}={value!r} is not a number"
        ) from None
    if not math.isfinite(out):
        raise error(f"{where}: {key}={value!r} is not finite")
    return out


def float_param(
    params: MutableMapping[str, str],
    where: str,
    key: str,
    default: float,
    minimum: float | None = None,
    error: type[Exception] = SpecError,
) -> float:
    raw = consume(params, key)
    out = default if raw is None else coerce_float(raw, where, key, error)
    if minimum is not None and out < minimum:
        raise error(f"{where}: {key}={out!r} must be >= {minimum}")
    return out


def coerce_int(
    value: str, where: str, key: str, error: type[Exception] = SpecError
) -> int:
    try:
        return int(value)
    except ValueError:
        raise error(
            f"{where}: parameter {key}={value!r} is not an integer"
        ) from None


def int_param(
    params: MutableMapping[str, str],
    where: str,
    key: str,
    default: int,
    minimum: int = 1,
    error: type[Exception] = SpecError,
) -> int:
    raw = consume(params, key)
    if raw is None:
        return default
    out = coerce_int(raw, where, key, error)
    if out < minimum:
        raise error(f"{where}: {key}={out} must be >= {minimum}")
    return out


__all__ = [
    "POSITIONAL",
    "SpecError",
    "canonical_spec",
    "coerce_float",
    "coerce_int",
    "consume",
    "float_param",
    "int_param",
    "parse_spec",
    "reject_unknown",
]
