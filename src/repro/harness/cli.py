"""The ``cesrm`` command-line interface.

Regenerate any of the paper's tables/figures, run the ablations, or run a
single protocol/trace pair:

.. code-block:: console

    $ cesrm table1
    $ cesrm figure1 --max-packets 5000 --jobs 4
    $ cesrm figure5 --full
    $ cesrm run --trace WRN951113 --protocol cesrm
    $ cesrm trace --trace WRN951113 --outcome expedited --limit 5
    $ cesrm trace --trace-out events.jsonl --profile
    $ cesrm run --trace WRN951113 --faults plan.json
    $ cesrm faults --sample --out plan.json
    $ cesrm faults --faults plan.json --protocol cesrm
    $ cesrm protocols
    $ cesrm workloads
    $ cesrm topologies
    $ cesrm caches
    $ cesrm run --workload zipf:alpha=1.1,objects=500
    $ cesrm run --cache lru:capacity=8 --workload flash_crowd:peak=20x
    $ cesrm run --faults 'link-down:u=r0,v=r1,at=2,duration=5'
    $ cesrm run --trace tree:depth=3,fanout=4 --workload flash_crowd:peak=20x
    $ cesrm run --trace transit_stub:transits=4,stubs=8,hosts=16 --churn churn:rate=0.5
    $ cesrm all --jobs 8
    $ cesrm cache
    $ cesrm cache --clear
    $ cesrm cache prune --older-than 7d --max-size 500M
    $ cesrm sweep run grid.toml --jobs 8
    $ cesrm sweep status
    $ cesrm sweep query --group-by protocol,workload --metric avg_latency_rtt
    $ cesrm sweep report --format markdown
    $ cesrm bench
    $ cesrm bench kernel obs

Sweeps (:mod:`repro.sweep`): ``cesrm sweep run grid.toml`` executes a
declarative parameter grid — protocols × traces × workloads × faults ×
seeds × config params — through the execution engine with chunked,
work-stealing, retrying fan-out, checkpointing every completed run in
the content-addressed cache (kill it, rerun, only missing jobs execute)
and flattening every result into a columnar sqlite store that ``sweep
query``/``report`` aggregate without re-reading per-run JSON.

Fault injection (:mod:`repro.faults`): ``--faults plan.json`` runs any
command's simulations under a declarative fault plan — link outages,
node crashes, partitions, duplication, reordering, session suppression —
drawn from dedicated seeded streams, so the same plan and seed reproduce
byte-identical results.  ``cesrm faults`` describes a plan and reports
the injected faults next to the recovery outcome; ``cesrm protocols``
lists every protocol in the pluggable registry
(:mod:`repro.harness.registry`).

Workloads (:mod:`repro.workloads`): ``--workload SPEC`` drives any
command's send schedule with a declarative workload instead of the
default source-paced replay — ``zipf:alpha=1.1,objects=500``,
``flash_crowd:peak=20x,ramp=5s``, ``multi_source:senders=4``, ... —
and ``--trace tree:depth=3,fanout=4`` runs over a generative topology
instead of a Yajnik receiver set.  ``cesrm workloads`` lists the
registered families and their parameters.  Workload and topology specs
fold into the run-cache digests, so every combination caches
independently; the default (no ``--workload``) stays byte-identical to
pre-workload builds.

Cache policies (:mod:`repro.core.cachelab`): ``--cache SPEC`` swaps
CESRM's recovery-pair cache for any registered policy —
``lru:capacity=16``, ``lfu:capacity=16``, ``ttl:capacity=16,ttl=30s``,
``prob:capacity=16,p=0.5``, ``unbounded`` — through the same
family:key=value grammar as workloads.  ``cesrm caches`` lists the
registered policies; per-policy statistics (inserts, evictions, hit
rate, per-source occupancy) land in the ``run`` output and sweep store.
The default (no ``--cache``) is the paper's seqno-ordered cache and
stays byte-identical to pre-cachelab builds.

The ``trace`` command (and ``run`` with ``--trace-out``/``--profile``)
attaches the :mod:`repro.obs` instrumentation: it records the run's full
event stream, folds it into one causal recovery timeline per lost packet
(labelled expedited vs SRM fall-back), and optionally writes the stream
to JSONL and profiles the engine's handlers.  Traced runs always simulate
fresh — the run cache stores summaries, not event streams.

Simulation runs go through :mod:`repro.exec`: cache misses fan out over
``--jobs`` worker processes and every completed run is stored in a
persistent content-addressed cache (``~/.cache/cesrm-repro``, or
``--cache-dir``/``$REPRO_CACHE_DIR``), so a rerun of any figure is
near-instant.  Cached, parallel, and serial runs produce byte-identical
reports; cache accounting goes to stderr so stdout stays comparable.
``--no-cache`` forces fresh simulation without touching the cache.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec.cache import RunCache, default_cache_dir
from repro.exec.jobs import source_fingerprint
from repro.harness import experiments as exp
from repro.harness import report
from repro.harness.registry import all_specs, available_protocols
from repro.metrics.stats import mean
from repro.traces.yajnik import YAJNIK_TRACES

COMMANDS = (
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "section34",
    "ablations",
    "router-assist",
    "analyze",
    "synth",
    "run",
    "timeline",
    "trace",
    "faults",
    "protocols",
    "workloads",
    "topologies",
    "caches",
    "cache",
    "sweep",
    "bench",
    "all",
)

#: Subcommands of ``cesrm sweep`` (the first ``names`` positional).
SWEEP_SUBCOMMANDS = ("run", "status", "query", "report")


def _trace_arg(value: str) -> str:
    """``--trace`` accepts a Yajnik trace name or a generative topology
    spec (``tree:depth=3,fanout=4``)."""
    from repro.workloads import WorkloadError, is_topology_spec, parse_topology_spec

    if value in {m.name for m in YAJNIK_TRACES}:
        return value
    if is_topology_spec(value):
        try:
            parse_topology_spec(value)
        except WorkloadError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        return value
    raise argparse.ArgumentTypeError(
        f"unknown trace {value!r}: expected a Yajnik name "
        f"({', '.join(m.name for m in YAJNIK_TRACES[:3])}, ...) or a "
        f"topology spec like tree:depth=3,fanout=4"
    )


def _workload_arg(value: str) -> str:
    """``--workload`` validates eagerly so typos fail at parse time."""
    from repro.workloads import WorkloadError, compile_workload

    if not value:
        return value
    try:
        compile_workload(value)
    except WorkloadError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _cache_policy_arg(value: str) -> str:
    """``--cache`` validates the policy spec eagerly, like ``--workload``."""
    from repro.core.cachelab import CacheError, compile_cache_policy

    if not value:
        return value
    try:
        compile_cache_policy(value)
    except CacheError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _churn_arg(value: str) -> str:
    """``--churn`` validates the membership-churn spec eagerly."""
    from repro.churn import ChurnError, compile_churn

    if not value:
        return value
    try:
        compile_churn(value)
    except ChurnError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cesrm",
        description="Reproduce the CESRM (DSN 2004) evaluation.",
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument(
        "names",
        nargs="*",
        metavar="ARG",
        help="with `bench`: suite names (benchmarks/bench_<name>.py) or `all`; "
        "with `sweep`: a subcommand (run|status|query|report) plus a spec "
        "file (run) or sweep selector (status/query/report); with `cache`: "
        "`prune` to garbage-collect",
    )
    parser.add_argument(
        "--max-packets",
        type=int,
        default=None,
        help="replay length per trace (default: %(default)s -> harness default)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="replay full-length traces (slow; overrides --max-packets)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--trace",
        default="WRN951113",
        type=_trace_arg,
        help="trace for the `run` command: a Yajnik name or a topology "
        "spec like tree:depth=3,fanout=4",
    )
    parser.add_argument(
        "--workload",
        default="",
        type=_workload_arg,
        metavar="SPEC",
        help="drive the send schedule with a repro.workloads spec, e.g. "
        "zipf:alpha=1.1,objects=500 (default: the source-paced schedule; "
        "`cesrm workloads` lists the families)",
    )
    parser.add_argument(
        "--protocol",
        default="cesrm",
        choices=available_protocols(),
        help="protocol for the `run` command",
    )
    parser.add_argument(
        "--kernel",
        default="python",
        choices=("python", "vector"),
        help="forwarding kernel: the pure-python reference path or the "
        "numpy batched delivery-wave kernel (`cesrm run --kernel vector`; "
        "both produce byte-identical results — see docs/performance.md)",
    )
    parser.add_argument(
        "--cache",
        default="",
        type=_cache_policy_arg,
        metavar="SPEC",
        help="recovery-cache policy spec for CESRM runs, e.g. "
        "lru:capacity=16 or ttl:capacity=16,ttl=30s (default: the paper's "
        "seqno-ordered cache; `cesrm caches` lists the policies)",
    )
    parser.add_argument(
        "--churn",
        default="",
        type=_churn_arg,
        metavar="SPEC",
        help="install a membership join/leave process over the run, e.g. "
        "churn:rate=0.5,leave=0.4 (default: static membership; see "
        "docs/topologies.md for the grammar)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="with `run`/`trace`/`timeline`/`faults`: execute this fault "
        "schedule — a FaultPlan JSON file, or an inline spec string like "
        "'link-down:u=r0,v=r1,at=2,duration=5;node-crash:host=r2,at=4'",
    )
    parser.add_argument(
        "--sample",
        action="store_true",
        help="with the `faults` command: use the built-in sample plan "
        "(or write it with --out)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output file for the `synth` command (default: <trace>.json)",
    )
    parser.add_argument(
        "--all-traces",
        action="store_true",
        help="run figures 1-4 over all 14 traces (default: the paper's 6)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run with the repro.spec invariant monitor attached",
    )
    parser.add_argument(
        "--receiver",
        default=None,
        help="receiver for the `timeline` command (default: worst-hit)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for uncached simulation runs (default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="run-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/cesrm-repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="simulate fresh without reading or writing the run cache",
    )
    parser.add_argument(
        "--clear",
        action="store_true",
        help="with the `cache` command: delete every stored run",
    )
    parser.add_argument(
        "--older-than",
        default=None,
        metavar="AGE",
        help="with `cache prune`: drop entries older than AGE (e.g. 7d, 12h, 30m)",
    )
    parser.add_argument(
        "--max-size",
        default=None,
        metavar="SIZE",
        help="with `cache prune`: drop oldest entries until the cache fits "
        "SIZE (e.g. 500M, 2G)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with `protocols`/`workloads`/`topologies`/`faults`/`caches`: "
        "machine-readable JSON listings (for tools generating or validating "
        "sweep specs)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="with the `sweep` command: sqlite result store "
        "(default: <cache-dir>/sweeps.sqlite)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="with `sweep run`: jobs per worker chunk (default: auto)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="with `sweep run`: extra attempts per job after a worker "
        "failure (default: %(default)s)",
    )
    parser.add_argument(
        "--where",
        action="append",
        default=None,
        metavar="COL=VALUE",
        help="with `sweep query`: filter rows (repeatable), e.g. "
        "--where protocol=cesrm --where seed=0",
    )
    parser.add_argument(
        "--group-by",
        default=None,
        metavar="COL[,COL...]",
        help="with `sweep query`: dimension columns to group by, e.g. "
        "protocol,workload",
    )
    parser.add_argument(
        "--metric",
        default=None,
        metavar="M[,M...]",
        help="with `sweep query`: metric columns to aggregate "
        "(default: avg_latency_rtt)",
    )
    parser.add_argument(
        "--agg",
        default="mean",
        choices=["mean", "sum", "min", "max", "count"],
        help="with `sweep query`: aggregate function (default: %(default)s)",
    )
    parser.add_argument(
        "--format",
        default="table",
        choices=["table", "csv", "markdown"],
        dest="fmt",
        help="with `sweep query`/`report`: output format (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="with `run`/`trace`: record the event stream to a JSONL file",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="with `run`/`trace`: profile the sim engine and print hot handlers",
    )
    parser.add_argument(
        "--host",
        default=None,
        help="with the `trace` command: only timelines of this host",
    )
    parser.add_argument(
        "--seq",
        type=int,
        default=None,
        help="with the `trace` command: only timelines of this sequence number",
    )
    parser.add_argument(
        "--outcome",
        default=None,
        choices=["expedited", "srm", "late-data", "unrecovered"],
        help="with the `trace` command: only timelines with this outcome",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="with the `trace` command: max timelines printed (default: %(default)s)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="PREFIX",
        help="with the `trace` command: also dump raw events whose kind "
        "matches this dotted prefix (e.g. `net.`, `erqst.`)",
    )
    return parser


def _cache(args: argparse.Namespace) -> RunCache | None:
    if args.no_cache:
        return None
    return RunCache(args.cache_dir or default_cache_dir())


def _fault_plan(args: argparse.Namespace):
    """The FaultPlan named on the command line (empty plan when absent).

    ``--faults`` accepts either a FaultPlan JSON file or an inline spec
    string (``link-down:u=r0,v=r1,at=2,duration=5;...``) — the same
    family:key=value grammar as workload and cache-policy specs.
    """
    from repro.faults import (
        FaultPlan,
        FaultSpecError,
        compile_fault_plan,
        is_fault_spec,
        sample_plan,
    )

    if getattr(args, "sample", False):
        return sample_plan()
    target = getattr(args, "faults", None)
    if target:
        if is_fault_spec(target):
            try:
                return compile_fault_plan(target)
            except FaultSpecError as exc:
                raise SystemExit(str(exc)) from None
        return FaultPlan.load(target)
    return FaultPlan()


def _context(args: argparse.Namespace) -> exp.ExperimentContext:
    if args.full:
        max_packets: int | None | str = None
    elif args.max_packets is not None:
        max_packets = args.max_packets
    else:
        max_packets = "default"
    progress = (
        (lambda msg: print(msg, file=sys.stderr)) if args.jobs > 1 else None
    )
    ctx = exp.ExperimentContext(
        seed=args.seed,
        max_packets=max_packets,
        jobs=args.jobs,
        cache=_cache(args),
        progress=progress,
        faults=_fault_plan(args),
        workload=getattr(args, "workload", ""),
        cache_policy=getattr(args, "cache", ""),
        churn=getattr(args, "churn", ""),
    )
    if getattr(args, "verify", False):
        ctx.config = ctx.config.with_(verify_period=0.05)
    if getattr(args, "kernel", "python") != "python":
        ctx.config = ctx.config.with_(kernel=args.kernel)
    return ctx


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "cache":
        print(_cache_command(args))
        return 0
    if args.command == "sweep":
        return _sweep_command(args)
    if args.command == "bench":
        return _bench_command(args)
    ctx = _context(args)
    out: list[str] = []

    from repro.traces.yajnik import FIGURE_TRACES

    figure_traces = (
        tuple(m.name for m in YAJNIK_TRACES) if args.all_traces else FIGURE_TRACES
    )
    if args.command in ("table1", "all"):
        out.append(report.render_table1(exp.table1(ctx)))
    if args.command in ("figure1", "all"):
        out.append(report.render_figure1(exp.figure1(ctx, traces=figure_traces)))
    if args.command in ("figure2", "all"):
        out.append(report.render_figure2(exp.figure2(ctx, traces=figure_traces)))
    if args.command in ("figure3", "all"):
        out.append(
            report.render_packet_counts(
                exp.figure3(ctx, traces=figure_traces), "Figure 3 (requests)"
            )
        )
    if args.command in ("figure4", "all"):
        out.append(
            report.render_packet_counts(
                exp.figure4(ctx, traces=figure_traces), "Figure 4 (replies)"
            )
        )
    if args.command in ("figure5", "all"):
        out.append(report.render_figure5(exp.figure5(ctx)))
    if args.command in ("section34", "all"):
        out.append(report.render_section_3_4(exp.section_3_4(ctx)))
    if args.command in ("ablations", "all"):
        out.append(report.render_ablation(exp.ablation_policy(ctx), "Ablation — selection policy"))
        out.append(
            report.render_ablation(
                exp.ablation_cache_capacity(ctx), "Ablation — cache capacity"
            )
        )
        out.append(
            report.render_ablation(
                exp.ablation_reorder_delay(ctx), "Ablation — REORDER-DELAY"
            )
        )
        out.append(
            report.render_ablation(
                exp.ablation_lossy_recovery(ctx), "Ablation — lossy recovery"
            )
        )
        out.append(
            report.render_ablation(exp.ablation_link_delay(ctx), "Ablation — link delay")
        )
    if args.command in ("router-assist", "all"):
        out.append(report.render_router_assist(exp.router_assist_comparison(ctx)))
    if args.command in ("analyze", "all"):
        out.append(_analyze(args, ctx))
    if args.command == "synth":
        out.append(_synth(args, ctx))
    if args.command == "run":
        out.append(_run_single(args, ctx))
    if args.command == "timeline":
        out.append(_timeline(args, ctx))
    if args.command == "trace":
        out.append(_trace_command(args, ctx))
    if args.command == "faults":
        out.append(_faults_command(args, ctx))
    if args.command == "protocols":
        out.append(_protocols_command(as_json=args.json))
    if args.command == "workloads":
        out.append(_workloads_command(as_json=args.json))
    if args.command == "topologies":
        out.append(_topologies_command(as_json=args.json))
    if args.command == "caches":
        out.append(_caches_command(as_json=args.json))

    print("\n\n".join(out))
    cache = ctx.engine.cache
    if cache is not None:
        print(
            f"[exec] cache: {cache.stats.describe()} — {cache.directory}",
            file=sys.stderr,
        )
    return 0


def _benchmarks_dir():
    """The repo's ``benchmarks/`` directory, located next to ``src/``
    (falls back to the working directory for non-src layouts)."""
    from pathlib import Path

    import repro

    root = Path(repro.__file__).resolve().parent.parent.parent
    bench_dir = root / "benchmarks"
    if not bench_dir.is_dir():
        bench_dir = Path.cwd() / "benchmarks"
    return bench_dir


def _bench_command(args: argparse.Namespace) -> int:
    """Run benchmark suites uniformly: ``cesrm bench kernel obs``.

    Every suite is a ``benchmarks/bench_<name>.py`` pytest file executed in
    a fresh interpreter from the repo root, so each writes its
    ``BENCH_*.json`` artefact exactly as a direct pytest invocation would —
    one entry point for CI and for humans instead of ad-hoc per-script
    command lines.  ``--max-packets``/``--full``/``--jobs`` are forwarded
    through the ``REPRO_*`` environment knobs the suites honour.
    """
    import os
    import subprocess
    import time
    from pathlib import Path

    import repro

    bench_dir = _benchmarks_dir()
    if not bench_dir.is_dir():
        print(f"no benchmarks directory found at {bench_dir}", file=sys.stderr)
        return 2
    available = sorted(p.stem[len("bench_") :] for p in bench_dir.glob("bench_*.py"))
    if not args.names:
        print("available benchmark suites (cesrm bench <name>... or `all`):")
        for name in available:
            print(f"  {name}")
        return 0
    names = available if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in available]
    if unknown:
        print(
            f"unknown benchmark suite(s): {', '.join(unknown)}\n"
            f"available: {', '.join(available)}",
            file=sys.stderr,
        )
        return 2

    root = bench_dir.parent
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    if args.max_packets is not None:
        env["REPRO_MAX_PACKETS"] = str(args.max_packets)
    if args.full:
        env["REPRO_FULL_TRACES"] = "1"
    if args.jobs > 1:
        env["REPRO_JOBS"] = str(args.jobs)

    failures = []
    for name in names:
        script = bench_dir / f"bench_{name}.py"
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(script.relative_to(root)), "-q"],
            cwd=root,
            env=env,
        )
        elapsed = time.perf_counter() - start
        if proc.returncode == 0:
            print(f"[bench] {name}: ok in {elapsed:.1f}s", file=sys.stderr)
        else:
            print(
                f"[bench] {name}: FAILED (exit {proc.returncode}) in {elapsed:.1f}s",
                file=sys.stderr,
            )
            failures.append(name)
    artefacts = sorted(p.name for p in root.glob("BENCH_*.json"))
    if artefacts:
        print(f"[bench] artefacts at {root}: {', '.join(artefacts)}", file=sys.stderr)
    if failures:
        print(f"[bench] failed suites: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cache_command(args: argparse.Namespace) -> str:
    """Inspect (default), clear (``--clear``), or garbage-collect
    (``cesrm cache prune --older-than 7d --max-size 500M``) the
    persistent run cache."""
    from repro.exec.cache import parse_age, parse_size

    cache = RunCache(args.cache_dir or default_cache_dir())
    if args.clear:
        removed = cache.clear()
        return f"run cache {cache.directory}: cleared {removed} entries"
    if args.names and args.names[0] == "prune":
        if args.older_than is None and args.max_size is None:
            raise SystemExit(
                "cesrm cache prune needs --older-than AGE and/or --max-size SIZE"
            )
        try:
            older_than = parse_age(args.older_than) if args.older_than else None
            max_size = parse_size(args.max_size) if args.max_size else None
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        stats = cache.prune(older_than=older_than, max_size=max_size)
        return f"run cache {cache.directory}: {stats.describe()}"
    if args.names:
        raise SystemExit(
            f"unknown cache subcommand {args.names[0]!r} (known: prune)"
        )
    entries = cache.entries()
    fingerprint = source_fingerprint()
    fresh = sum(1 for e in entries if e.fingerprint == fingerprint)
    lines = [
        f"run cache {cache.directory}",
        f"  entries: {len(entries)} ({fresh} current, "
        f"{len(entries) - fresh} stale), {cache.size_bytes()} bytes",
        f"  source fingerprint: {fingerprint[:16]}…",
    ]
    for entry in entries:
        marker = "ok " if entry.fingerprint == fingerprint else "old"
        cap = "full" if entry.max_packets is None else entry.max_packets
        workload = f" workload={entry.workload}" if entry.workload else ""
        policy = f" cache={entry.cache}" if entry.cache else ""
        churn = f" churn={entry.churn}" if entry.churn else ""
        lines.append(
            f"  [{marker}] {entry.protocol:>12} {entry.trace:<10} "
            f"seed={entry.seed} cap={cap}{workload}{policy}{churn} "
            f"({entry.size_bytes} B)"
        )
    return "\n".join(lines)


def _analyze(args: argparse.Namespace, ctx: exp.ExperimentContext) -> str:
    """Render the [10]-style loss-locality analysis for every trace."""
    from repro.harness.report import render_table
    from repro.traces.analysis import analyze_trace

    rows = []
    for meta in YAJNIK_TRACES:
        analysis = analyze_trace(ctx.trace(meta.name))
        rows.append(
            (
                meta.name,
                f"{analysis.mean_burst_length:.2f}",
                f"{analysis.mean_locality_gain:.1f}x",
                f"{100 * analysis.concentration.top_fraction(3):.0f}%",
                f"{100 * analysis.policies.most_recent_accuracy:.0f}%",
                f"{100 * analysis.policies.most_frequent_accuracy:.0f}%",
            )
        )
    return "Loss-locality analysis ([10])\n" + render_table(
        ["Trace", "MeanBurst", "CondGain", "Top3Links", "RecentAcc", "FreqAcc"],
        rows,
    )


def _synth(args: argparse.Namespace, ctx: exp.ExperimentContext) -> str:
    """Synthesize one trace and write it to a JSON file."""
    from repro.traces.io import save_trace

    synthetic = ctx.trace(args.trace)
    path = args.out or f"{args.trace.lower()}.json"
    save_trace(synthetic.trace, path)
    return (
        f"wrote {path}: {synthetic.trace.n_packets} packets, "
        f"{synthetic.trace.total_losses} losses, "
        f"{len(synthetic.trace.tree.receivers)} receivers"
    )


def _timeline(args: argparse.Namespace, ctx: exp.ExperimentContext) -> str:
    """Render one receiver's per-packet recovery timeline."""
    from repro.harness.report import render_recovery_timeline

    result = ctx.run(args.trace, args.protocol)
    receiver = args.receiver
    if receiver is None:
        receiver = max(
            result.receivers,
            key=lambda r: len(result.metrics.recoveries.get(r, [])),
        )
    return render_recovery_timeline(result, receiver, max_rows=30)


def _traced_run(args: argparse.Namespace, ctx: exp.ExperimentContext):
    """Run one trace/protocol pair with obs hooks attached.

    Traced runs bypass the run cache deliberately: the cache stores only
    ``RunSummary`` reductions, and the point of tracing is the full event
    stream of a *fresh* execution.

    Returns ``(result, ring, profiler)``; ``ring`` holds the in-memory
    event stream, and a JSONL copy lands at ``--trace-out`` when given.
    """
    from repro.harness.runner import run_trace as _run_trace
    from repro.obs import JsonlFileSink, RingBufferSink, SimProfiler, Tracer

    ring = RingBufferSink()
    sinks = [ring]
    if args.trace_out:
        sinks.append(JsonlFileSink(args.trace_out))
    tracer = Tracer(*sinks)
    profiler = SimProfiler() if args.profile else None
    result = _run_trace(
        ctx.trace(args.trace), args.protocol, ctx.config,
        tracer=tracer, profiler=profiler, faults=ctx.faults,
        workload=ctx.workload or None, churn=ctx.churn,
    )
    return result, ring, profiler


def _trace_command(args: argparse.Namespace, ctx: exp.ExperimentContext) -> str:
    """Record a traced run and pretty-print per-loss recovery timelines."""
    from repro.obs import RecoveryTimeline

    result, ring, profiler = _traced_run(args, ctx)
    timeline = RecoveryTimeline.from_events(ring.events)
    stories = timeline.stories
    if args.host is not None:
        stories = [s for s in stories if s.host == args.host]
    if args.seq is not None:
        stories = [s for s in stories if s.seqno == args.seq]
    if args.outcome is not None:
        stories = [s for s in stories if s.outcome == args.outcome]

    counts = timeline.outcome_counts()
    lines = [
        f"{args.protocol} on {args.trace}: {ring.emitted} events, "
        f"{len(timeline.stories)} losses "
        f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})",
    ]
    if args.trace_out:
        lines.append(f"  event stream written to {args.trace_out}")
    shown = stories[: args.limit] if args.limit >= 0 else stories
    for story in shown:
        lines.append("")
        lines.append(story.describe())
    if len(shown) < len(stories):
        lines.append("")
        lines.append(
            f"  ... {len(stories) - len(shown)} more timelines "
            f"(raise --limit to see them)"
        )
    if args.events is not None:
        matching = [e for e in ring.events if e.kind.startswith(args.events)]
        lines.append("")
        lines.append(f"events matching {args.events!r}: {len(matching)}")
        lines.extend(f"  {e.describe()}" for e in matching[: max(args.limit, 0) * 10])
    if profiler is not None:
        lines.append("")
        lines.append(profiler.describe())
    return "\n".join(lines)


def _faults_command(args: argparse.Namespace, ctx: exp.ExperimentContext) -> str:
    """Describe a fault plan and run it (``--out`` just writes the plan).

    ``cesrm faults --sample --out plan.json`` writes the built-in sample
    plan; ``cesrm faults --faults plan.json`` (or ``--sample``) runs the
    configured trace/protocol under the plan and reports the injected
    faults next to the recovery outcome.
    """
    if args.json:
        from dataclasses import fields as dc_fields

        from repro.faults.plan import EVENT_TYPES

        payload = {
            "events": [
                {
                    "type": name,
                    "fields": [
                        f.name for f in dc_fields(cls) if f.name != "type_name"
                    ],
                }
                for name, cls in sorted(EVENT_TYPES.items())
            ]
        }
        if not ctx.faults.empty:
            payload["plan"] = ctx.faults.to_dict()
        return _listing_json(payload)
    plan = ctx.faults
    if plan.empty:
        return (
            "no fault plan given — pass --faults plan.json or --sample\n"
            "(--sample --out plan.json writes the sample plan to disk)"
        )
    if args.out:
        plan.save(args.out)
        return f"wrote {args.out}:\n{plan.describe()}"
    result = ctx.run(args.trace, args.protocol)
    stats = result.faults or {}
    lines = [
        plan.describe(),
        "",
        f"{args.protocol} on {args.trace} under the plan:",
        f"  recovered {result.recovered_losses}, "
        f"unrecovered {result.unrecovered_losses} "
        f"(of {result.total_losses} trace losses)",
        "  injected: "
        + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())),
    ]
    if args.protocol not in ("srm", "srm-adaptive"):
        lines.append(
            f"  expedited: requests={result.metrics.expedited_requests_sent}, "
            f"success={100 * result.metrics.expedited_success_rate:.0f}%"
        )
    return "\n".join(lines)


def _listing_json(payload) -> str:
    """The one JSON rendering behind every ``cesrm <registry> --json``
    listing (protocols/workloads/faults/caches), so tools see a uniform
    serialization (stable key order, two-space indent)."""
    import json

    return json.dumps(payload, indent=2, sort_keys=True)


def _spec_lines(specs, *, width: int, extras=None, params: bool = False):
    """Uniform text rows for a registry listing: one right-aligned name +
    description per spec, tag suffixes, and (``params=True``) indented
    parameter docs underneath."""
    lines = []
    for spec in specs:
        tags = list(extras(spec)) if extras is not None else list(spec.tags)
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        lines.append(f"  {spec.name:>{width}s}  {spec.description}{suffix}")
        if params:
            for key, doc in spec.params_doc.items():
                lines.append(f"  {'':>{width}s}    {key}: {doc}")
    return lines


def _protocols_command(as_json: bool = False) -> str:
    """List every protocol the registry knows (``--json`` for tools)."""
    if as_json:
        return _listing_json(
            {
                "protocols": [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "tags": list(spec.tags),
                        "fabric": spec.fabric_factory is not None,
                    }
                    for spec in all_specs()
                ]
            }
        )

    def extras(spec):
        return (["fabric"] if spec.fabric_factory is not None else []) + list(
            spec.tags
        )

    return "\n".join(
        ["registered protocols:"]
        + _spec_lines(all_specs(), width=12, extras=extras)
    )


def _workloads_command(as_json: bool = False) -> str:
    """List every workload family the registry knows, with parameters."""
    from repro.net.families import all_topology_specs
    from repro.workloads import all_workload_specs

    if as_json:
        return _listing_json(
            {
                "workloads": [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "params": dict(spec.params_doc),
                        "tags": list(spec.tags),
                    }
                    for spec in all_workload_specs()
                ],
                "topologies": [
                    {
                        "name": spec.name,
                        "params": dict(spec.params_doc),
                    }
                    for spec in all_topology_specs()
                ],
            }
        )
    lines = ["registered workloads (cesrm run --workload <family>[:k=v,...]):"]
    lines.extend(_spec_lines(all_workload_specs(), width=14, params=True))
    lines.append("")
    lines.append(
        "topology specs (the --trace slot): tree:depth=D,fanout=F, "
        + ", ".join(
            f"{spec.name}:..." for spec in all_topology_specs()
            if spec.name != "tree"
        )
        + " — `cesrm topologies` lists parameters"
    )
    return "\n".join(lines)


def _topologies_command(as_json: bool = False) -> str:
    """List every generative topology family the registry knows.

    These specs ride the ``--trace`` slot (``cesrm run --trace
    transit_stub:transits=4,stubs=8,hosts=16``) and fold into run-cache
    digests like workload specs.  See docs/topologies.md for the grammar,
    the ``--churn`` membership axis, and the scale methodology.
    """
    from repro.churn import CHURN_DEFAULTS, CHURN_FAMILY
    from repro.net.families import all_topology_specs

    if as_json:
        return _listing_json(
            {
                "topologies": [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "params": dict(spec.params_doc),
                        "tags": list(spec.tags),
                        "calibrated": spec.calibrated,
                    }
                    for spec in all_topology_specs()
                ],
                "churn": {
                    "name": CHURN_FAMILY,
                    "params": {
                        "rate": "mean join/leave events per second (required)",
                        **{k: f"default {v}" for k, v in CHURN_DEFAULTS.items()},
                    },
                },
            }
        )

    lines = ["registered topology families (cesrm run --trace <family>[:k=v,...]):"]
    lines.extend(_spec_lines(all_topology_specs(), width=12, params=True))
    lines.append("")
    lines.append(
        "membership churn (any topology): --churn churn:rate=R"
        "[,leave=0.5,start=0,until=end,floor=2] — see docs/topologies.md"
    )
    return "\n".join(lines)


def _caches_command(as_json: bool = False) -> str:
    """List every recovery-cache policy the cachelab registry knows."""
    from repro.core.cachelab import all_cache_policy_specs

    if as_json:
        return _listing_json(
            {
                "caches": [
                    {
                        "name": spec.name,
                        "description": spec.description,
                        "params": dict(spec.params_doc),
                        "tags": list(spec.tags),
                    }
                    for spec in all_cache_policy_specs()
                ]
            }
        )
    lines = ["registered cache policies (cesrm run --cache <family>[:k=v,...]):"]
    lines.extend(_spec_lines(all_cache_policy_specs(), width=10, params=True))
    lines.append("")
    lines.append(
        "the default (no --cache) is the paper's seqno-ordered cache at "
        "capacity 16; explicit specs fold into run-cache digests"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The sweep command
# ----------------------------------------------------------------------
def _sweep_store(args: argparse.Namespace):
    from repro.sweep import SweepStore, default_store_path

    path = args.store or default_store_path(args.cache_dir or default_cache_dir())
    return SweepStore(path)


def _sweep_where(args: argparse.Namespace) -> dict[str, str]:
    where = {}
    for token in args.where or ():
        key, eq, value = token.partition("=")
        if not eq or not key:
            raise SystemExit(f"--where expects COL=VALUE, got {token!r}")
        where[key.strip()] = value.strip()
    return where


def _sweep_command(args: argparse.Namespace) -> int:
    """``cesrm sweep run|status|query|report`` — see docs/sweeps.md."""
    from repro.exec.pool import ExecutionEngine
    from repro.sweep import (
        SweepError,
        SweepStoreError,
        load_sweep,
        render_rows,
        render_sweep_report,
        run_sweep,
    )

    if not args.names or args.names[0] not in SWEEP_SUBCOMMANDS:
        print(
            "usage: cesrm sweep run SPEC.toml [--jobs N] [--retries R] |\n"
            "       cesrm sweep status [SELECTOR] |\n"
            "       cesrm sweep query [SELECTOR] --group-by ... --metric ... |\n"
            "       cesrm sweep report [SELECTOR] [--format markdown]",
            file=sys.stderr,
        )
        return 2
    sub = args.names[0]
    target = args.names[1] if len(args.names) > 1 else None

    if sub == "run":
        if target is None:
            print("cesrm sweep run needs a spec file (TOML or JSON)", file=sys.stderr)
            return 2
        try:
            spec = load_sweep(target)
        except SweepError as exc:
            print(f"bad sweep spec: {exc}", file=sys.stderr)
            return 2
        engine = ExecutionEngine(
            jobs=args.jobs,
            cache=_cache(args),
            progress=lambda msg: print(msg, file=sys.stderr),
        )
        with _sweep_store(args) as store:
            report_ = run_sweep(
                spec,
                engine=engine,
                store=store,
                chunk_size=args.chunk_size,
                retries=args.retries,
                progress=lambda msg: print(msg, file=sys.stderr),
            )
            print(report_.describe())
            print(f"  store {store.path}")
        if engine.cache is not None:
            print(
                f"[exec] cache: {engine.cache.stats.describe()} — "
                f"{engine.cache.directory}",
                file=sys.stderr,
            )
        return 1 if report_.failed else 0

    with _sweep_store(args) as store:
        try:
            if sub == "status":
                return _sweep_status(store, target)
            digest = _resolve_sweep_target(store, target)
            if sub == "query":
                metrics = (args.metric or "avg_latency_rtt").split(",")
                group_by = [g for g in (args.group_by or "").split(",") if g]
                headers, rows = store.query(
                    digest,
                    where=_sweep_where(args),
                    group_by=group_by,
                    metrics=[m.strip() for m in metrics],
                    agg=args.agg,
                )
                print(render_rows(headers, rows, args.fmt))
                return 0
            # report
            print(render_sweep_report(store, digest, args.fmt))
            return 0
        except SweepStoreError as exc:
            print(str(exc), file=sys.stderr)
            return 2


def _resolve_sweep_target(store, target: str | None) -> str:
    """A query/report selector may also be a spec file: compile it and use
    its digest, so `cesrm sweep query grid.toml` just works."""
    from pathlib import Path

    from repro.sweep import SweepError, load_sweep

    if target and (
        target.endswith((".toml", ".json")) or Path(target).is_file()
    ):
        try:
            return load_sweep(target).digest()
        except SweepError as exc:
            raise SystemExit(f"bad sweep spec {target!r}: {exc}") from None
    return store.resolve(target)


def _sweep_status(store, target: str | None) -> int:
    import time as _time

    sweeps = store.sweeps()
    if target:
        digest = _resolve_sweep_target(store, target)
        sweeps = [s for s in sweeps if s["digest"] == digest]
    if not sweeps:
        print(f"no sweeps recorded in {store.path}")
        return 0
    print(f"sweep store {store.path}:")
    for entry in sweeps:
        counts = store.counts(entry["digest"])
        state = "done" if counts["ok"] >= entry["n_jobs"] else "partial"
        if counts["failed"]:
            state += f", {counts['failed']} failed"
        updated = _time.strftime(
            "%Y-%m-%d %H:%M:%S", _time.localtime(entry["updated_at"])
        )
        print(
            f"  {entry['digest'][:12]}  {entry['name']:<24} "
            f"{counts['ok']}/{entry['n_jobs']} ok ({state})  "
            f"updated {updated}"
        )
        if entry["description"]:
            print(f"    {entry['description']}")
    return 0


def _run_single(args: argparse.Namespace, ctx: exp.ExperimentContext) -> str:
    traced = bool(args.trace_out or args.profile)
    if traced:
        result, _, profiler = _traced_run(args, ctx)
    else:
        result = ctx.run(args.trace, args.protocol)
    lat = mean([result.avg_normalized_recovery_time(r) for r in result.receivers])
    lines = [
        f"{args.protocol} on {args.trace}: {result.n_packets} packets, "
        f"{result.total_losses} losses",
        f"  recovered {result.recovered_losses}, unrecovered {result.unrecovered_losses}",
        f"  avg normalized recovery time {lat:.2f} RTT",
        f"  overhead: retx={result.overhead.retransmissions} units, "
        f"mcast-ctl={result.overhead.multicast_control}, "
        f"ucast-ctl={result.overhead.unicast_control}",
        f"  events={result.events_processed}, wall={result.wall_time:.2f}s",
    ]
    if args.protocol != "srm":
        lines.append(
            f"  expedited: requests={result.metrics.expedited_requests_sent}, "
            f"replies={result.metrics.expedited_replies_sent}, "
            f"success={100 * result.metrics.expedited_success_rate:.0f}%"
        )
    if result.workload is not None:
        w = result.workload
        line = (
            f"  workload {w['spec']}: {w['events']} events from "
            f"{len(w['senders'])} sender(s), "
            f"{w['offered_load_pps']:.1f} pkt/s offered, "
            f"expedited fraction {100 * w['expedited_fraction']:.0f}%"
        )
        if "latency_p50" in w:
            line += (
                f", recovery p50/p90/p99 = {w['latency_p50'] * 1000:.0f}/"
                f"{w['latency_p90'] * 1000:.0f}/{w['latency_p99'] * 1000:.0f} ms"
            )
        lines.append(line)
    if result.cache is not None:
        c = result.cache
        lines.append(
            f"  cache {c['spec']}: {c['inserts']} inserts "
            f"({c['improvements']} improved, {c['rejects']} rejected), "
            f"{c['evictions']} evictions "
            f"({c['capacity_evictions']} capacity, "
            f"{c['replier_evictions']} replier, "
            f"{c['expirations']} expired)"
        )
        lines.append(
            f"    lookups {c['lookups']}, hit rate "
            f"{100 * c['hit_rate']:.0f}%, expedited fraction "
            f"{100 * c['expedited_fraction']:.0f}%"
        )
        if c["occupancy"]:
            occ = ", ".join(
                f"{source}={count}"
                for source, count in sorted(c["occupancy"].items())
            )
            lines.append(f"    occupancy by source: {occ}")
    if result.churn is not None:
        ch = result.churn
        lines.append(
            f"  churn {ch['spec']}: {ch['joins']} joins, {ch['leaves']} "
            f"leaves ({ch['skipped_floor']} floor-skipped), final "
            f"membership {ch['final_receivers']}"
        )
    if traced:
        if args.trace_out:
            lines.append(f"  event stream written to {args.trace_out}")
        if profiler is not None:
            lines.append(profiler.describe())
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
