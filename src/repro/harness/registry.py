"""The pluggable protocol-session registry.

Every protocol the harness can run is described by one
:class:`ProtocolSpec`: the agent class to attach at each host, an optional
router-fabric factory (LMS routing state, RMTP designated-receiver rings),
a hook deriving protocol-specific agent kwargs from the run's
:class:`~repro.harness.config.SimulationConfig`, and an optional crash
hook the fault layer calls when a host dies (LMS records the crash against
its fabric so stale replier designations can be observed and repaired).

``build_simulation`` consults only this registry — there are no
protocol-name conditionals in the runner — so a new protocol (or a test
double) plugs in with one :func:`register` call:

.. code-block:: python

    from repro.harness.registry import ProtocolSpec, register

    register(ProtocolSpec(name="my-srm", agent_cls=MySrmVariant))

The four shipped protocols (plus the two SRM/CESRM variants) register
themselves at import time, in the order the paper discusses them; that
order is what :func:`available_protocols` (and the deprecated
``repro.harness.config.PROTOCOLS`` shim) exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.agent import CesrmAgent
from repro.core.cachelab import compile_cache_policy
from repro.core.policies import make_policy
from repro.core.router_assist import RouterAssistedCesrmAgent
from repro.harness.config import SimulationConfig
from repro.harness.registries import Registry
from repro.lms.agent import LmsAgent
from repro.lms.fabric import LmsFabric
from repro.net.topology import MulticastTree
from repro.rmtp.agent import RmtpAgent
from repro.rmtp.fabric import RmtpFabric
from repro.srm.adaptive import AdaptiveSrmAgent
from repro.srm.agent import SrmAgent


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the harness needs to wire one protocol into a run."""

    #: Registry name (the CLI's ``--protocol`` value).
    name: str
    #: Agent class attached at every host (an :class:`SrmAgent` subclass).
    agent_cls: type[SrmAgent]
    #: One-line description for listings.
    description: str = ""
    #: Builds the protocol's shared router fabric from the tree, if it has
    #: one; the instance is passed to every agent as ``fabric=``.
    fabric_factory: Callable[[MulticastTree], Any] | None = None
    #: Derives protocol-specific agent constructor kwargs from the config
    #: (beyond the common sim/network/host/params/rng/metrics set).
    agent_kwargs: Callable[[SimulationConfig], dict[str, Any]] | None = None
    #: Given the built fabric, returns the callable the fault layer invokes
    #: when a host crashes (None = the protocol needs no notification).
    crash_hook: Callable[[Any], Callable[[str], None] | None] | None = None
    #: Extra metadata for listings and experiments.
    tags: tuple[str, ...] = field(default=())

    def build_fabric(self, tree: MulticastTree) -> Any | None:
        return self.fabric_factory(tree) if self.fabric_factory is not None else None

    def extra_agent_kwargs(self, config: SimulationConfig) -> dict[str, Any]:
        return self.agent_kwargs(config) if self.agent_kwargs is not None else {}

    def crash_callback(self, fabric: Any | None) -> Callable[[str], None] | None:
        if self.crash_hook is None:
            return None
        return self.crash_hook(fabric)


#: One shared :class:`~repro.harness.registries.Registry` instance — the
#: same helper behind workloads, selection policies, and cache policies.
_REGISTRY: Registry[ProtocolSpec] = Registry("protocol")


def register(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Add ``spec`` to the registry.  Re-registering an existing name is an
    error unless ``replace=True`` (tests swapping in doubles)."""
    return _REGISTRY.register(spec, replace=replace)


def unregister(name: str) -> None:
    """Remove a protocol (primarily for tests cleaning up doubles)."""
    _REGISTRY.unregister(name)


def get_spec(name: str) -> ProtocolSpec:
    """The spec registered under ``name``; raises ``ValueError`` (with the
    known names) otherwise — the runner's single validation point."""
    return _REGISTRY.get(name)


def available_protocols() -> tuple[str, ...]:
    """Registered protocol names, in registration order."""
    return _REGISTRY.names()


def all_specs() -> tuple[ProtocolSpec, ...]:
    return _REGISTRY.specs()


# Consistent `register_* / *_names / get_*_spec` aliases matching the
# other registries (the original shorter names remain fully supported).
register_protocol = register
unregister_protocol = unregister
get_protocol_spec = get_spec
protocol_names = available_protocols
all_protocol_specs = all_specs


# ----------------------------------------------------------------------
# Built-in protocols
# ----------------------------------------------------------------------
def _cesrm_kwargs(config: SimulationConfig) -> dict[str, Any]:
    kwargs = dict(
        policy=make_policy(config.policy),
        cache_capacity=config.cache_capacity,
        reorder_delay=config.reorder_delay,
    )
    if config.cache:
        # Non-default recovery-cache policy: compile once per run; every
        # agent builds its per-source caches from the compiled policy,
        # seeded by the run seed (stochastic admission stays isolated
        # from protocol jitter).  The default ("") path passes nothing,
        # keeping agent construction byte-identical to pre-cachelab runs.
        kwargs["cache_policy"] = compile_cache_policy(config.cache)
        kwargs["cache_seed"] = config.seed
    return kwargs


register(
    ProtocolSpec(
        name="srm",
        agent_cls=SrmAgent,
        description="Scalable Reliable Multicast (§2): suppression-timer recovery",
    )
)
register(
    ProtocolSpec(
        name="srm-adaptive",
        agent_cls=AdaptiveSrmAgent,
        description="SRM with adaptive request/reply timer adjustment",
    )
)
register(
    ProtocolSpec(
        name="cesrm",
        agent_cls=CesrmAgent,
        description="Caching-Enhanced SRM (§3): expedited recovery over SRM",
        agent_kwargs=_cesrm_kwargs,
        tags=("expedited",),
    )
)
register(
    ProtocolSpec(
        name="cesrm-router",
        agent_cls=RouterAssistedCesrmAgent,
        description="CESRM with router-assisted subcast replies (§3.3)",
        agent_kwargs=_cesrm_kwargs,
        tags=("expedited", "router-assisted"),
    )
)
register(
    ProtocolSpec(
        name="lms",
        agent_cls=LmsAgent,
        description="Light-weight Multicast Services: router-steered recovery",
        fabric_factory=LmsFabric,
        crash_hook=lambda fabric: fabric.fail_host,
        tags=("router-assisted",),
    )
)
register(
    ProtocolSpec(
        name="rmtp",
        agent_cls=RmtpAgent,
        description="RMTP: designated-receiver status/repair cycles",
        fabric_factory=RmtpFabric,
    )
)


__all__ = [
    "ProtocolSpec",
    "all_protocol_specs",
    "all_specs",
    "available_protocols",
    "get_protocol_spec",
    "get_spec",
    "protocol_names",
    "register",
    "register_protocol",
    "unregister",
    "unregister_protocol",
]
