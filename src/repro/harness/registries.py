"""The generic name -> spec registry behind every pluggable surface.

The repo grew four registries with near-identical mechanics — protocols
(:class:`~repro.harness.registry.ProtocolSpec`), workloads
(:class:`~repro.workloads.registry.WorkloadSpec`), §3.2 selection
policies, and cache policies
(:class:`~repro.core.cachelab.CachePolicySpec`).  :class:`Registry` is
the one implementation they all delegate to: ordered registration,
``replace=`` guarded re-registration, and unknown-name errors that list
the known names.  Each surface keeps its own error type and noun, so
messages stay exactly what they were before the unification (pinned by
tests).

Anything with a ``name`` attribute registers — frozen spec dataclasses
and plain classes alike.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

S = TypeVar("S")


class Registry(Generic[S]):
    """An insertion-ordered name -> spec mapping with uniform errors.

    ``kind`` is the noun used in messages ("protocol", "workload",
    "cache policy"); ``error`` the exception class raised for duplicate
    or unknown names.
    """

    def __init__(self, kind: str, error: type[Exception] = ValueError):
        self.kind = kind
        self.error = error
        self._specs: dict[str, S] = {}

    def register(self, spec: S, replace: bool = False) -> S:
        """Add ``spec`` under ``spec.name``.  Re-registering an existing
        name is an error unless ``replace=True`` (tests swapping in
        doubles)."""
        name = spec.name  # type: ignore[attr-defined]
        if not replace and name in self._specs:
            raise self.error(f"{self.kind} {name!r} is already registered")
        self._specs[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a spec (primarily for tests cleaning up doubles)."""
        self._specs.pop(name, None)

    def get(self, name: str) -> S:
        """The spec registered under ``name``; raises ``self.error`` (with
        the known names) otherwise — each surface's single validation
        point."""
        spec = self._specs.get(name)
        if spec is None:
            raise self.error(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            )
        return spec

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._specs)

    def specs(self) -> tuple[S, ...]:
        return tuple(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)


__all__ = ["Registry"]
