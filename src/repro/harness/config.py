"""Simulation configuration.

Defaults reproduce §4.3's setup exactly: 1.5 Mbps links, 20 ms per-link
delay, 1 KB payloads / 0 KB control packets, C1=C2=2, C3=1.5, D1=D2=1,
D3=1.5, REORDER-DELAY = 0, 1 s session period, lossless session exchange
and lossless recovery traffic, the most-recent-loss selection policy, and
a data transmission start delayed until distance estimates have converged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from repro.srm.constants import SrmParams


def __getattr__(name: str) -> Any:
    # Deprecated shim: the protocol list now lives in the pluggable
    # repro.harness.registry (imported lazily to avoid a cycle).
    if name == "PROTOCOLS":
        warnings.warn(
            "repro.harness.config.PROTOCOLS is deprecated; use "
            "repro.harness.registry.available_protocols() (or repro.api)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.harness.registry import available_protocols

        return available_protocols()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulation run (immutable; see :meth:`with_`)."""

    #: SRM scheduling constants (shared by CESRM's fall-back scheme).
    params: SrmParams = field(default_factory=SrmParams)
    #: One-way per-link propagation delay in seconds (§4.3 publishes 20 ms).
    propagation_delay: float = 0.020
    #: Per-link bandwidth (§4.3: 1.5 Mbps).
    bandwidth_bps: float = 1.5e6
    #: Session message period (§4.3: 1 s).
    session_period: float = 1.0
    #: CESRM's REORDER-DELAY (§4.3 uses 0: replay has no reordering).
    reorder_delay: float = 0.0
    #: Recovery-tuple cache capacity (most-recent-loss needs only 1).
    cache_capacity: int = 16
    #: Recovery-cache policy spec (see repro.core.cachelab), e.g.
    #: ``"lru:capacity=8"`` or ``"ttl:capacity=16,ttl=30s"``.  The empty
    #: string — the default — means the paper's policy at
    #: ``cache_capacity`` and keeps runs byte-identical to pre-cachelab
    #: output (the field is omitted from job keys and summaries).
    cache: str = ""
    #: Expeditious-pair selection policy name (see repro.core.policies).
    policy: str = "most-recent"
    #: Detect losses from foreign repair requests (ns-2 SRM behaviour).
    detect_on_request: bool = True
    #: Drop recovery packets at the trace's per-link rates (§4.3 keeps
    #: recovery lossless by default; this is the lossy-recovery ablation).
    lossy_recovery: bool = False
    #: Session periods to wait before the data transmission starts, so
    #: distance estimates converge first (§4.3).
    warmup_periods: float = 3.0
    #: Simulated seconds to keep running after the last data packet so
    #: tail losses finish recovering.
    drain_time: float = 30.0
    #: Scale mode: skip the simulated session exchange and back every
    #: distance estimator with an analytic tree-distance oracle instead
    #: (:class:`repro.srm.session.TreeDistanceOracle`).  Sessions are
    #: O(n²) deliveries per period, which caps simulable group sizes
    #: around 10^3; primed runs reach 10^5+ receivers with the same
    #: timer math (the oracle returns exactly what a lossless exchange
    #: converges to).  False — the default — simulates the exchange and
    #: keeps runs byte-identical to pre-scale builds (the field is
    #: omitted from job keys and summaries when False).
    prime_distances: bool = False
    #: Forwarding-kernel selection: ``"python"`` — the pure-python
    #: per-hop reference path, the oracle every optimization is measured
    #: against — or ``"vector"`` — the numpy batched delivery-wave kernel
    #: (see ``repro.net.vector`` and docs/performance.md).  Both produce
    #: byte-identical ``RunSummary`` output (gated by
    #: ``tests/test_kernel_equivalence.py``); ``"python"`` — the default —
    #: is omitted from job keys and summaries so pre-v2 digests are
    #: unchanged.
    kernel: str = "python"
    #: Master seed for all protocol jitter in the run.
    seed: int = 0
    #: Replay only the first N packets of the trace (None = full trace).
    max_packets: int | None = None
    #: Attach a repro.spec.InvariantMonitor to the run: every protocol
    #: invariant is checked at this cadence in simulated seconds (None
    #: disables verification; checking costs simulation speed).
    verify_period: float | None = None

    def __post_init__(self) -> None:
        if self.propagation_delay <= 0:
            raise ValueError("propagation_delay must be positive")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.session_period <= 0:
            raise ValueError("session_period must be positive")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.cache:
            # Eager validation: a typo'd policy spec fails at config
            # construction, before any job is keyed or simulation built.
            # (Imported lazily — cachelab itself depends on the harness's
            # shared spec grammar.)
            from repro.core.cachelab import compile_cache_policy

            compile_cache_policy(self.cache)
        if self.kernel not in ("python", "vector"):
            raise ValueError(
                f"unknown kernel {self.kernel!r} (expected 'python' or 'vector')"
            )
        if self.warmup_periods < 0:
            raise ValueError("warmup_periods must be non-negative")
        if self.drain_time < 0:
            raise ValueError("drain_time must be non-negative")
        if self.max_packets is not None and self.max_packets < 1:
            raise ValueError("max_packets must be >= 1 when set")
        if self.verify_period is not None and self.verify_period <= 0:
            raise ValueError("verify_period must be positive when set")

    @property
    def transmission_start(self) -> float:
        """When the source begins sending data (§4.3's delayed start)."""
        return self.warmup_periods * self.session_period + 0.25

    def with_(self, **changes: Any) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
