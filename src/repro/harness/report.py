"""ASCII rendering of experiment results.

The paper's figures are bar charts per receiver / per trace; here each is
rendered as a fixed-width table plus a proportional text bar so the shapes
(who wins, by how much, where the crossovers sit) are visible directly in a
terminal or a benchmark log.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.harness.analysis import LatencyModel
from repro.harness.experiments import (
    AblationRow,
    Figure1Trace,
    Figure2Trace,
    Figure5Row,
    PacketCountTrace,
    RouterAssistRow,
    Section34Result,
    Table1Row,
)

BAR_WIDTH = 32


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain fixed-width table."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    """A proportional text bar."""
    if maximum <= 0:
        return ""
    filled = round(width * min(value, maximum) / maximum)
    return "#" * filled


def render_table1(rows: list[Table1Row]) -> str:
    body = [
        (
            r.index,
            r.name,
            r.n_receivers,
            r.tree_depth,
            r.period_ms,
            r.target_packets,
            r.target_losses,
            r.synthesized_losses,
            f"{100 * r.loss_error:.1f}%",
        )
        for r in rows
    ]
    return "Table 1 — traces (synthesized; targets scaled to replay length)\n" + render_table(
        ["#", "Trace", "Rcvrs", "Depth", "Period(ms)", "Pkts", "TargetLoss", "SynthLoss", "Err"],
        body,
    )


def render_figure1(results: list[Figure1Trace]) -> str:
    blocks = []
    for res in results:
        peak = max(res.srm + res.cesrm + [0.01])
        lines = [
            f"Figure 1 — {res.trace}: avg normalized recovery time (RTTs); "
            f"mean reduction {100 * res.reduction:.0f}%"
        ]
        for i, receiver in enumerate(res.receivers):
            lines.append(
                f"  {receiver:>4}  SRM   {res.srm[i]:5.2f} |{bar(res.srm[i], peak)}"
            )
            lines.append(
                f"        CESRM {res.cesrm[i]:5.2f} |{bar(res.cesrm[i], peak)}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_figure2(results: list[Figure2Trace]) -> str:
    blocks = []
    for res in results:
        values = [g for g in res.gaps if g is not None]
        peak = max(values + [0.01])
        lines = [
            f"Figure 2 — {res.trace}: expedited vs non-expedited gap (RTTs); "
            f"mean {res.mean_gap:.2f}"
        ]
        for receiver, gap in zip(res.receivers, res.gaps):
            if gap is None:
                lines.append(f"  {receiver:>4}   n/a")
            else:
                lines.append(f"  {receiver:>4}  {gap:5.2f} |{bar(gap, peak)}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_packet_counts(results: list[PacketCountTrace], what: str) -> str:
    blocks = []
    for res in results:
        totals = [
            s + m + e
            for s, m, e in zip(res.srm, res.cesrm_multicast, res.cesrm_expedited)
        ]
        peak = max(res.srm + totals + [1])
        lines = [
            f"{what} — {res.trace}: per-host counts "
            f"(SRM total {res.srm_total}, CESRM total {res.cesrm_total})"
        ]
        for i, host in enumerate(res.hosts):
            lines.append(
                f"  {host:>4}  SRM   {res.srm[i]:6d} |{bar(res.srm[i], peak)}"
            )
            lines.append(
                f"        CESRM {res.cesrm_multicast[i]:6d} multicast"
                f" + {res.cesrm_expedited[i]:6d} expedited"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_figure5(rows: list[Figure5Row]) -> str:
    body = [
        (
            r.trace,
            f"{r.expedited_success_pct:.0f}%",
            f"{r.retransmissions_pct:.0f}%",
            f"{r.multicast_control_pct:.0f}%",
            f"{r.unicast_control_pct:.0f}%",
            f"{r.total_pct:.0f}%",
        )
        for r in rows
    ]
    return (
        "Figure 5 — expedited success (5a) and CESRM overhead as % of SRM (5b)\n"
        + render_table(
            ["Trace", "Success", "Retrans", "McastCtl", "UcastCtl", "Total"],
            body,
        )
    )


def render_section_3_4(result: Section34Result) -> str:
    lines = [
        "§3.4 — analytical bounds vs simulation (RTT units)",
        f"  Eq.(1) non-expedited ≈ {result.model_non_expedited_rtt:.2f}"
        f"   Eq.(2) expedited ≈ {result.model_expedited_rtt:.2f}"
        f"   predicted gap ≈ {result.model_gap_rtt:.2f}",
        f"  expected SRM band {result.srm_band}, gap band {result.gap_band}",
    ]
    for trace, avg in result.simulated_srm_avg_rtt.items():
        gap = result.simulated_gap_rtt[trace]
        lines.append(f"  {trace:>10}: SRM avg {avg:5.2f}   gap {gap:5.2f}")
    return "\n".join(lines)


def render_ablation(rows: list[AblationRow], title: str) -> str:
    body = [
        (
            r.trace,
            r.label,
            r.avg_normalized_latency,
            f"{r.expedited_success_pct:.0f}%",
            r.retransmission_units,
            r.control_units,
            r.unrecovered,
        )
        for r in rows
    ]
    return f"{title}\n" + render_table(
        ["Trace", "Variant", "AvgLat(RTT)", "ExpSucc", "RetxUnits", "CtlUnits", "Unrec"],
        body,
    )


def render_router_assist(rows: list[RouterAssistRow]) -> str:
    body = [
        (
            r.trace,
            r.protocol,
            r.retransmission_units,
            r.expedited_reply_crossings,
            r.avg_normalized_latency,
        )
        for r in rows
    ]
    return "§3.3 — router-assisted CESRM exposure\n" + render_table(
        ["Trace", "Protocol", "RetxUnits", "EREPLCrossings", "AvgLat(RTT)"],
        body,
    )


def render_latency_model(model: LatencyModel) -> str:
    d = model.describe()
    return (
        f"Eq.(1) non-expedited ≈ {d['non_expedited_rtt']:.2f} RTT, "
        f"Eq.(2) expedited ≈ {d['expedited_rtt']:.2f} RTT, "
        f"gap ≈ {d['expected_gap_rtt']:.2f} RTT"
    )


def render_recovery_timeline(
    result, receiver: str, max_rows: int = 20, width: int = 48
) -> str:
    """An ASCII timeline of one receiver's recoveries.

    Each row is one lost packet: a bar from detection to repair, scaled to
    the receiver's RTT to the source, with ``E`` marking expedited repairs
    and ``.`` SRM fall-back repairs.
    """
    records = sorted(
        result.metrics.recoveries.get(receiver, []), key=lambda r: r.seq
    )[:max_rows]
    if not records:
        return f"{receiver}: no recoveries"
    rtt = result.rtt_to_source[receiver]
    peak = max(rec.latency for rec in records)
    lines = [
        f"recovery timeline — {receiver} (RTT to source "
        f"{1000 * rtt:.0f} ms; E = expedited, . = SRM fall-back)"
    ]
    for rec in records:
        marker = "E" if rec.expedited else "."
        length = bar(rec.latency, peak, width)
        lines.append(
            f"  pkt {rec.seq:>6}  {rec.latency / rtt:5.2f} RTT "
            f"|{length}{marker}"
        )
    return "\n".join(lines)
